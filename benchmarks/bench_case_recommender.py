"""E4 — Recommendation-system case study (Section 6, after [6]).

Regenerates the 2.9 h -> ~1 h per-iteration MovieLens claim and runs a
real (synthetic, small) private matrix-factorisation epoch.
"""

import pytest

from repro.apps.datasets import synthetic_ratings
from repro.apps.recommender import (
    GRADIENT_TIME_FRACTION,
    PAPER_ACCELERATED_HOURS,
    PAPER_IMPROVEMENT_RANGE,
    PAPER_ITERATION_HOURS,
    PrivateMatrixFactorization,
    RecommenderRuntimeModel,
)


@pytest.fixture(scope="module")
def model():
    return RecommenderRuntimeModel()


def test_regenerate_movielens_claim(model, artifact):
    run = model.movielens_claim()
    text = (
        "Recommendation case study (MovieLens-shaped):\n"
        f"  baseline iteration: {run.baseline_hours:.2f} h  (paper: {PAPER_ITERATION_HOURS} h)\n"
        f"  gradient (MAC) fraction: {GRADIENT_TIME_FRACTION:.2f}\n"
        f"  MAC speedup applied: {model.mac_speedup:.0f}x\n"
        f"  accelerated iteration: {run.accelerated_hours:.2f} h  (paper: ~{PAPER_ACCELERATED_HOURS} h)\n"
        f"  improvement: {run.improvement:.1%}  (paper: 65-69%)"
    )
    artifact("case_recommender.txt", text)
    lo, hi = PAPER_IMPROVEMENT_RANGE
    assert lo <= run.improvement <= hi
    assert run.accelerated_hours == pytest.approx(PAPER_ACCELERATED_HOURS, abs=0.05)


def test_improvement_saturates_at_gradient_fraction(model):
    # even infinite MAC speedup cannot beat the non-MAC remainder
    run = model.accelerate(gradient_fraction=GRADIENT_TIME_FRACTION)
    assert run.improvement < GRADIENT_TIME_FRACTION + 0.01


def test_bench_training_epoch(benchmark):
    triples, _, _ = synthetic_ratings(20, 15, 100, seed=3)
    mf = PrivateMatrixFactorization(20, 15, profile_dim=4, seed=3)
    rmse = benchmark(mf.train_epoch, triples)
    assert rmse > 0
    assert mf.macs_per_iteration == 3 * 4 * 100


def test_bench_private_prediction_path(benchmark):
    from repro.fixedpoint import Q8_4

    triples, _, _ = synthetic_ratings(3, 3, 4, seed=4)
    mf = PrivateMatrixFactorization(
        3, 3, profile_dim=2, private_predictions=True, fmt=Q8_4, seed=4
    )
    benchmark.pedantic(mf.train_epoch, args=(triples,), rounds=1, iterations=1)
    assert mf.private_macs_executed > 0
