"""Multi-tenant ring benchmark: the committed fairness/utilization artifact.

Drives the deterministic :class:`repro.accel.ring.CoreRing` at
saturation in two tenant mixes — ``saturated`` (8 equal tenants on 4
cores, the acceptance configuration) and ``mixed`` (2:1 weight skew
with uneven in-flight budgets) — and measures the cross-tenant garble
station's AES co-batching on the real vector garbler.  Results land in
``BENCH_ring.json`` at the repository root; the artifact is committed
so the fairness trajectory is visible across PRs, its shape is enforced
by ``tests/perf/test_bench_artifacts.py``, and the CI ``bench-smoke``
job keeps it structurally fresh (``--check``).

The simulated-ring numbers are cycle-deterministic (same seed-free
state machine every run); only the co-batch wall-clock side varies by
machine, and the committed acceptance thresholds (utilization >= 0.90,
Jain >= 0.9 at saturation) deliberately bind the deterministic half.

Usage:
    python benchmarks/bench_ring.py            # full run, write artifact
    python benchmarks/bench_ring.py --smoke    # tiny sizes, write artifact
    python benchmarks/bench_ring.py --check    # validate committed artifact
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.accel.ring import CoreRing, RingConfig, TenantSpec  # noqa: E402
from repro.fixedpoint import Q8_4  # noqa: E402
from repro.host import CloudServer  # noqa: E402
from repro.serve import GarbleStation  # noqa: E402
from repro.telemetry import MetricsRegistry  # noqa: E402

SCHEMA_VERSION = 1
ARTIFACT_NAME = "BENCH_ring.json"
DEFAULT_PATH = REPO_ROOT / ARTIFACT_NAME

SCENARIOS = ("saturated", "mixed")

#: metric keys every scenario entry must carry
METRIC_KEYS = (
    "utilization",
    "jain",
    "jain_weighted",
    "completed",
    "shed",
    "credit_stalls",
    "p99_latency_cycles_max",
)
#: per-scenario dict of tenant -> p99 latency in ring cycles
PER_TENANT_KEY = "per_tenant_p99_latency_cycles"
DERIVED_KEYS = (
    "cobatch_runs_per_batch",
    "cobatch_aes_savings",
)
CONFIG_KEYS = (
    "n_tenants",
    "n_cores",
    "service_cycles",
    "credit_cap",
    "refill_period",
    "cycles",
    "cobatch_runs",
    "smoke",
)


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _tenant_mix(scenario: str, n_tenants: int) -> list[TenantSpec]:
    if scenario == "saturated":
        return [
            TenantSpec(f"t{i}", weight=1.0, max_inflight=2, queue_depth=8)
            for i in range(n_tenants)
        ]
    # mixed: the first half carries double weight and a bigger in-flight
    # budget — the weighted Jain index must still read fair
    half = n_tenants // 2
    return [
        TenantSpec(
            f"t{i}",
            weight=2.0 if i < half else 1.0,
            max_inflight=3 if i < half else 2,
            queue_depth=8,
        )
        for i in range(n_tenants)
    ]


def bench_scenario(scenario: str, args) -> dict:
    """Run one tenant mix at saturation for ``args.cycles`` cycles."""
    ring = CoreRing(
        _tenant_mix(scenario, args.n_tenants),
        RingConfig(
            n_cores=args.n_cores,
            service_cycles=args.service_cycles,
            credit_cap=args.credit_cap,
            refill_period=args.refill_period,
        ),
    )

    def saturate():
        for spec in ring.specs:
            while ring.backlog(spec.tenant) < spec.queue_depth:
                if not ring.submit(spec.tenant):
                    break

    saturate()
    for _ in range(args.cycles):
        ring.step()
        saturate()
    ring.check_invariants()
    snap = ring.snapshot()
    per_tenant = {
        t: entry["p99_latency_cycles"] for t, entry in snap["tenants"].items()
    }
    return {
        "utilization": snap["utilization"],
        "jain": snap["jain"],
        "jain_weighted": snap["jain_weighted"],
        "completed": snap["completed"],
        "shed": snap["shed"],
        "credit_stalls": snap["credit_stalls"],
        "p99_latency_cycles_max": max(per_tenant.values()) if per_tenant else 0.0,
        PER_TENANT_KEY: per_tenant,
    }


def bench_cobatch(args) -> dict:
    """AES savings when N tenants co-ride one garble station batch."""
    rounds = 2
    model = np.round(
        np.linspace(-1.5, 1.5, rounds).reshape(1, rounds) * 16.0
    ) / 16.0
    accel = CloudServer(
        model, Q8_4, pool_size=0, seed=2018, auto_refill=False,
        garble_mode="vectorized",
    ).accelerator

    solo = MetricsRegistry()
    accel.garble_vectorized(rounds, 1, telemetry=solo)
    solo_calls = solo.counter("gc.aes_batch_calls").value

    tm = MetricsRegistry()
    station = GarbleStation(window_s=30.0, max_batch=args.cobatch_runs,
                            telemetry=tm)
    threads = [
        threading.Thread(target=station.take, args=(accel, rounds, "bench-fp"))
        for _ in range(args.cobatch_runs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    batches = tm.counter("station.batches").value
    batched_runs = tm.counter("station.batched_runs").value
    batch_calls = tm.counter("gc.aes_batch_calls").value
    naive_calls = solo_calls * max(1, batched_runs)
    return {
        "cobatch_runs_per_batch": batched_runs / max(1, batches),
        "cobatch_aes_savings": (
            (naive_calls - batch_calls) / naive_calls if naive_calls else 0.0
        ),
    }


def run_bench(args) -> dict:
    metrics = {scenario: bench_scenario(scenario, args) for scenario in SCENARIOS}
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": ARTIFACT_NAME,
        "generated_by": "benchmarks/bench_ring.py",
        "git_rev": git_rev(),
        "seed": args.seed,
        "config": {
            "n_tenants": args.n_tenants,
            "n_cores": args.n_cores,
            "service_cycles": args.service_cycles,
            "credit_cap": args.credit_cap,
            "refill_period": args.refill_period,
            "cycles": args.cycles,
            "cobatch_runs": args.cobatch_runs,
            "smoke": bool(args.smoke),
        },
        "metrics": metrics,
        "derived": bench_cobatch(args),
    }


# ----------------------------------------------------------------------
# structural validation (shared with tests/perf/test_bench_artifacts.py)
# ----------------------------------------------------------------------
def structural_errors(doc: dict) -> list[str]:
    """Why ``doc`` is not a valid BENCH_ring artifact (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["artifact root must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}"
        )
    if doc.get("artifact") != ARTIFACT_NAME:
        errors.append(f"artifact must be {ARTIFACT_NAME!r}")
    for key in ("generated_by", "git_rev"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"{key} must be a non-empty string")
    if not isinstance(doc.get("seed"), int):
        errors.append("seed must be an integer")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in CONFIG_KEYS:
            if key not in config:
                errors.append(f"config is missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for scenario in SCENARIOS:
            entry = metrics.get(scenario)
            if not isinstance(entry, dict):
                errors.append(f"metrics.{scenario} must be an object")
                continue
            for key in METRIC_KEYS:
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"metrics.{scenario}.{key} must be a non-negative number"
                    )
            per_tenant = entry.get(PER_TENANT_KEY)
            if not isinstance(per_tenant, dict) or not per_tenant:
                errors.append(
                    f"metrics.{scenario}.{PER_TENANT_KEY} must be a "
                    "non-empty object"
                )
            elif not all(
                isinstance(v, (int, float)) and v >= 0
                for v in per_tenant.values()
            ):
                errors.append(
                    f"metrics.{scenario}.{PER_TENANT_KEY} values must be "
                    "non-negative numbers"
                )
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors.append("derived must be an object")
    else:
        for key in DERIVED_KEYS:
            value = derived.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"derived.{key} must be a non-negative number")
    return errors


def check_artifact(path: Path, fresh: dict) -> list[str]:
    """Staleness/malformation report for the committed artifact.

    Simulated-ring metrics are deterministic but machine-independent
    freshness is still judged *structurally* (same sections, same keys,
    same scenarios) so a smoke run can validate the committed full run.
    """
    if not path.exists():
        return [f"{path} does not exist — run the bench to generate it"]
    try:
        committed = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    errors = [f"committed: {e}" for e in structural_errors(committed)]
    errors += [f"fresh run: {e}" for e in structural_errors(fresh)]
    if errors:
        return errors
    if set(committed["metrics"].keys()) != set(fresh["metrics"].keys()):
        errors.append(
            "committed artifact's scenarios differ from the bench's "
            f"({sorted(committed['metrics'])} vs {sorted(fresh['metrics'])}) — stale"
        )
    for scenario in fresh["metrics"]:
        if scenario in committed["metrics"] and set(
            committed["metrics"][scenario]
        ) != set(fresh["metrics"][scenario]):
            errors.append(
                f"metrics.{scenario} keys differ from the bench's — stale"
            )
    for section in ("config", "derived"):
        if set(committed[section].keys()) != set(fresh[section].keys()):
            errors.append(f"{section} keys differ from the bench's — stale")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--cycles", type=int, default=None,
                        help="saturated simulation length in ring cycles")
    parser.add_argument("--cobatch-runs", type=int, default=None,
                        help="tenants co-riding one garble station batch")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (defaults: cycles=800 cobatch=2)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed artifact instead of writing it")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH)
    args = parser.parse_args(argv)

    if args.check and not args.smoke:
        args.smoke = True  # checking only needs the bench's *shape*
    args.cycles = args.cycles if args.cycles is not None else (
        800 if args.smoke else 20_000
    )
    args.cobatch_runs = args.cobatch_runs if args.cobatch_runs is not None else (
        2 if args.smoke else 4
    )
    # the acceptance configuration: 8 tenants on 4 cores
    args.n_tenants = 8
    args.n_cores = 4
    args.service_cycles = 16
    args.credit_cap = 4
    args.refill_period = 2

    doc = run_bench(args)
    if args.check:
        errors = check_artifact(args.out, doc)
        if errors:
            print(f"FAIL: {args.out.name} is stale or malformed:")
            for e in errors:
                print(f"  - {e}")
            return 1
        committed = json.loads(args.out.read_text())
        print(
            f"OK: {args.out.name} (schema v{committed['schema_version']}, "
            f"rev {committed['git_rev']}) matches the bench's shape"
        )
        return 0

    errors = structural_errors(doc)
    if errors:
        print("FAIL: generated artifact is malformed (bench bug):")
        for e in errors:
            print(f"  - {e}")
        return 1
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for scenario in SCENARIOS:
        m = doc["metrics"][scenario]
        print(
            f"  {scenario:>9}: util {m['utilization']:.4f}  "
            f"jain {m['jain']:.4f}  jain_w {m['jain_weighted']:.4f}  "
            f"{m['completed']} completed  "
            f"p99max {m['p99_latency_cycles_max']:.0f} cyc  "
            f"{m['credit_stalls']} credit stalls"
        )
    d = doc["derived"]
    print(
        f"  cobatch: {d['cobatch_runs_per_batch']:.1f} runs/batch, "
        f"AES savings {d['cobatch_aes_savings']:.1%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
