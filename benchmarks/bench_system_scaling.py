"""Extension benches: fleet scaling, energy gating, communication threshold.

Quantifies three Section 5-6 claims beyond the tables:

* "throughput can be increased linearly by adding more GC cores" and
  "25 times more GC cores can fit" — the fleet model packs MAC units
  under the Table 1 resource budget of the XCVU095;
* the FSM "turns off the operation of the RNGs to conserve energy" —
  activity-based energy accounting of a real garbling run;
* "after certain threshold, communication capability of the server may
  become the bottleneck" — the serving model computes that threshold.
"""

import pytest

from repro.accel.energy import energy_report
from repro.accel.fleet import FleetModel
from repro.accel.fsm import AcceleratorFSM
from repro.accel.tree_mac import build_scheduled_mac
from repro.perf.system import ServingModel


def test_fleet_scaling_report(artifact):
    model = FleetModel()
    lines = [
        "Fleet scaling on the XCVU095 (Table 1 resource model):",
        "",
        f"  {'b':>3} {'units fit':>10} {'total cores':>12} {'MAC/s':>12} "
        f"{'bound by':>9} {'LUT util':>9}",
    ]
    for b in (8, 16, 32):
        plan = model.plan(b)
        lines.append(
            f"  {b:>3} {plan.units:>10} {plan.total_cores:>12} "
            f"{plan.macs_per_second:>12.3g} {plan.limiting_resource:>9} "
            f"{plan.lut_utilisation:>8.0%}"
        )
    gap = model.paper_scaling_claim_gap(32)
    lines += [
        "",
        f"  paper's claim: 25x more cores fit; our Table 1-based model "
        f"supports ~{model.plan(32).units - 1}x more (gap {gap:.1f}x, "
        "see EXPERIMENTS.md deviations)",
    ]
    artifact("ext_fleet_scaling.txt", "\n".join(lines))
    assert model.plan(8).units > model.plan(32).units  # smaller units pack more


def test_energy_gating_report(artifact):
    run = AcceleratorFSM(build_scheduled_mac(8), seed=13).garble_rounds(4)
    report = energy_report(run)
    text = "\n".join(
        [
            "Label-generator power gating (4 MAC rounds, b=8):",
            f"  AES engines:         {report.aes_energy:10.1f} units",
            f"  RNG bank (gated):    {report.rng_energy_gated:10.1f} units",
            f"  RNG bank (ungated):  {report.rng_energy_ungated:10.1f} units",
            f"  table memory:        {report.memory_energy:10.1f} units",
            f"  RNG energy saved by the FSM's gating: {report.rng_saving:.0%}",
            f"  whole-accelerator saving:             {report.system_saving:.0%}",
        ]
    )
    artifact("ext_energy_gating.txt", text)
    assert report.rng_saving > 0.5


def test_communication_threshold_report(artifact):
    lines = ["Communication-bottleneck analysis (the paper's closing caveat):", ""]
    for b in (8, 16, 32):
        model = ServingModel(b)
        lines.append(model.format_report())
        lines.append("")
    artifact("ext_comm_threshold.txt", "\n".join(lines))
    # at practical link rates, the links bind before the engines do
    assert ServingModel(32).server_bottleneck() in ("network", "pcie")
    # the threshold is far above commodity networking: garbling is so
    # fast that tables, not compute, cap the service
    assert ServingModel(32).network_threshold_gbps() > 100


@pytest.mark.parametrize("units", [1, 2, 4])
def test_bench_fleet_planning(benchmark, units):
    model = FleetModel()
    plan = benchmark(model.plan, 32, units)
    assert plan.units == units


def test_bench_energy_accounting(benchmark):
    run = AcceleratorFSM(build_scheduled_mac(8), seed=14).garble_rounds(2)
    report = benchmark(energy_report, run)
    assert report.total > 0


def test_bench_serving_model(benchmark):
    report = benchmark(lambda: ServingModel(32).rates())
    assert report.sustained_macs_per_s > 0
