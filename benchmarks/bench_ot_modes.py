"""Extension bench: the Section 3 OT trade-off (per-round vs upfront).

"It is possible to send all the inputs at once through OT extension,
however, the evaluator may not have enough memory to store all the
labels together. With the recent development of sequential GC, it is
feasible to perform OT every round and store only the labels required
for that round; making our approach amenable to memory-constrained
clients."  This bench quantifies both sides of that sentence on real
protocol runs: client label memory and OT traffic per mode.
"""

import pytest

from repro.bits import from_bits, to_bits
from repro.circuits.mac import accumulator_width, build_sequential_mac
from repro.crypto.ot import TOY_GROUP
from repro.gc.channel import local_channel, run_two_party
from repro.gc.sequential_gc import SequentialEvaluator, SequentialGarbler


def run_mode(mode: str, n_rounds: int = 6):
    seq = build_sequential_mac(8, accumulator_width(8, n_rounds))
    g_chan, e_chan = local_channel()
    garbler = SequentialGarbler(seq, g_chan, TOY_GROUP)
    evaluator = SequentialEvaluator(seq, e_chan, TOY_GROUP)
    a = [to_bits(2, 8)] * n_rounds
    x = [to_bits(3, 8)] * n_rounds
    g_rep, e_rep = run_two_party(
        lambda: garbler.run(a, ot_mode=mode),
        lambda: evaluator.run(x),
    )
    ot_bytes = sum(v for k, v in g_chan.sent.by_tag.items() if k.startswith("ot."))
    ot_bytes += sum(v for k, v in e_chan.sent.by_tag.items() if k.startswith("ot."))
    ot_flights = sum(
        1 for k in list(g_chan.sent.by_tag) + list(e_chan.sent.by_tag)
        if k.startswith("ot.")
    )
    return g_rep, e_rep, ot_bytes, ot_flights


def test_ot_mode_tradeoff_report(artifact):
    rows = {}
    for mode in ("per_round", "upfront"):
        g_rep, e_rep, ot_bytes, flights = run_mode(mode)
        assert from_bits(e_rep.output_bits, signed=True) == 6 * 6
        rows[mode] = (e_rep.peak_input_label_bytes, ot_bytes, flights)
    text = "\n".join(
        [
            "OT scheduling trade-off (6-round 8-bit MAC, Section 3):",
            "",
            f"  {'mode':<10} {'client label memory':>20} {'OT bytes':>10} "
            f"{'OT msg kinds':>13}",
        ]
        + [
            f"  {mode:<10} {mem:>18} B {byts:>10} {fl:>13}"
            for mode, (mem, byts, fl) in rows.items()
        ]
        + [
            "",
            "  per-round OT keeps the client's buffer at one round of labels",
            "  (the memory-constrained-client design point the paper argues);",
            "  upfront OT batches the transfers at M x the label memory.",
        ]
    )
    artifact("ext_ot_modes.txt", text)
    assert rows["upfront"][0] == 6 * rows["per_round"][0]


@pytest.mark.parametrize("mode", ["per_round", "upfront"])
def test_bench_ot_mode(benchmark, mode):
    g_rep, e_rep, _, _ = benchmark.pedantic(
        run_mode, args=(mode, 3), rounds=1, iterations=1
    )
    assert e_rep.output_bits is not None
