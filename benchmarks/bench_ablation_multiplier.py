"""A3 — Ablation: tree-based vs serial multiplication (Section 4).

The paper replaces TinyGarble's serial multiplier ("does not allow
parallelism") with the tree structure.  This ablation quantifies the
trade on real netlists: AND-gate counts, dependency depth, average
parallelism, and what each form yields when scheduled on the same core
array.
"""

import pytest

from repro.accel.schedule import schedule_rounds
from repro.accel.tree_mac import build_scheduled_mac
from repro.baselines.tinygarble import TinyGarbleExecutor
from repro.circuits.multipliers import build_multiplier_netlist


def analysis(net):
    stats = net.stats()
    depth = net.nonfree_depth()
    return stats.n_nonfree, depth, stats.n_nonfree / depth


def test_ablation_report(artifact):
    lines = [
        "Ablation A3: tree vs serial multiplier netlists (unsigned)",
        "",
        f"  {'b':>3} {'form':>7} {'ANDs':>6} {'AND-depth':>10} {'avg parallelism':>16}",
    ]
    for b in (8, 16, 32):
        for kind in ("serial", "tree"):
            ands, depth, par = analysis(
                build_multiplier_netlist(b, kind=kind, signed=False)
            )
            lines.append(f"  {b:>3} {kind:>7} {ands:>6} {depth:>10} {par:>16.1f}")
    lines += [
        "",
        "  scheduled on the MAXelerator core array (full MAC, b=8):",
    ]
    schedule = schedule_rounds(build_scheduled_mac(8), 5)
    lines.append(
        f"    tree MAC: {schedule.steady_state_cycles_per_mac} cycles/MAC, "
        f"utilisation {schedule.utilization():.0%}"
    )
    serial_ands = TinyGarbleExecutor(8).and_gates_per_round
    lines.append(
        f"    serial MAC on 1 engine: >= {serial_ands} cycles/MAC "
        "(one table per cycle, fully serial dependencies)"
    )
    artifact("ablation_multiplier.txt", "\n".join(lines))


@pytest.mark.parametrize("b", [8, 16, 32])
def test_tree_exposes_more_parallelism(b):
    serial = build_multiplier_netlist(b, kind="serial", signed=False)
    tree = build_multiplier_netlist(b, kind="tree", signed=False)
    assert analysis(tree)[2] > analysis(serial)[2]


def test_and_count_overhead_is_modest():
    # the tree form trades a small AND-count increase for schedulability
    for b in (8, 16, 32):
        serial = build_multiplier_netlist(b, kind="serial", signed=False)
        tree = build_multiplier_netlist(b, kind="tree", signed=False)
        ratio = tree.stats().n_nonfree / serial.stats().n_nonfree
        assert ratio < 1.3, f"b={b}: tree costs {ratio:.2f}x ANDs"


def test_scheduled_tree_beats_serial_chain():
    # end to end: 24 cycles/MAC vs >= 144 serial garblings
    schedule = schedule_rounds(build_scheduled_mac(8), 5)
    assert schedule.steady_state_cycles_per_mac * 5 < TinyGarbleExecutor(8).and_gates_per_round


@pytest.mark.parametrize("kind", ["serial", "tree"])
def test_bench_build_multiplier(benchmark, kind):
    net = benchmark(build_multiplier_netlist, 16, kind, False)
    assert net.stats().n_nonfree > 0
