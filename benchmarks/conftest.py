"""Shared fixtures for the benchmark suite.

Every bench regenerates its table/figure content and writes the
rendered text to ``benchmarks/output/`` so the reproduction artefacts
survive the run (pytest-benchmark's own table reports the timings).
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def artifact(artifact_dir):
    """artifact("name.txt", text) persists a rendered table and echoes it."""

    def write(name: str, text: str) -> Path:
        path = artifact_dir / name
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        return path

    return write
