"""GC-vs-HE backend benchmark: the committed comparison artifact.

Runs the same fixed-point MAC workloads through both private-MAC
backends behind :func:`repro.privatemac.open_session` — the garbled
MAXelerator datapath (``gc``) and the BFV-style encrypted MAC
(``he``) — and writes the measured costs to ``BENCH_backends.json`` at
the repository root.  The numbers answer the paper's related-work
question in code: *for a given workload, which protocol is cheaper,
and on which axis?*  GC pays bytes and round trips per MAC round; HE
pays one ciphertext each way regardless of the matrix height.

Both backends must decode identical results (asserted against the
quantised plaintext oracle on every query — a benchmark that measures
a wrong answer is worse than no benchmark).

The artifact's *shape* is enforced by
``tests/perf/test_bench_artifacts.py`` and kept fresh by the CI
``bench-smoke`` job (``--check`` validates the committed file
structurally against a tiny in-memory run — timings are machine-local
and deliberately not compared).

Usage:
    python benchmarks/bench_backends.py            # full run, write artifact
    python benchmarks/bench_backends.py --smoke    # tiny sizes, write artifact
    python benchmarks/bench_backends.py --check    # validate committed artifact
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.fixedpoint import Q8_4  # noqa: E402
from repro.privatemac import BACKENDS, open_session  # noqa: E402

SCHEMA_VERSION = 1
ARTIFACT_NAME = "BENCH_backends.json"
DEFAULT_PATH = REPO_ROOT / ARTIFACT_NAME

#: metric keys every workload x backend entry must carry
METRIC_KEYS = (
    "bytes_per_query",
    "round_trips_per_query",
    "mean_latency_ms",
    "macs_per_s",
)
DERIVED_KEYS = (
    "mean_bytes_ratio_gc_over_he",
    "mean_latency_ratio_gc_over_he",
    "he_round_trips_per_query",
)
CONFIG_KEYS = (
    "bitwidth",
    "queries",
    "workloads",
    "smoke",
)

#: named workload shapes (rows x cols), sized like the paper's serving
#: examples: a ridge-regression coefficient bundle, a small
#: recommender scoring block, a portfolio exposure vector
WORKLOADS = {
    "ridge": (3, 4),
    "recommender": (4, 6),
    "portfolio": (2, 8),
}
SMOKE_WORKLOADS = {"ridge": (2, 2)}


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _grid(rng, shape):
    """Random values snapped to the Q8.4 grid (bit-exact vs plaintext)."""
    return np.round(rng.uniform(-1.5, 1.5, size=shape) * 16.0) / 16.0


def bench_backend(backend: str, rows: int, cols: int, args) -> dict:
    """Measured cost of ``queries`` matvec queries on one backend."""
    assert backend in BACKENDS
    rng = np.random.default_rng(args.seed)
    matrix = _grid(rng, (rows, cols))
    latencies_ms = []
    with open_session(matrix, Q8_4, backend, seed=args.seed) as sess:
        for _ in range(args.queries):
            x = _grid(rng, cols)
            t0 = time.perf_counter()
            result = sess.query_matvec(x)
            latencies_ms.append((time.perf_counter() - t0) * 1e3)
            oracle = [sess.expected_row(r, x) for r in range(rows)]
            if list(result) != oracle:
                raise AssertionError(
                    f"{backend} backend diverged from the plaintext oracle "
                    f"on {rows}x{cols}: {list(result)} != {oracle}"
                )
        acct = sess.accounting
    total_s = sum(latencies_ms) / 1e3
    return {
        "bytes_per_query": acct.bytes_total / args.queries,
        "round_trips_per_query": acct.round_trips / args.queries,
        "mean_latency_ms": statistics.mean(latencies_ms),
        "macs_per_s": acct.macs / max(1e-12, total_s),
    }


def run_bench(args) -> dict:
    workloads = SMOKE_WORKLOADS if args.smoke else WORKLOADS
    metrics = {
        name: {
            backend: bench_backend(backend, rows, cols, args)
            for backend in BACKENDS
        }
        for name, (rows, cols) in workloads.items()
    }
    bytes_ratios = [
        m["gc"]["bytes_per_query"] / max(1e-12, m["he"]["bytes_per_query"])
        for m in metrics.values()
    ]
    latency_ratios = [
        m["gc"]["mean_latency_ms"] / max(1e-12, m["he"]["mean_latency_ms"])
        for m in metrics.values()
    ]
    he_round_trips = [m["he"]["round_trips_per_query"] for m in metrics.values()]
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": ARTIFACT_NAME,
        "generated_by": "benchmarks/bench_backends.py",
        "git_rev": git_rev(),
        "seed": args.seed,
        "config": {
            "bitwidth": Q8_4.total_bits,
            "queries": args.queries,
            "workloads": {name: list(shape) for name, shape in workloads.items()},
            "smoke": bool(args.smoke),
        },
        "metrics": metrics,
        "derived": {
            "mean_bytes_ratio_gc_over_he": statistics.mean(bytes_ratios),
            "mean_latency_ratio_gc_over_he": statistics.mean(latency_ratios),
            "he_round_trips_per_query": statistics.mean(he_round_trips),
        },
    }


# ----------------------------------------------------------------------
# structural validation (shared with tests/perf/test_bench_artifacts.py)
# ----------------------------------------------------------------------
def structural_errors(doc: dict) -> list[str]:
    """Why ``doc`` is not a valid BENCH_backends artifact (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["artifact root must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}"
        )
    if doc.get("artifact") != ARTIFACT_NAME:
        errors.append(f"artifact must be {ARTIFACT_NAME!r}")
    for key in ("generated_by", "git_rev"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"{key} must be a non-empty string")
    if not isinstance(doc.get("seed"), int):
        errors.append("seed must be an integer")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in CONFIG_KEYS:
            if key not in config:
                errors.append(f"config is missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append("metrics must be a non-empty object")
    else:
        for workload, entry in metrics.items():
            if not isinstance(entry, dict):
                errors.append(f"metrics.{workload} must be an object")
                continue
            for backend in BACKENDS:
                be = entry.get(backend)
                if not isinstance(be, dict):
                    errors.append(f"metrics.{workload}.{backend} must be an object")
                    continue
                for key in METRIC_KEYS:
                    value = be.get(key)
                    if not isinstance(value, (int, float)) or value < 0:
                        errors.append(
                            f"metrics.{workload}.{backend}.{key} must be a "
                            "non-negative number"
                        )
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors.append("derived must be an object")
    else:
        for key in DERIVED_KEYS:
            value = derived.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"derived.{key} must be a non-negative number")
    return errors


def check_artifact(path: Path, fresh: dict) -> list[str]:
    """Staleness/malformation report for the committed artifact.

    Structural only — timings are machine-local.  The committed file
    must parse, pass :func:`structural_errors`, and carry the same
    per-backend metric keys a fresh run produces.  The committed
    workload *set* may be the full one while CI checks against a smoke
    run, so only backend/metric/config/derived keys are compared.
    """
    if not path.exists():
        return [f"{path} does not exist — run the bench to generate it"]
    try:
        committed = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    errors = [f"committed: {e}" for e in structural_errors(committed)]
    errors += [f"fresh run: {e}" for e in structural_errors(fresh)]
    if errors:
        return errors
    fresh_entry = next(iter(fresh["metrics"].values()))
    for workload, entry in committed["metrics"].items():
        if set(entry.keys()) != set(fresh_entry.keys()):
            errors.append(
                f"metrics.{workload} backends differ from the bench's "
                f"({sorted(entry)} vs {sorted(fresh_entry)}) — stale"
            )
            continue
        for backend in fresh_entry:
            if set(entry[backend]) != set(fresh_entry[backend]):
                errors.append(
                    f"metrics.{workload}.{backend} keys differ from the "
                    "bench's — stale"
                )
    for section in ("config", "derived"):
        if set(committed[section].keys()) != set(fresh[section].keys()):
            errors.append(f"{section} keys differ from the bench's — stale")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--queries", type=int, default=None,
                        help="matvec queries per workload per backend")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (one 2x2 workload, 1 query)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed artifact instead of writing it")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH)
    args = parser.parse_args(argv)

    if args.check and not args.smoke:
        args.smoke = True  # checking only needs the bench's *shape*
    args.queries = args.queries if args.queries is not None else (1 if args.smoke else 3)

    doc = run_bench(args)
    if args.check:
        errors = check_artifact(args.out, doc)
        if errors:
            print(f"FAIL: {args.out.name} is stale or malformed:")
            for e in errors:
                print(f"  - {e}")
            return 1
        committed = json.loads(args.out.read_text())
        print(
            f"OK: {args.out.name} (schema v{committed['schema_version']}, "
            f"rev {committed['git_rev']}) matches the bench's shape"
        )
        return 0

    errors = structural_errors(doc)
    if errors:
        print("FAIL: generated artifact is malformed (bench bug):")
        for e in errors:
            print(f"  - {e}")
        return 1
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for workload, entry in doc["metrics"].items():
        for backend in BACKENDS:
            m = entry[backend]
            print(
                f"  {workload:>12s}/{backend}: "
                f"{m['bytes_per_query']:>10.0f} B/query  "
                f"{m['round_trips_per_query']:>5.1f} round trips  "
                f"{m['mean_latency_ms']:>8.1f} ms  "
                f"{m['macs_per_s']:>8.1f} MACs/s"
            )
    d = doc["derived"]
    print(
        f"  GC moves {d['mean_bytes_ratio_gc_over_he']:.1f}x the bytes of HE; "
        f"GC latency {d['mean_latency_ratio_gc_over_he']:.1f}x HE's; "
        f"HE at {d['he_round_trips_per_query']:.1f} round trip(s)/query"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
