"""F2 — Figure 2: schematic of the tree-based multiplication (b = 8).

Figure 2 shows the digit-slice streams, the delay (shift) registers and
the adder tree.  This bench regenerates that structure from the tagged
circuit — stream widths, tree levels, delays — and asserts the
structural properties the figure encodes.
"""

import pytest

from repro.accel.schedule import schedule_rounds
from repro.accel.tree_mac import build_scheduled_mac


@pytest.fixture(scope="module")
def smc():
    return build_scheduled_mac(8)


def tree_levels(smc):
    """{level: sorted adder ids} from the structural tags."""
    levels: dict[int, set] = {}
    for tag in smc.tags.values():
        if tag[0] == "tree":
            levels.setdefault(tag[1], set()).add(tag[2])
    return {lvl: sorted(adders) for lvl, adders in levels.items()}


def test_regenerate_figure2(smc, artifact):
    levels = tree_levels(smc)
    b = smc.bitwidth
    lines = [
        f"Figure 2 (regenerated): tree-based multiplication, b = {b}",
        "",
        "  segment 1 (MUX_ADD) digit-slice streams:",
    ]
    for m in range(b // 2):
        lines.append(
            f"    s_{m} = (x[{2*m}] + 2*x[{2*m+1}]) * a"
            f"   weight 4^{m}  (serial, 1 bit/stage)"
        )
    lines.append("")
    lines.append("  segment 2 (TREE): serial adders; shifts realised as delays:")
    for lvl, adders in sorted(levels.items()):
        delay = 2 ** (lvl + 1)
        for j in adders:
            lines.append(
                f"    level {lvl} adder {j}: "
                f"t{lvl}_{j} = lower + (upper delayed {delay} stages)"
            )
    lines.append("")
    lines.append("  product feeds the accumulator (conditional subtract fused)")
    artifact("fig2_tree.txt", "\n".join(lines))

    # structural assertions: b/2 - 1 adders in a binary tree
    assert sum(len(a) for a in levels.values()) == b // 2 - 1
    assert levels[0] == [0, 1] and levels[1] == [0]


def test_stream_lengths_match_radix4_product(smc):
    # each digit-slice product (2-bit x 8-bit) is a 10-bit stream
    per_unit = smc.ops_by_unit()
    for m in range(4):
        assert per_unit[("seg1", m)] == 3 * smc.bitwidth


def test_delays_appear_as_schedule_offsets(smc):
    # Figure 2's shifts: higher streams enter the tree later.  Measure
    # the first scheduled cycle of each level-0 adder's AND gates.
    schedule = schedule_rounds(smc, 1)
    first_cycle: dict[tuple, int] = {}
    for op in schedule.ops:
        if op.tag and op.tag[0] == "tree":
            key = op.tag[:3]
            first_cycle[key] = min(first_cycle.get(key, 1 << 30), op.cycle)
    # level-1 adder consumes level-0 outputs: cannot start before them
    assert first_cycle[("tree", 1, 0)] >= min(
        first_cycle[("tree", 0, 0)], first_cycle[("tree", 0, 1)]
    )


def test_bench_build_tagged_circuit(benchmark):
    smc = benchmark(build_scheduled_mac, 8)
    assert smc.n_cores == 8


def test_bench_schedule_generation(benchmark, smc):
    schedule = benchmark(schedule_rounds, smc, 4)
    assert schedule.steady_state_cycles_per_mac == 24
