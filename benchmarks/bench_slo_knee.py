"""SLO knee benchmark: where adaptive serving stops absorbing load.

Ramps offered query rate against the real
:class:`repro.serve.control.SLOController` driving a deterministic
queueing model of the serving layer (bounded queue, scalable worker
pool, fixed per-query service time), one controller tick per simulated
interval.  At each rate level the loop settles, then the level is
judged *sustainable* iff the controller converged back to zero shed
with p99 at or under the SLO target.  The **knee** — the headline
number — is the highest sustainable rate: below it the controller
absorbs the load by scaling workers and shrinking batches; above it,
admission shedding is the only stable response.

The simulated half is bit-deterministic (the controller is a pure
function of its sample trace and the shed stream is seeded), so the
committed knee is machine-independent and reviewable across PRs.  The
``derived`` section adds a machine-dependent calibration — real p50/p99
service latency through a live :class:`ServingServer` — reported for
context, never bound by thresholds.

Results land in ``BENCH_slo.json`` at the repository root; the shape is
enforced by ``tests/perf/test_bench_artifacts.py`` and kept fresh by
the CI ``bench-smoke`` job (``--check``).

Usage:
    python benchmarks/bench_slo_knee.py            # full run, write artifact
    python benchmarks/bench_slo_knee.py --smoke    # coarse ramp for CI
    python benchmarks/bench_slo_knee.py --check    # validate committed artifact
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.fixedpoint import Q8_4  # noqa: E402
from repro.host import CloudServer  # noqa: E402
from repro.serve import (  # noqa: E402
    LoadSample,
    ServingConfig,
    ServingServer,
    SLOConfig,
    SLOController,
)
from repro.telemetry import MetricsRegistry, percentile_of  # noqa: E402

SCHEMA_VERSION = 1
ARTIFACT_NAME = "BENCH_slo.json"
DEFAULT_PATH = REPO_ROOT / ARTIFACT_NAME

#: per-rate-level metric keys (one ramp entry each)
LEVEL_KEYS = (
    "rate_qps",
    "p99_ms",
    "shed_probability",
    "workers",
    "batch_max",
    "served",
    "shed",
    "sustainable",
)
#: the headline knee entry's keys
KNEE_KEYS = (
    "knee_qps",
    "p99_ms_at_knee",
    "workers_at_knee",
    "first_shed_qps",
)
DERIVED_KEYS = (
    "measured_service_p50_ms",
    "measured_service_p99_ms",
    "capacity_model_qps",
)
CONFIG_KEYS = (
    "p99_target_ms",
    "min_workers",
    "max_workers",
    "queue_depth",
    "service_time_ms",
    "tick_s",
    "ticks_per_level",
    "rate_start_qps",
    "rate_step_qps",
    "rate_stop_qps",
    "calibration_queries",
    "smoke",
)


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


# ----------------------------------------------------------------------
# the deterministic ramp
# ----------------------------------------------------------------------
class ServeModel:
    """A deterministic bounded-queue model of the serving layer.

    Per tick: admit arrivals through the controller's seeded shed
    stream, queue what fits, serve ``workers / service_time`` queries,
    and report the M/D/c-style latency estimate (queue wait + service)
    the controller would have observed.  Fractional arrivals and
    service capacity accumulate across ticks so rates need not divide
    the tick evenly.
    """

    def __init__(self, controller: SLOController, args):
        self.controller = controller
        self.queue_depth = args.queue_depth
        self.service_s = args.service_time_ms / 1000.0
        self.tick_s = args.tick_s
        self.queue_len = 0
        self.last_p99_ms = 0.0
        self._arrival_acc = 0.0
        self._service_acc = 0.0

    def run_tick(self, rate_qps: float) -> tuple[int, int]:
        """One simulated control interval; returns (served, shed)."""
        op = self.controller.operating_point
        self._arrival_acc += rate_qps * self.tick_s
        arrivals = int(self._arrival_acc)
        self._arrival_acc -= arrivals

        shed = admitted = 0
        for _ in range(arrivals):
            if self.controller.should_shed():
                shed += 1
            elif self.queue_len < self.queue_depth:
                self.queue_len += 1
                admitted += 1
            else:
                shed += 1  # queue overflow sheds like admission does

        # the controller observes the interval's peak depth (what the
        # queue telemetry shows mid-interval), not the post-drain floor
        peak_depth = self.queue_len

        self._service_acc += op.workers * self.tick_s / self.service_s
        service_slots = int(self._service_acc)
        self._service_acc -= service_slots
        served = min(self.queue_len, service_slots)
        self.queue_len -= served

        # the last-admitted query's time in system: the backlog ahead
        # of it at the pool's drain rate, plus one service time
        if served:
            wait_s = peak_depth * self.service_s / op.workers
            p99_ms = (wait_s + self.service_s) * 1000.0
            p50_ms = (wait_s / 2.0 + self.service_s) * 1000.0
        else:
            p99_ms = p50_ms = 0.0  # no completions: latency unknown
        self.last_p99_ms = p99_ms
        self.controller.tick(LoadSample(
            queue_depth=peak_depth,
            queue_capacity=self.queue_depth,
            inflight=min(op.workers, peak_depth),
            workers=op.workers,
            p50_ms=p50_ms,
            p99_ms=p99_ms,
        ))
        return served, shed


def bench_ramp(args) -> dict:
    """Ramp the offered rate; one warm controller across all levels."""
    controller = SLOController(
        SLOConfig(
            p99_target_ms=args.p99_target_ms,
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            cooldown_ticks=2,
        ),
        workers=args.min_workers,
        seed=args.seed,
    )
    model = ServeModel(controller, args)
    levels = []
    knee = {
        "knee_qps": 0.0,
        "p99_ms_at_knee": 0.0,
        "workers_at_knee": 0,
        "first_shed_qps": 0.0,
    }
    rate = args.rate_start_qps
    while rate <= args.rate_stop_qps:
        served = shed = 0
        for _ in range(args.ticks_per_level):
            s, d = model.run_tick(rate)
            served += s
            shed += d
        # judge the settled state: a sustainable level ends the window
        # with zero shed and its steady latency inside the SLO
        op = controller.operating_point
        last_p99 = model.last_p99_ms
        sustainable = (
            op.shed_probability == 0.0
            and shed == 0
            and last_p99 <= args.p99_target_ms
        )
        levels.append({
            "rate_qps": rate,
            "p99_ms": round(last_p99, 4),
            "shed_probability": op.shed_probability,
            "workers": op.workers,
            "batch_max": op.batch_max,
            "served": served,
            "shed": shed,
            "sustainable": sustainable,
        })
        if sustainable:
            knee["knee_qps"] = float(rate)
            knee["p99_ms_at_knee"] = round(last_p99, 4)
            knee["workers_at_knee"] = op.workers
        elif shed and not knee["first_shed_qps"]:
            knee["first_shed_qps"] = float(rate)
        rate += args.rate_step_qps
    return {"ramp": levels, "knee": knee}


# ----------------------------------------------------------------------
# the machine-dependent calibration
# ----------------------------------------------------------------------
def bench_calibration(args) -> dict:
    """Real per-query service latency through a live ServingServer —
    context for reading the simulated knee on this machine."""
    model = np.array([[0.5, -0.25, 1.0, 0.75], [1.0, 0.75, -0.5, 0.25]])
    server = CloudServer(
        model, Q8_4, pool_size=0, seed=args.seed, auto_refill=False,
        telemetry=MetricsRegistry(),
    )
    config = ServingConfig(workers=1, queue_depth=4, refill=False)
    latencies = []
    with ServingServer(server, config) as serving:
        x = [0.5, -0.25, 0.75, 0.125]
        serving.query(0, x, timeout=60.0)  # warm the garbling path
        for i in range(args.calibration_queries):
            t0 = time.perf_counter()
            serving.query(i % model.shape[0], x, timeout=60.0)
            latencies.append((time.perf_counter() - t0) * 1000.0)
    p50 = percentile_of(latencies, 50.0)
    p99 = percentile_of(latencies, 99.0)
    return {
        "measured_service_p50_ms": round(p50, 4),
        "measured_service_p99_ms": round(p99, 4),
        # what the model's service-time assumption implies at max scale
        "capacity_model_qps": round(
            args.max_workers * 1000.0 / args.service_time_ms, 4
        ),
    }


def run_bench(args) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": ARTIFACT_NAME,
        "generated_by": "benchmarks/bench_slo_knee.py",
        "git_rev": git_rev(),
        "seed": args.seed,
        "config": {
            "p99_target_ms": args.p99_target_ms,
            "min_workers": args.min_workers,
            "max_workers": args.max_workers,
            "queue_depth": args.queue_depth,
            "service_time_ms": args.service_time_ms,
            "tick_s": args.tick_s,
            "ticks_per_level": args.ticks_per_level,
            "rate_start_qps": args.rate_start_qps,
            "rate_step_qps": args.rate_step_qps,
            "rate_stop_qps": args.rate_stop_qps,
            "calibration_queries": args.calibration_queries,
            "smoke": bool(args.smoke),
        },
        "metrics": bench_ramp(args),
        "derived": bench_calibration(args),
    }


# ----------------------------------------------------------------------
# structural validation (shared with tests/perf/test_bench_artifacts.py)
# ----------------------------------------------------------------------
def structural_errors(doc: dict) -> list[str]:
    """Why ``doc`` is not a valid BENCH_slo artifact (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["artifact root must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}"
        )
    if doc.get("artifact") != ARTIFACT_NAME:
        errors.append(f"artifact must be {ARTIFACT_NAME!r}")
    for key in ("generated_by", "git_rev"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"{key} must be a non-empty string")
    if not isinstance(doc.get("seed"), int):
        errors.append("seed must be an integer")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in CONFIG_KEYS:
            if key not in config:
                errors.append(f"config is missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        ramp = metrics.get("ramp")
        if not isinstance(ramp, list) or not ramp:
            errors.append("metrics.ramp must be a non-empty list")
        else:
            for i, entry in enumerate(ramp):
                if not isinstance(entry, dict) or set(entry) != set(LEVEL_KEYS):
                    errors.append(
                        f"metrics.ramp[{i}] must carry exactly {LEVEL_KEYS}"
                    )
                    continue
                for key in LEVEL_KEYS:
                    value = entry[key]
                    if key == "sustainable":
                        if not isinstance(value, bool):
                            errors.append(
                                f"metrics.ramp[{i}].sustainable must be a bool"
                            )
                    elif not isinstance(value, (int, float)) or value < 0:
                        errors.append(
                            f"metrics.ramp[{i}].{key} must be a "
                            "non-negative number"
                        )
        knee = metrics.get("knee")
        if not isinstance(knee, dict) or set(knee) != set(KNEE_KEYS):
            errors.append(f"metrics.knee must carry exactly {KNEE_KEYS}")
        else:
            for key in KNEE_KEYS:
                value = knee[key]
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"metrics.knee.{key} must be a non-negative number")
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors.append("derived must be an object")
    else:
        for key in DERIVED_KEYS:
            value = derived.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"derived.{key} must be a non-negative number")
    return errors


def check_artifact(path: Path, fresh: dict) -> list[str]:
    """Staleness/malformation report for the committed artifact.

    The ramp's *length* is resolution-dependent (a smoke check ramps
    coarser than the committed full run), so freshness is judged
    structurally: same sections, same keys per entry, same knee shape.
    """
    if not path.exists():
        return [f"{path} does not exist — run the bench to generate it"]
    try:
        committed = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    errors = [f"committed: {e}" for e in structural_errors(committed)]
    errors += [f"fresh run: {e}" for e in structural_errors(fresh)]
    if errors:
        return errors
    for section in ("config", "derived"):
        if set(committed[section].keys()) != set(fresh[section].keys()):
            errors.append(f"{section} keys differ from the bench's — stale")
    if set(committed["metrics"].keys()) != set(fresh["metrics"].keys()):
        errors.append("metrics sections differ from the bench's — stale")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--ticks-per-level", type=int, default=None,
                        help="controller ticks to settle at each rate level")
    parser.add_argument("--smoke", action="store_true",
                        help="coarse ramp for CI (step 100 qps, 24 ticks/level)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed artifact instead of writing it")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH)
    args = parser.parse_args(argv)

    if args.check and not args.smoke:
        args.smoke = True  # checking only needs the bench's *shape*
    # the controller envelope under test: scale 1..8 workers toward a
    # 50 ms p99 with a 20 ms deterministic service time -> the model
    # caps out at 400 qps of raw capacity
    args.p99_target_ms = 50.0
    args.min_workers = 1
    args.max_workers = 8
    args.queue_depth = 32
    args.service_time_ms = 20.0
    # control interval matched to the service time: arrivals land in
    # service-sized bursts, so queue-wait estimates stay realistic
    # rather than scaling with an arbitrary tick length
    args.tick_s = 0.02
    args.ticks_per_level = args.ticks_per_level if args.ticks_per_level is not None else (
        24 if args.smoke else 80
    )
    args.rate_start_qps = 25.0
    args.rate_step_qps = 100.0 if args.smoke else 25.0
    args.rate_stop_qps = 600.0
    args.calibration_queries = 3 if args.smoke else 20

    doc = run_bench(args)
    if args.check:
        errors = check_artifact(args.out, doc)
        if errors:
            print(f"FAIL: {args.out.name} is stale or malformed:")
            for e in errors:
                print(f"  - {e}")
            return 1
        committed = json.loads(args.out.read_text())
        print(
            f"OK: {args.out.name} (schema v{committed['schema_version']}, "
            f"rev {committed['git_rev']}) matches the bench's shape"
        )
        return 0

    errors = structural_errors(doc)
    if errors:
        print("FAIL: generated artifact is malformed (bench bug):")
        for e in errors:
            print(f"  - {e}")
        return 1
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for entry in doc["metrics"]["ramp"]:
        marker = "ok " if entry["sustainable"] else "HOT"
        print(
            f"  [{marker}] {entry['rate_qps']:6.0f} qps: "
            f"p99 {entry['p99_ms']:7.2f} ms  "
            f"workers {entry['workers']}  batch {entry['batch_max']}  "
            f"shed p={entry['shed_probability']:.3f} ({entry['shed']} shed)"
        )
    knee = doc["metrics"]["knee"]
    derived = doc["derived"]
    print(
        f"  knee: {knee['knee_qps']:.0f} qps at p99 "
        f"{knee['p99_ms_at_knee']:.2f} ms on {knee['workers_at_knee']} workers "
        f"(first shed at {knee['first_shed_qps']:.0f} qps)"
    )
    print(
        f"  calibration: real serve p50 {derived['measured_service_p50_ms']:.1f} ms, "
        f"p99 {derived['measured_service_p99_ms']:.1f} ms on this machine"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
