"""Vector-garbling benchmark: the committed perf-trajectory artifact.

Measures both serving garble modes on the same MAC circuit —
``sequential`` (the gate-at-a-time FSM reference) and ``vectorized``
(stage-batched AES across gates and sessions) — and writes the results
to ``BENCH_garble.json`` at the repository root.  The artifact is
committed so the perf trajectory is visible across PRs; its *shape* is
enforced by ``tests/perf/test_bench_artifacts.py`` and kept fresh by
the CI ``bench-smoke`` job (``--check`` validates the committed file
structurally against a tiny in-memory run — timings are machine-local
and deliberately not compared).

Usage:
    python benchmarks/bench_vector_garble.py            # full run, write artifact
    python benchmarks/bench_vector_garble.py --smoke    # tiny sizes, write artifact
    python benchmarks/bench_vector_garble.py --check    # validate committed artifact
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.fixedpoint import Q8_4  # noqa: E402
from repro.gc.stage_plan import stage_plan_for  # noqa: E402
from repro.host import AnalyticsClient, CloudServer, GARBLE_MODES  # noqa: E402
from repro.telemetry import MetricsRegistry  # noqa: E402

SCHEMA_VERSION = 1
ARTIFACT_NAME = "BENCH_garble.json"
DEFAULT_PATH = REPO_ROOT / ARTIFACT_NAME

#: metric keys every mode entry must carry (unit in the name)
METRIC_KEYS = (
    "tables_per_s",
    "macs_per_s",
    "p99_serve_latency_ms",
    "aes_invocations_per_gate",
)
DERIVED_KEYS = (
    "speedup_tables_per_s",
    "mean_and_gates_per_stage",
    "effective_batch_per_aes_call",
)
CONFIG_KEYS = (
    "bitwidth",
    "rounds",
    "runs",
    "serve_queries",
    "smoke",
)


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _make_server(seed: int, mode: str, rounds: int) -> CloudServer:
    # pool_size=0 + no auto refill puts garbling in the serve path, so
    # the p99 latency below includes the garble cost of each mode
    model = np.round(
        np.linspace(-1.5, 1.5, rounds).reshape(1, rounds) * 16.0
    ) / 16.0
    return CloudServer(
        model,
        Q8_4,
        pool_size=0,
        seed=seed,
        auto_refill=False,
        garble_mode=mode,
    )


def bench_mode(mode: str, args) -> dict:
    """Throughput + latency for one garble mode."""
    assert mode in GARBLE_MODES
    server = _make_server(args.seed, mode, args.rounds)
    accelerator = server.accelerator
    telemetry = MetricsRegistry()

    # --- garbling throughput ------------------------------------------
    t0 = time.perf_counter()
    if mode == "vectorized":
        runs = accelerator.garble_vectorized(
            args.rounds, args.runs, telemetry=telemetry
        )
    else:
        runs = [accelerator.garble(args.rounds) for _ in range(args.runs)]
    elapsed = time.perf_counter() - t0
    total_tables = sum(r.total_tables for r in runs)
    total_and_gates = total_tables  # one table per AND gate (half gates)
    if mode == "vectorized":
        aes_invocations = telemetry.counter("gc.aes_batch_calls").value
    else:
        # the FSM engine issues 4 scalar fixed-key AES calls per table
        aes_invocations = 4 * total_tables

    # --- end-to-end serve latency -------------------------------------
    client = AnalyticsClient(server)
    x = [round(v * 16) / 16 for v in np.linspace(-1.0, 1.0, args.rounds)]
    latencies_ms = []
    for _ in range(args.serve_queries):
        t0 = time.perf_counter()
        client.query_row(0, x)
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
    latencies_ms.sort()
    p99 = (
        latencies_ms[min(len(latencies_ms) - 1, int(0.99 * len(latencies_ms)))]
        if latencies_ms
        else 0.0
    )

    return {
        "tables_per_s": total_tables / elapsed,
        "macs_per_s": (args.runs * args.rounds) / elapsed,
        "p99_serve_latency_ms": p99,
        "aes_invocations_per_gate": aes_invocations / max(1, total_and_gates),
        "_elapsed_s": elapsed,
        "_total_tables": total_tables,
        "_serve_latencies_ms": latencies_ms,
    }


def run_bench(args) -> dict:
    results = {}
    for mode in GARBLE_MODES:
        results[mode] = bench_mode(mode, args)

    server = _make_server(args.seed, "sequential", args.rounds)
    plan = stage_plan_for(server.accelerator.circuit.netlist)
    and_counts = plan.and_counts
    mean_per_stage = statistics.mean(and_counts) if and_counts else 0.0
    vec = results["vectorized"]
    seq = results["sequential"]
    # gates hashed per vectorised AES invocation (4 hashes per gate)
    vec_total_gates = vec["_total_tables"]
    vec_invocations = vec["aes_invocations_per_gate"] * max(1, vec_total_gates)
    effective_batch = vec_total_gates / max(1.0, vec_invocations)

    metrics = {
        mode: {k: results[mode][k] for k in METRIC_KEYS} for mode in GARBLE_MODES
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": ARTIFACT_NAME,
        "generated_by": "benchmarks/bench_vector_garble.py",
        "git_rev": git_rev(),
        "seed": args.seed,
        "config": {
            "bitwidth": Q8_4.total_bits,
            "rounds": args.rounds,
            "runs": args.runs,
            "serve_queries": args.serve_queries,
            "smoke": bool(args.smoke),
        },
        "metrics": metrics,
        "derived": {
            "speedup_tables_per_s": vec["tables_per_s"] / max(1e-12, seq["tables_per_s"]),
            "mean_and_gates_per_stage": mean_per_stage,
            "effective_batch_per_aes_call": effective_batch,
        },
    }


# ----------------------------------------------------------------------
# structural validation (shared with tests/perf/test_bench_artifacts.py)
# ----------------------------------------------------------------------
def structural_errors(doc: dict) -> list[str]:
    """Why ``doc`` is not a valid BENCH_garble artifact (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["artifact root must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}"
        )
    if doc.get("artifact") != ARTIFACT_NAME:
        errors.append(f"artifact must be {ARTIFACT_NAME!r}")
    for key in ("generated_by", "git_rev"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"{key} must be a non-empty string")
    if not isinstance(doc.get("seed"), int):
        errors.append("seed must be an integer")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in CONFIG_KEYS:
            if key not in config:
                errors.append(f"config is missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for mode in GARBLE_MODES:
            entry = metrics.get(mode)
            if not isinstance(entry, dict):
                errors.append(f"metrics.{mode} must be an object")
                continue
            for key in METRIC_KEYS:
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"metrics.{mode}.{key} must be a non-negative number"
                    )
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors.append("derived must be an object")
    else:
        for key in DERIVED_KEYS:
            value = derived.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"derived.{key} must be a non-negative number")
    return errors


def check_artifact(path: Path, fresh: dict) -> list[str]:
    """Staleness/malformation report for the committed artifact.

    Timings are machine-local, so staleness is *structural*: the
    committed file must parse, pass :func:`structural_errors`, and
    carry exactly the schema/metric/config/derived keys a fresh run
    produces.  A PR that changes the bench's shape without regenerating
    the artifact fails here.
    """
    if not path.exists():
        return [f"{path} does not exist — run the bench to generate it"]
    try:
        committed = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    errors = [f"committed: {e}" for e in structural_errors(committed)]
    errors += [f"fresh run: {e}" for e in structural_errors(fresh)]
    if errors:
        return errors
    if set(committed["metrics"].keys()) != set(fresh["metrics"].keys()):
        errors.append(
            "committed artifact's garble modes differ from the bench's "
            f"({sorted(committed['metrics'])} vs {sorted(fresh['metrics'])}) — stale"
        )
    for mode in fresh["metrics"]:
        if mode in committed["metrics"] and set(
            committed["metrics"][mode]
        ) != set(fresh["metrics"][mode]):
            errors.append(f"metrics.{mode} keys differ from the bench's — stale")
    for section in ("config", "derived"):
        if set(committed[section].keys()) != set(fresh[section].keys()):
            errors.append(f"{section} keys differ from the bench's — stale")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--rounds", type=int, default=None,
                        help="MAC rounds per run (model columns)")
    parser.add_argument("--runs", type=int, default=None,
                        help="independent garbling runs (the session axis)")
    parser.add_argument("--serve-queries", type=int, default=None,
                        help="end-to-end queries for the p99 latency sample")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (defaults: rounds=2 runs=2 queries=3)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed artifact instead of writing it")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH)
    args = parser.parse_args(argv)

    if args.check and not args.smoke:
        args.smoke = True  # checking only needs the bench's *shape*
    defaults = (2, 2, 3) if args.smoke else (4, 8, 12)
    args.rounds = args.rounds if args.rounds is not None else defaults[0]
    args.runs = args.runs if args.runs is not None else defaults[1]
    args.serve_queries = (
        args.serve_queries if args.serve_queries is not None else defaults[2]
    )

    doc = run_bench(args)
    if args.check:
        errors = check_artifact(args.out, doc)
        if errors:
            print(f"FAIL: {args.out.name} is stale or malformed:")
            for e in errors:
                print(f"  - {e}")
            return 1
        committed = json.loads(args.out.read_text())
        print(
            f"OK: {args.out.name} (schema v{committed['schema_version']}, "
            f"rev {committed['git_rev']}) matches the bench's shape"
        )
        return 0

    errors = structural_errors(doc)
    if errors:
        print("FAIL: generated artifact is malformed (bench bug):")
        for e in errors:
            print(f"  - {e}")
        return 1
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    seq, vec = doc["metrics"]["sequential"], doc["metrics"]["vectorized"]
    print(f"wrote {args.out}")
    print(
        f"  sequential: {seq['tables_per_s']:>12.0f} tables/s  "
        f"{seq['macs_per_s']:>8.1f} MACs/s  p99 {seq['p99_serve_latency_ms']:.1f} ms  "
        f"{seq['aes_invocations_per_gate']:.3f} AES calls/gate"
    )
    print(
        f"  vectorized: {vec['tables_per_s']:>12.0f} tables/s  "
        f"{vec['macs_per_s']:>8.1f} MACs/s  p99 {vec['p99_serve_latency_ms']:.1f} ms  "
        f"{vec['aes_invocations_per_gate']:.3f} AES calls/gate"
    )
    d = doc["derived"]
    print(
        f"  speedup {d['speedup_tables_per_s']:.1f}x, "
        f"{d['mean_and_gates_per_stage']:.1f} AND/stage, "
        f"effective batch {d['effective_batch_per_aes_call']:.1f} gates/AES call"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
