"""Extension benches: the bit-width sweep figure and the host runtime.

* `throughput_sweep` turns Table 2 into continuous series: who wins by
  how much as the word size grows (the speedup-vs-software line grows
  ~linearly in b, as the 44/48/57 progression already hints);
* the host-serving bench exercises Figure 1's operational loop — a
  pre-garbling pool turning accelerator throughput into request
  latency.
"""

import numpy as np
import pytest

from repro.fixedpoint import Q8_4
from repro.host import AnalyticsClient, CloudServer
from repro.perf.sweep import format_sweep, throughput_sweep


def test_sweep_figure(artifact):
    points = throughput_sweep(range(4, 66, 4))
    artifact("ext_sweep_throughput.txt", format_sweep(points))
    # shape claims: MAXelerator always wins; the software gap grows with
    # b overall (the ceil() in the core-count formula causes small local
    # steps, so the trend is monotone only up to ~5%)
    gaps = [p.speedup_vs_software for p in points]
    assert all(g > 1 for g in gaps)
    assert gaps[-1] > 1.3 * gaps[0]
    for a, b in zip(gaps, gaps[1:]):
        assert b > a * 0.95
    # the published points sit on the same curves
    by_b = {p.bitwidth: p for p in points}
    assert by_b[8].speedup_vs_software == pytest.approx(44, rel=0.05)
    assert by_b[32].speedup_vs_software == pytest.approx(54, rel=0.05)


def test_overlay_gap_shrinks_with_width():
    points = throughput_sweep([8, 16, 32, 64])
    overlay_gaps = [p.speedup_vs_overlay for p in points]
    assert overlay_gaps == sorted(overlay_gaps, reverse=True)


def test_host_serving_report(artifact):
    model = np.array([[0.5, -1.0], [1.5, 0.25]])
    server = CloudServer(model, Q8_4, pool_size=2, seed=31)
    client = AnalyticsClient(server)
    x = np.array([1.0, -0.5])
    results = [client.query_row(i % 2, x) for i in range(3)]
    server.refill_pool()
    stats = server.stats
    text = "\n".join(
        [
            "Host runtime (Figure 1's pre-garbling pool):",
            f"  requests served:      {stats.requests_served}",
            f"  runs garbled:         {stats.runs_garbled}",
            f"  pool hit rate:        {stats.pool_hit_rate:.0%}",
            f"  tables streamed:      {stats.tables_streamed}",
            f"  pool level after refill: {server.pool_level}",
        ]
    )
    artifact("ext_host_serving.txt", text)
    for i, got in enumerate(results):
        assert got == pytest.approx(model[i % 2] @ x, abs=0.05)
    assert stats.pool_hits >= 2


def test_bench_sweep_generation(benchmark):
    points = benchmark(throughput_sweep)
    assert len(points) == 31


def test_bench_pool_refill(benchmark):
    server = CloudServer(np.array([[1.0, 1.0]]), Q8_4, pool_size=0, seed=32)

    def refill_one():
        server.pool_size = server.pool_level + 1
        return server.refill_pool()

    added = benchmark.pedantic(refill_one, rounds=3, iterations=1)
    assert added == 1
