"""A2 — Ablation: the GC optimisation stack (Section 2.2).

Quantifies, on the actual MAC circuit, what each optimisation the paper
adopts contributes: classical garbling (4 ciphertexts/gate, all gates)
-> point-and-permute + row reduction (3/gate) -> half gates (2/gate,
non-XOR only) -> free XOR (XOR gates cost nothing at all).
"""

import pytest

from repro.accel.tree_mac import build_scheduled_mac
from repro.crypto.prf import GarblingHash
from repro.gc.garble import Garbler

CIPHERTEXT_BYTES = 16


@pytest.fixture(scope="module")
def net8():
    return build_scheduled_mac(8).netlist


def table_bytes_by_scheme(net) -> dict[str, int]:
    stats = net.stats()
    total_gates = stats.n_gates
    nonfree = stats.n_nonfree
    return {
        "classical (4 rows, all gates)": 4 * CIPHERTEXT_BYTES * total_gates,
        "free XOR (4 rows, AND only)": 4 * CIPHERTEXT_BYTES * nonfree,
        "+ row reduction (3 rows)": 3 * CIPHERTEXT_BYTES * nonfree,
        "+ half gates (2 rows)": 2 * CIPHERTEXT_BYTES * nonfree,
    }


def test_ablation_report(net8, artifact):
    # MEASURED sizes: all three schemes are implemented and run on the
    # same circuit (repro.gc.classic for the historical ones)
    from repro.gc.classic import ClassicGarbler

    measured = {
        "4-row point-and-permute (all gates)": ClassicGarbler(
            net8, scheme="p&p"
        ).garble().table_bytes,
        "free XOR + row reduction (GRR3)": ClassicGarbler(
            net8, scheme="grr3"
        ).garble().table_bytes,
        "free XOR + half gates (this work)": sum(
            len(t.to_bytes()) for t in Garbler(net8).garble().tables
        ),
    }
    stats = net8.stats()
    lines = [
        "Ablation A2: GC optimisation stack on the b=8 MAC round circuit",
        f"  gates: {stats.n_gates} total, {stats.n_nonfree} AND-class, "
        f"{stats.n_free} free (XOR/NOT)",
        "  (sizes below are measured from real garblings, not modelled)",
        "",
    ]
    base = None
    for name, size in measured.items():
        base = base or size
        lines.append(f"  {name:<36} {size:>8} B  ({size / base:.0%} of classical)")
    artifact("ablation_gc_opts.txt", "\n".join(lines))
    sizes = list(measured.values())
    assert sizes == sorted(sizes, reverse=True)
    # analytic model agrees with the measured half-gates size
    assert table_bytes_by_scheme(net8)["+ half gates (2 rows)"] == sizes[-1]


def test_free_xor_share(net8):
    # XOR-rich arithmetic: most gates must be free or the engine count
    # story collapses
    stats = net8.stats()
    assert stats.n_free / stats.n_gates > 0.5


def test_hash_call_budget(net8):
    # 4 garbler hash calls per AND gate, 0 per XOR — measured, not assumed
    gc = Garbler(net8).garble()
    assert gc.hash_calls == 4 * net8.stats().n_nonfree


def test_bench_garble_with_half_gates(benchmark, net8):
    result = benchmark.pedantic(
        lambda: Garbler(net8).garble(), rounds=1, iterations=1
    )
    assert len(result.tables) == net8.stats().n_nonfree


def test_bench_fixed_key_hash(benchmark):
    h = GarblingHash()
    value = benchmark(h, 0x1234567890ABCDEF, 42)
    assert 0 <= value < (1 << 128)


def test_bench_fixed_key_hash_batch(benchmark):
    h = GarblingHash()
    labels = list(range(1, 257))
    tweaks = list(range(256))
    out = benchmark(h.hash_many, labels, tweaks)
    assert len(out) == 256
