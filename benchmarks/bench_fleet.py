"""Process-fleet benchmark: the committed serving-resilience artifact.

Drives a real :class:`repro.fleet.ProcessFleet` — N gateway subprocesses
sharing one crash-consistent JSONL store — through three scenarios:

* ``steady``       — clean sessions, the sessions/sec baseline;
* ``resume``       — the client's TCP transport is cut once the shared
  store shows a committed round, and the session resumes over the
  failover dialer (p99 resume latency);
* ``handoff_kill`` — the serving member takes a real ``SIGKILL`` at the
  same trigger, a peer steals the leaked lease and adopts the
  checkpoint from the shared file (handoff cost under kill).

The fault trigger polls the supervisor-side store for
``committed_round(sid) >= 1`` rather than counting frames: with
per-round OT the client's receive sequence advances before the member's
admission checkpoint lands, so a frame-count trigger can strand a
session lease-held but checkpoint-less.  The store is the one surface
both sides agree on.

Results land in ``BENCH_fleet.json`` at the repository root; the
artifact is committed so the resilience trajectory is visible across
PRs, its shape is enforced by ``tests/perf/test_bench_artifacts.py``,
and the CI ``bench-smoke`` job keeps it structurally fresh
(``--check``).  Wall-clock numbers vary by machine; the committed
acceptance thresholds deliberately bind the machine-independent half
(every faulted session recovers, every result bit-exact, N = 4
processes).

Usage:
    python benchmarks/bench_fleet.py            # full run, write artifact
    python benchmarks/bench_fleet.py --smoke    # tiny fleet, write artifact
    python benchmarks/bench_fleet.py --check    # validate committed artifact
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.fleet import ProcessFleet  # noqa: E402
from repro.net import RemoteAnalyticsClient  # noqa: E402
from repro.recover import BackoffPolicy  # noqa: E402
from repro.serve import ServingConfig  # noqa: E402

SCHEMA_VERSION = 1
ARTIFACT_NAME = "BENCH_fleet.json"
DEFAULT_PATH = REPO_ROOT / ARTIFACT_NAME

SCENARIOS = ("steady", "resume", "handoff_kill")

#: metric keys every scenario entry must carry; the fault-to-result pair
#: reads 0.0 in ``steady`` (no fault fires there)
METRIC_KEYS = (
    "sessions",
    "sessions_per_s",
    "p50_session_s",
    "p99_session_s",
    "fault_to_result_p50_s",
    "fault_to_result_p99_s",
    "recovered_fraction",
    "bit_exact_fraction",
)
#: the headline numbers, lifted out of the scenario entries
DERIVED_KEYS = (
    "steady_sessions_per_s",
    "resume_latency_p99_s",
    "handoff_cost_p50_s",
    "handoff_cost_p99_s",
)
CONFIG_KEYS = (
    "members",
    "rows",
    "rounds",
    "sessions_per_scenario",
    "lease_ttl_s",
    "smoke",
)

RECV_TIMEOUT_S = 20.0
FAULT_DEADLINE_S = 60.0


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return float(ordered[rank])


def fleet_config(args) -> ServingConfig:
    return ServingConfig(
        workers=1,
        queue_depth=4,
        refill=False,
        recv_timeout_s=RECV_TIMEOUT_S,
        drain_timeout_s=10.0,
        lease_ttl_s=args.lease_ttl_s,
        resume_batch_window_s=0.01,
        retry_after_s=0.02,
    )


def make_client(fleet: ProcessFleet, start_at: int, seed: int):
    return RemoteAnalyticsClient(
        dial=fleet.dialer(name="bench-fleet", recv_timeout_s=RECV_TIMEOUT_S,
                          start_at=start_at),
        backoff=BackoffPolicy(base_s=0.02, cap_s=0.2, max_attempts=12,
                              seed=seed),
    )


def query_inputs(args, index: int):
    """A deterministic (row, x) per session, snapped to the Q8.4 grid so
    the plaintext reference compares bit-exact."""
    rng = np.random.default_rng(args.seed * 1000 + index)
    x = np.round(rng.uniform(-1.0, 1.0, size=args.rounds) * 16.0) / 16.0
    return index % args.rows, x


def timed_session(fleet, audit, args, index: int, fire=None):
    """One client session; ``fire(victim, client)`` (if given) runs once
    the shared store shows ``committed_round >= 1``.  Returns a sample
    dict: wall seconds, fault-to-result seconds, fired, bit_exact."""
    victim = index % fleet.n_members
    row, x = query_inputs(args, index)
    client = make_client(fleet, start_at=victim, seed=args.seed + index)
    sample = {"wall_s": 0.0, "fault_s": 0.0, "fired": False,
              "bit_exact": False, "victim": victim}
    result: dict = {}
    try:
        sid = client.session_id
        t0 = time.perf_counter()

        def query():
            try:
                result["got"] = client.query_row(row, x, ot_mode="per_round")
            except BaseException as exc:  # classified below, not swallowed
                result["err"] = exc

        worker = threading.Thread(target=query)
        worker.start()
        t_fault = None
        if fire is not None:
            deadline = time.monotonic() + FAULT_DEADLINE_S
            while worker.is_alive() and time.monotonic() < deadline:
                committed = audit.committed_round(sid)
                if committed is not None and committed >= 1:
                    t_fault = time.perf_counter()
                    fire(victim, client)
                    sample["fired"] = True
                    break
                time.sleep(0.0005)
        worker.join(timeout=FAULT_DEADLINE_S)
        if worker.is_alive():
            raise RuntimeError(
                f"session {index} hung after the fault — bench aborted"
            )
        t1 = time.perf_counter()
        if "err" in result:
            raise result["err"]
        sample["wall_s"] = t1 - t0
        sample["fault_s"] = (t1 - t_fault) if t_fault is not None else 0.0
        sample["bit_exact"] = result["got"] == fleet.expected(row, x)
    finally:
        client.close()
    return sample


def summarize(samples: list[dict], faulted: bool) -> dict:
    walls = [s["wall_s"] for s in samples]
    faults = [s["fault_s"] for s in samples if s["fired"]]
    fired = [s for s in samples if s["fired"]]
    recovered = [s for s in fired if s["bit_exact"]]
    return {
        "sessions": len(samples),
        "sessions_per_s": len(samples) / sum(walls) if walls else 0.0,
        "p50_session_s": percentile(walls, 0.50),
        "p99_session_s": percentile(walls, 0.99),
        "fault_to_result_p50_s": percentile(faults, 0.50),
        "fault_to_result_p99_s": percentile(faults, 0.99),
        "recovered_fraction": (
            (len(recovered) / len(fired)) if faulted
            else (sum(s["bit_exact"] for s in samples) / max(1, len(samples)))
        ) if (fired or not faulted) else 0.0,
        "bit_exact_fraction": (
            sum(s["bit_exact"] for s in samples) / max(1, len(samples))
        ),
    }


def bench_scenario(scenario: str, fleet: ProcessFleet, args) -> dict:
    audit = fleet.open_store()
    samples = []
    try:
        for i in range(args.sessions_per_scenario):
            if scenario == "steady":
                samples.append(timed_session(fleet, audit, args, i))
            elif scenario == "resume":
                samples.append(timed_session(
                    fleet, audit, args, i, fire=_cut_transport,
                ))
            else:  # handoff_kill
                sample = timed_session(
                    fleet, audit, args, i,
                    fire=lambda victim, _client: fleet.kill(victim),
                )
                samples.append(sample)
                # respawn outside the timed window: the handoff cost is
                # the client's, not the supervisor's
                if sample["fired"] and not fleet.alive(sample["victim"]):
                    fleet.respawn(sample["victim"])
    finally:
        audit.close()
    return summarize(samples, faulted=scenario != "steady")


def _cut_transport(_victim, client) -> None:
    """The resume fault: sever the client's live TCP transport; the
    failover dialer reconnects and the member resumes from its own
    checkpoint — no lease steal, no handoff."""
    try:
        client.endpoint.transport.close()
    except OSError:
        pass


def run_bench(args) -> dict:
    fleet = ProcessFleet(
        n_members=args.members,
        seed=args.seed,
        rows=args.rows,
        rounds=args.rounds,
        pool_size=0,
        auto_refill=False,
        config=fleet_config(args),
    )
    with fleet:
        metrics = {
            scenario: bench_scenario(scenario, fleet, args)
            for scenario in SCENARIOS
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "artifact": ARTIFACT_NAME,
        "generated_by": "benchmarks/bench_fleet.py",
        "git_rev": git_rev(),
        "seed": args.seed,
        "config": {
            "members": args.members,
            "rows": args.rows,
            "rounds": args.rounds,
            "sessions_per_scenario": args.sessions_per_scenario,
            "lease_ttl_s": args.lease_ttl_s,
            "smoke": bool(args.smoke),
        },
        "metrics": metrics,
        "derived": {
            "steady_sessions_per_s": metrics["steady"]["sessions_per_s"],
            "resume_latency_p99_s": metrics["resume"]["fault_to_result_p99_s"],
            "handoff_cost_p50_s": (
                metrics["handoff_kill"]["fault_to_result_p50_s"]
            ),
            "handoff_cost_p99_s": (
                metrics["handoff_kill"]["fault_to_result_p99_s"]
            ),
        },
    }


# ----------------------------------------------------------------------
# structural validation (shared with tests/perf/test_bench_artifacts.py)
# ----------------------------------------------------------------------
def structural_errors(doc: dict) -> list[str]:
    """Why ``doc`` is not a valid BENCH_fleet artifact (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        return ["artifact root must be a JSON object"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    if doc.get("artifact") != ARTIFACT_NAME:
        errors.append(f"artifact must be {ARTIFACT_NAME!r}")
    for key in ("generated_by", "git_rev"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"{key} must be a non-empty string")
    if not isinstance(doc.get("seed"), int):
        errors.append("seed must be an integer")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in CONFIG_KEYS:
            if key not in config:
                errors.append(f"config is missing {key!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for scenario in SCENARIOS:
            entry = metrics.get(scenario)
            if not isinstance(entry, dict):
                errors.append(f"metrics.{scenario} must be an object")
                continue
            for key in METRIC_KEYS:
                value = entry.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"metrics.{scenario}.{key} must be a "
                        "non-negative number"
                    )
    derived = doc.get("derived")
    if not isinstance(derived, dict):
        errors.append("derived must be an object")
    else:
        for key in DERIVED_KEYS:
            value = derived.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(f"derived.{key} must be a non-negative number")
    return errors


def check_artifact(path: Path, fresh: dict) -> list[str]:
    """Staleness/malformation report for the committed artifact.

    Wall-clock metrics are machine-dependent, so freshness is judged
    *structurally* (same sections, same keys, same scenarios): a smoke
    run on any machine can validate the committed full run's shape.
    """
    if not path.exists():
        return [f"{path} does not exist — run the bench to generate it"]
    try:
        committed = json.loads(path.read_text())
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    errors = [f"committed: {e}" for e in structural_errors(committed)]
    errors += [f"fresh run: {e}" for e in structural_errors(fresh)]
    if errors:
        return errors
    if set(committed["metrics"].keys()) != set(fresh["metrics"].keys()):
        errors.append(
            "committed artifact's scenarios differ from the bench's "
            f"({sorted(committed['metrics'])} vs "
            f"{sorted(fresh['metrics'])}) — stale"
        )
    for scenario in fresh["metrics"]:
        if scenario in committed["metrics"] and set(
            committed["metrics"][scenario]
        ) != set(fresh["metrics"][scenario]):
            errors.append(
                f"metrics.{scenario} keys differ from the bench's — stale"
            )
    for section in ("config", "derived"):
        if set(committed[section].keys()) != set(fresh[section].keys()):
            errors.append(f"{section} keys differ from the bench's — stale")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--members", type=int, default=None,
                        help="fleet size (default: 4 full, 2 smoke)")
    parser.add_argument("--sessions", type=int, default=None,
                        help="sessions per scenario (default: 8 full, 2 smoke)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="MAC rounds per session (default: 6 full, 4 smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fleet for CI (2 members, 2 sessions)")
    parser.add_argument("--check", action="store_true",
                        help="validate the committed artifact instead of "
                             "writing it")
    parser.add_argument("--out", type=Path, default=DEFAULT_PATH)
    args = parser.parse_args(argv)

    if args.check and not args.smoke:
        args.smoke = True  # checking only needs the bench's *shape*
    # the acceptance configuration: N = 4 real processes
    args.members = args.members if args.members is not None else (
        2 if args.smoke else 4
    )
    args.sessions_per_scenario = args.sessions if args.sessions is not None \
        else (2 if args.smoke else 8)
    args.rounds = args.rounds if args.rounds is not None else (
        4 if args.smoke else 6
    )
    args.rows = 2
    args.lease_ttl_s = 0.3

    doc = run_bench(args)
    if args.check:
        errors = check_artifact(args.out, doc)
        if errors:
            print(f"FAIL: {args.out.name} is stale or malformed:")
            for e in errors:
                print(f"  - {e}")
            return 1
        committed = json.loads(args.out.read_text())
        print(
            f"OK: {args.out.name} (schema v{committed['schema_version']}, "
            f"rev {committed['git_rev']}) matches the bench's shape"
        )
        return 0

    errors = structural_errors(doc)
    if errors:
        print("FAIL: generated artifact is malformed (bench bug):")
        for e in errors:
            print(f"  - {e}")
        return 1
    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for scenario in SCENARIOS:
        m = doc["metrics"][scenario]
        print(
            f"  {scenario:>12}: {m['sessions']} sessions  "
            f"{m['sessions_per_s']:.2f}/s  "
            f"p50 {m['p50_session_s'] * 1000:.0f}ms  "
            f"p99 {m['p99_session_s'] * 1000:.0f}ms  "
            f"recovered {m['recovered_fraction']:.0%}  "
            f"bit-exact {m['bit_exact_fraction']:.0%}"
        )
    d = doc["derived"]
    print(
        f"  resume p99 {d['resume_latency_p99_s'] * 1000:.0f}ms, "
        f"handoff p50 {d['handoff_cost_p50_s'] * 1000:.0f}ms / "
        f"p99 {d['handoff_cost_p99_s'] * 1000:.0f}ms under SIGKILL"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
