"""Wire-transport bench: table streaming over loopback sockets vs memory.

The FHE-vs-GC comparison literature says GC inference cost is dominated
by communication volume — so before optimizing it, measure what the
transport itself costs.  We stream realistic garbled-table payloads
(32 B per AND gate, batched per round like ``CloudServer.serve_row``)
through three transports and report tables/sec and MB/s:

* the in-memory queue channel (`gc.channel.local_channel`) — the PR 1
  serving path's transport, the zero-copy upper bound;
* a ``socketpair`` loopback `SocketEndpoint` — real kernel sockets and
  framing, no ports;
* and the full `GCGateway` + `RemoteAnalyticsClient` GC session, which
  adds garbling/OT/evaluation on top (the end-to-end figure).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.fixedpoint import Q8_4
from repro.gc.channel import local_channel
from repro.host import CloudServer
from repro.net import GCGateway, RemoteAnalyticsClient, socketpair_endpoints
from repro.serve import ServingConfig

TABLE_BYTES = 32
#: one payload ~= a 32-round serve of the 8-bit MAC (322 tables/round)
TABLES_PER_ROUND = 322
ROUNDS = 32
PAYLOAD = b"\xa5" * (TABLE_BYTES * TABLES_PER_ROUND)


def stream_rounds(left, right, n_rounds: int) -> float:
    """Push ``n_rounds`` table payloads left->right; returns seconds."""
    done = []

    def consumer():
        for _ in range(n_rounds):
            right.recv("seq.tables", timeout=30.0)
        done.append(True)

    t = threading.Thread(target=consumer)
    start = time.perf_counter()
    t.start()
    for _ in range(n_rounds):
        left.send("seq.tables", PAYLOAD)
    t.join(timeout=60.0)
    elapsed = time.perf_counter() - start
    assert done, "consumer never finished"
    return elapsed


def rates(elapsed: float, n_rounds: int) -> tuple[float, float]:
    tables = n_rounds * TABLES_PER_ROUND
    mb = tables * TABLE_BYTES / 1e6
    return tables / elapsed, mb / elapsed


@pytest.mark.benchmark(group="wire-throughput")
def test_in_memory_channel_throughput(benchmark, artifact):
    left, right = local_channel()
    elapsed = benchmark(lambda: stream_rounds(left, right, ROUNDS))
    tps, mbps = rates(elapsed, ROUNDS)
    artifact(
        "wire_inmemory.txt",
        f"in-memory channel: {tps:,.0f} tables/s, {mbps:,.1f} MB/s "
        f"({ROUNDS} rounds x {TABLES_PER_ROUND} tables)",
    )


@pytest.mark.benchmark(group="wire-throughput")
def test_socketpair_loopback_throughput(benchmark, artifact):
    left, right = socketpair_endpoints(recv_timeout_s=30.0)
    elapsed = benchmark(lambda: stream_rounds(left, right, ROUNDS))
    tps, mbps = rates(elapsed, ROUNDS)
    artifact(
        "wire_socketpair.txt",
        f"socketpair loopback: {tps:,.0f} tables/s, {mbps:,.1f} MB/s "
        f"({ROUNDS} rounds x {TABLES_PER_ROUND} tables, framed)",
    )


@pytest.mark.benchmark(group="wire-throughput")
def test_full_remote_gc_session(benchmark, artifact):
    """End-to-end: handshake + query + garbled eval over loopback."""
    import socket as socket_mod

    model = np.array([[0.5, -1.0], [1.5, 0.25]])
    server = CloudServer(model, Q8_4, pool_size=4, seed=13)
    config = ServingConfig(workers=2, recv_timeout_s=30.0)
    gateway = GCGateway(server, config=config)
    gateway.serving.start()
    ours, theirs = socket_mod.socketpair()
    gateway.adopt(theirs)
    client = RemoteAnalyticsClient.from_socket(ours, recv_timeout_s=30.0)
    x = np.array([0.5, 0.25])

    def one_query():
        return client.query_row(0, x)

    try:
        result = benchmark(one_query)
        assert result == pytest.approx(float(model[0] @ x), abs=1e-12)
        sent = client.endpoint.sent.payload_bytes
        artifact(
            "wire_remote_session.txt",
            "full remote GC session over loopback: "
            f"result={result}, client sent {sent} B/query "
            "(handshake amortized across queries)",
        )
    finally:
        client.close()
        gateway.stop()
