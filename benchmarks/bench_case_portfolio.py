"""E5 — Portfolio-analysis case study (Section 6, after [11, 31]).

Regenerates the 252-round risk-to-return comparison: 1.33 s with
TinyGarble vs 15.23 ms with MAXelerator (and the 20 us non-private GPU
reference), and runs the real private quadratic form at small scale.
"""

import pytest

from repro.apps.datasets import synthetic_covariance, synthetic_portfolio
from repro.apps.portfolio import (
    PAPER_GPU_NONPRIVATE_S,
    PAPER_MAXELERATOR_S,
    PAPER_ROUNDS,
    PAPER_TINYGARBLE_S,
    PortfolioRuntimeModel,
    PrivatePortfolioAnalysis,
)
from repro.fixedpoint import Q16_8


@pytest.fixture(scope="module")
def model():
    return PortfolioRuntimeModel()


def test_regenerate_case_numbers(model, artifact):
    timing = model.analysis_time_s()
    text = (
        f"Portfolio case study ({PAPER_ROUNDS} rounds, size-2 portfolio):\n"
        f"  GPU non-private [31]:  {PAPER_GPU_NONPRIVATE_S * 1e6:.0f} us (reference)\n"
        f"  TinyGarble:   {timing.tinygarble_s:.3f} s   (paper: {PAPER_TINYGARBLE_S} s)\n"
        f"  MAXelerator:  {timing.maxelerator_s * 1e3:.2f} ms (paper: {PAPER_MAXELERATOR_S * 1e3:.2f} ms)\n"
        f"  speedup:      {timing.speedup:.0f}x  (paper: "
        f"{PAPER_TINYGARBLE_S / PAPER_MAXELERATOR_S:.0f}x)"
    )
    artifact("case_portfolio.txt", text)
    assert timing.tinygarble_s == pytest.approx(PAPER_TINYGARBLE_S, rel=0.08)
    assert timing.maxelerator_s == pytest.approx(PAPER_MAXELERATOR_S, rel=0.05)


def test_shape_privacy_premium(model):
    # privacy costs ~3 orders of magnitude vs the GPU baseline even with
    # the accelerator — the paper's closing "practical limits" framing
    timing = model.analysis_time_s()
    assert timing.maxelerator_s / PAPER_GPU_NONPRIVATE_S > 100
    assert timing.speedup > 50  # but the accelerator closes most of it


def test_scaling_with_portfolio_size(model):
    small = model.analysis_time_s(portfolio_size=2)
    large = model.analysis_time_s(portfolio_size=8)
    assert large.maxelerator_s > small.maxelerator_s
    # MAC count grows 16x (2d^2); overhead dilutes the visible ratio
    assert large.tinygarble_s / small.tinygarble_s == pytest.approx(16, rel=0.1)


def test_bench_model(benchmark, model):
    timing = benchmark(model.analysis_time_s)
    assert timing.speedup > 1


def test_bench_real_quadratic_form(benchmark):
    cov = synthetic_covariance(2, seed=5)
    w = synthetic_portfolio(2, seed=5)

    def run():
        analysis = PrivatePortfolioAnalysis(cov, Q16_8, seed=5)
        return analysis.risk(w), analysis

    (risk, analysis) = benchmark.pedantic(run, rounds=1, iterations=1)
    assert risk == pytest.approx(analysis.expected(w), abs=0.02)
