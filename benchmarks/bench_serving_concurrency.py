"""Serving-layer bench: throughput vs. client count and pool size.

The question behind Figure 1's operational pattern: how much does the
pre-garbling pool + background refiller buy once requests arrive
concurrently?  We drive the real GC serving path (tables, OT,
evaluation) through `repro.serve` at several client counts and pool
sizes and report requests/s, pool hit rate, and latency percentiles
from the built-in telemetry.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.serve import ServingConfig, ServingServer

MODEL = np.array([[0.5, -1.0], [1.5, 0.25], [-0.75, 2.0], [1.0, 1.0]])
REQUESTS_PER_CLIENT = 2


def drive(n_clients: int, pool_size: int, refill: bool, seed: int = 42):
    """Run a full concurrent serving session; returns (server, elapsed).

    ``auto_refill`` is off so pool behaviour is governed purely by the
    background refiller — with ``refill=False`` this is the drain
    baseline the pool/refiller combinations are compared against.
    """
    server = CloudServer(
        MODEL, Q8_4, pool_size=pool_size, seed=seed, auto_refill=False
    )
    # two workers saturate the GIL-shared CPU while leaving the refiller
    # enough cycles to keep pace (refilling costs ~1/5 of a full session)
    config = ServingConfig(
        workers=min(2, n_clients), queue_depth=8 * n_clients, refill=refill
    )
    errors: list[BaseException] = []

    def client_thread(cid: int):
        rng = np.random.default_rng(900 + cid)
        try:
            # staggered arrivals: sustained traffic, not a thundering herd
            time.sleep(0.06 * cid)
            for _ in range(REQUESTS_PER_CLIENT):
                row = int(rng.integers(0, MODEL.shape[0]))
                # snap to the Q8.4 grid so the GC result is bit-exact
                x = np.round(rng.uniform(-1, 1, size=MODEL.shape[1]) * 16) / 16
                got = serving.query(row, x)
                expected = float(MODEL[row] @ x)
                if abs(got - expected) > 1e-9:
                    raise AssertionError(f"row {row}: {got} != {expected}")
        except BaseException as exc:
            errors.append(exc)

    start = time.perf_counter()
    with ServingServer(server, config) as serving:
        threads = [
            threading.Thread(target=client_thread, args=(c,))
            for c in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return server, elapsed


def test_throughput_vs_clients_and_pool(artifact):
    rows = [
        "concurrent GC serving (Q8.4, 2-round requests, 2 req/client)",
        f"{'clients':>7} {'pool':>5} {'refill':>7} {'req/s':>7} "
        f"{'hit rate':>9} {'p50 lat (s)':>12} {'p99 lat (s)':>12}",
    ]
    measured = {}
    for n_clients, pool_size, refill in [
        (1, 4, True),
        (4, 6, True),
        (8, 8, True),
        (8, 0, False),  # no pool, no refiller: pure on-demand baseline
    ]:
        server, elapsed = drive(n_clients, pool_size, refill)
        n_requests = n_clients * REQUESTS_PER_CLIENT
        latency = server.telemetry.histogram("request.latency")
        rate = n_requests / elapsed
        hit = server.stats.pool_hit_rate
        measured[(n_clients, pool_size, refill)] = (rate, hit, server)
        rows.append(
            f"{n_clients:>7} {pool_size:>5} {str(refill):>7} {rate:>7.1f} "
            f"{hit:>9.2f} {latency.percentile(50):>12.4f} "
            f"{latency.percentile(99):>12.4f}"
        )
    artifact("ext_serving_concurrency.txt", "\n".join(rows))

    # acceptance: with the refiller on, sustained load stays on the pool
    for key in [(1, 4, True), (4, 6, True), (8, 8, True)]:
        _, hit, server = measured[key]
        assert hit >= 0.9, f"{key}: hit rate {hit} under refiller"
        snap = server.telemetry.snapshot()["counters"]
        assert snap["serve.completed"] == key[0] * REQUESTS_PER_CLIENT
    # the no-pool baseline is all misses by construction
    _, hit, server = measured[(8, 0, False)]
    assert hit == 0.0
    assert server.stats.pool_misses == 8 * REQUESTS_PER_CLIENT


def test_pool_size_tradeoff(artifact):
    """Bigger pools absorb deeper bursts before on-demand garbling."""
    lines = ["burst absorption: 8 clients arriving at once, no refiller"]
    for pool_size in (0, 2, 8):
        server, _ = drive(8, pool_size, refill=False)
        # without the refiller, hits are bounded by the initial pool level
        assert server.stats.pool_hits <= pool_size + 1
        lines.append(
            f"  pool={pool_size}: hits={server.stats.pool_hits} "
            f"misses={server.stats.pool_misses}"
        )
    artifact("ext_serving_pool_tradeoff.txt", "\n".join(lines))


def test_refiller_beats_no_refiller_on_hit_rate():
    with_refill, _ = drive(4, 4, refill=True, seed=1)
    without, _ = drive(4, 4, refill=False, seed=1)
    assert with_refill.stats.pool_hit_rate >= without.stats.pool_hit_rate
    assert with_refill.stats.pool_hit_rate >= 0.9


@pytest.mark.parametrize("n_clients", [2, 8])
def test_concurrent_equals_sequential_results(n_clients):
    """The serving layer must not change any session's result."""
    from repro.host import AnalyticsClient

    x = np.array([0.5, -0.25])
    sequential = CloudServer(MODEL, Q8_4, pool_size=2, seed=77)
    expected = [AnalyticsClient(sequential).query_row(r, x) for r in range(2)]

    concurrent = CloudServer(MODEL, Q8_4, pool_size=4, seed=78)
    with ServingServer(concurrent, ServingConfig(workers=n_clients)) as serving:
        futures = [serving.submit(r % 2, x) for r in range(n_clients)]
        got = [f.wait(timeout=120.0) for f in futures]
    for i, value in enumerate(got):
        assert value == pytest.approx(expected[i % 2], abs=1e-9)
