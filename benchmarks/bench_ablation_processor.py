"""A4 — Ablation: custom MAC unit vs garbled-processor execution [13].

The paper's introduction argues that loading the secure function onto a
generic garbled substrate (GarbledCPU's MIPS netlist, the overlay's
cell grid) incurs "large overhead due to the indirect execution of the
GC operation".  With the mini garbled processor implemented, the
overhead stops being an estimate: garble a MAC both ways and count.
"""

import pytest

from repro.accel.tree_mac import build_scheduled_mac
from repro.baselines.garbled_processor import MiniProcessor, mac_program
from repro.baselines.tinygarble import TinyGarbleExecutor


@pytest.fixture(scope="module")
def proc():
    return MiniProcessor(8)


def test_ablation_report(proc, artifact):
    direct = sum(1 for g in build_scheduled_mac(8).netlist.gates if not g.is_free)
    serial = TinyGarbleExecutor(8).and_gates_per_round
    via_cpu = proc.and_gates_for(mac_program())
    text = "\n".join(
        [
            "Ablation A4: AND gates garbled per 8-bit MAC by execution style",
            "",
            f"  MAXelerator scheduled circuit:   {direct:>6}",
            f"  TinyGarble serial MAC netlist:   {serial:>6}",
            f"  mini garbled processor [13]:     {via_cpu:>6} "
            f"(4 instructions x {proc.and_gates_per_instruction} ANDs)",
            "",
            f"  indirect-execution overhead: {via_cpu / direct:.1f}x the custom unit",
            "  (every instruction pays for the full ALU, the register-file",
            "  muxes and the write-back demux — the paper's Section 1 case",
            "  for a custom MAC architecture)",
        ]
    )
    artifact("ablation_processor.txt", text)
    assert via_cpu > 4 * direct


def test_overhead_grows_with_width(proc):
    wide = MiniProcessor(16)
    direct8 = sum(1 for g in build_scheduled_mac(8).netlist.gates if not g.is_free)
    direct16 = sum(1 for g in build_scheduled_mac(16).netlist.gates if not g.is_free)
    assert wide.and_gates_for(mac_program()) / direct16 > 2
    assert proc.and_gates_for(mac_program()) / direct8 > 2


def test_bench_build_processor_round(benchmark):
    proc = benchmark(MiniProcessor, 8)
    assert proc.and_gates_per_instruction > 0


def test_bench_processor_plain_mac(benchmark, proc):
    regs = benchmark(
        proc.run_plain, mac_program(), {0: 7}, {1: 9}
    )
    assert regs[3] == 63
