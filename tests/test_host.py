"""Cloud-server runtime tests (Figure 1's operational pattern)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GCProtocolError
from repro.fixedpoint import Q8_4
from repro.host import AnalyticsClient, CloudServer

MODEL = np.array([[0.5, -1.0, 2.0], [1.5, 0.25, -0.5]])


@pytest.fixture(scope="module")
def server():
    return CloudServer(MODEL, Q8_4, pool_size=2, seed=23)


class TestServing:
    def test_client_query_is_correct(self, server):
        client = AnalyticsClient(server)
        x = np.array([1.0, 2.0, -0.5])
        result = client.query_row(0, x)
        assert result == pytest.approx(MODEL[0] @ x, abs=0.05)

    def test_multiple_queries_consume_pool(self, server):
        client = AnalyticsClient(server)
        x = np.array([0.5, 0.5, 0.5])
        before = server.stats.requests_served
        for row in (0, 1):
            got = client.query_row(row, x)
            assert got == pytest.approx(MODEL[row] @ x, abs=0.05)
        assert server.stats.requests_served == before + 2

    def test_pool_miss_falls_back_to_fresh_garbling(self):
        server = CloudServer(MODEL, Q8_4, pool_size=0, seed=24)
        client = AnalyticsClient(server)
        client.query_row(0, np.array([1.0, 0.0, 0.0]))
        assert server.stats.pool_misses == 1
        assert server.stats.pool_hit_rate == 0.0

    def test_manual_pool_refill(self):
        server = CloudServer(MODEL, Q8_4, pool_size=2, seed=25, auto_refill=False)
        client = AnalyticsClient(server)
        client.query_row(0, np.array([1.0, 0.0, 0.0]))
        assert server.pool_level == 1
        assert server.refill_pool() == 1
        assert server.pool_level == 2

    def test_auto_refill_keeps_pool_full_after_serve(self):
        server = CloudServer(MODEL, Q8_4, pool_size=2, seed=25)
        client = AnalyticsClient(server)
        client.query_row(0, np.array([1.0, 0.0, 0.0]))
        assert server.pool_level == 2
        assert server.refill_pool() == 0

    def test_sustained_load_stays_on_pool_hits(self):
        # regression for the drain bug: the pool used to refill only on
        # update_model, so request 3+ degraded to 100% on-demand misses
        server = CloudServer(MODEL, Q8_4, pool_size=2, seed=28)
        client = AnalyticsClient(server)
        x = np.array([0.25, -0.5, 1.0])
        for i in range(6):
            client.query_row(i % 2, x)
        assert server.stats.pool_hits == 6
        assert server.stats.pool_misses == 0
        assert server.stats.pool_hit_rate == 1.0

    def test_without_auto_refill_pool_drains_to_misses(self):
        server = CloudServer(MODEL, Q8_4, pool_size=1, seed=29, auto_refill=False)
        client = AnalyticsClient(server)
        x = np.array([1.0, 0.0, 0.0])
        for _ in range(3):
            client.query_row(0, x)
        assert server.stats.pool_hits == 1
        assert server.stats.pool_misses == 2

    def test_refill_listener_replaces_sync_refill(self):
        server = CloudServer(MODEL, Q8_4, pool_size=1, seed=30)
        pokes = []
        server.attach_refill_listener(lambda: pokes.append(1))
        client = AnalyticsClient(server)
        client.query_row(0, np.array([1.0, 0.0, 0.0]))
        assert pokes == [1]
        assert server.pool_level == 0  # the listener owns refilling now
        server.detach_refill_listener()
        client.query_row(0, np.array([1.0, 0.0, 0.0]))
        assert server.pool_level == 1  # sync auto-refill is back


class TestModelManagement:
    def test_update_model_changes_results(self):
        server = CloudServer(MODEL, Q8_4, pool_size=1, seed=26)
        client = AnalyticsClient(server)
        new_model = np.array([[1.0, 1.0]])
        server.update_model(new_model)
        got = client.query_row(0, np.array([0.5, 0.25]))
        assert got == pytest.approx(0.75, abs=0.05)

    def test_bad_model_rejected(self):
        with pytest.raises(ConfigurationError):
            CloudServer(np.zeros(3), Q8_4)

    def test_bad_row_rejected(self, server):
        from repro.gc.channel import local_channel

        chan, _ = local_channel()
        with pytest.raises(ConfigurationError):
            server.serve_row(chan, 99)

    def test_wrong_query_width_rejected(self, server):
        client = AnalyticsClient(server)
        with pytest.raises(GCProtocolError):
            client.query_row(0, np.array([1.0, 2.0]))

    def test_negative_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            CloudServer(MODEL, Q8_4, pool_size=-1)


class TestFreshLabelsPerServing:
    def test_two_servings_use_different_tables(self):
        # each pooled run is consumed once; reuse would break security
        server = CloudServer(MODEL, Q8_4, pool_size=2, seed=27)
        runs = list(server._pool)
        assert runs[0].stream[0].table != runs[1].stream[0].table
