"""Multiplier and MAC netlist tests (tree and serial, signed/unsigned)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.mac import (
    accumulator_width,
    build_mac_netlist,
    build_sequential_mac,
)
from repro.circuits.multipliers import build_multiplier_netlist
from repro.circuits.sequential import SequentialCircuit
from repro.errors import CircuitError


def mul_out(net, a, x, width, signed):
    out = net.evaluate_plain(to_bits(a, width), to_bits(x, width))
    return from_bits(out, signed=signed)


class TestUnsignedMultipliers:
    @pytest.mark.parametrize("kind", ["tree", "serial"])
    @given(a=st.integers(0, 255), x=st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_8bit_exhaustive_random(self, kind, a, x):
        net = build_multiplier_netlist(8, kind=kind, signed=False)
        assert mul_out(net, a, x, 8, signed=False) == a * x

    @pytest.mark.parametrize("kind", ["tree", "serial"])
    def test_corners(self, kind):
        net = build_multiplier_netlist(8, kind=kind, signed=False)
        for a, x in [(0, 0), (0, 255), (255, 255), (1, 255), (128, 128)]:
            assert mul_out(net, a, x, 8, signed=False) == a * x

    @pytest.mark.parametrize("width", [2, 4, 6, 8, 16])
    def test_tree_handles_widths(self, width):
        net = build_multiplier_netlist(width, kind="tree", signed=False)
        a = (1 << width) - 1
        assert mul_out(net, a, a, width, signed=False) == a * a

    def test_serial_gate_count_matches_model(self):
        # 2b^2 - b non-XOR gates: the TinyGarble calibration constant in
        # DESIGN.md rests on this count.
        for b in (4, 8, 16):
            net = build_multiplier_netlist(b, kind="serial", signed=False)
            assert net.stats().n_nonfree == 2 * b * b - b

    def test_tree_parallelism_beats_serial(self):
        # The paper's point is schedulability: the tree form exposes more
        # AND gates per dependency level, which the FSM maps onto
        # parallel cores.  (Pure combinational AND-depth is dominated by
        # the ripple-carry chains in both forms; the hardware streams
        # those serially, one bit per stage.)
        serial = build_multiplier_netlist(16, kind="serial", signed=False)
        tree = build_multiplier_netlist(16, kind="tree", signed=False)

        def avg_parallelism(net):
            return net.stats().n_nonfree / net.nonfree_depth()

        assert avg_parallelism(tree) > avg_parallelism(serial)

    def test_odd_width_tree_rejected(self):
        with pytest.raises(CircuitError):
            build_multiplier_netlist(7, kind="tree", signed=False)

    def test_unknown_kind_rejected(self):
        with pytest.raises(CircuitError):
            build_multiplier_netlist(8, kind="booth")


class TestSignedMultipliers:
    @pytest.mark.parametrize("kind", ["tree", "serial"])
    @given(a=st.integers(-127, 127), x=st.integers(-127, 127))
    @settings(max_examples=40, deadline=None)
    def test_8bit_signed(self, kind, a, x):
        net = build_multiplier_netlist(8, kind=kind, signed=True)
        assert mul_out(net, a, x, 8, signed=True) == a * x

    def test_signed_corners(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        for a, x in [(-127, 127), (127, -127), (-1, -1), (-127, -127), (0, -5)]:
            assert mul_out(net, a, x, 8, signed=True) == a * x

    def test_16bit_signed_spot(self):
        net = build_multiplier_netlist(16, kind="tree", signed=True)
        for a, x in [(-30000, 2), (12345, -2), (-5000, -6)]:
            assert mul_out(net, a, x, 16, signed=True) == a * x


class TestMacNetlist:
    def test_accumulator_width(self):
        assert accumulator_width(8, max_rounds=256) == 24
        assert accumulator_width(32, max_rounds=2) == 65
        with pytest.raises(CircuitError):
            accumulator_width(8, max_rounds=0)

    @given(
        a=st.integers(-100, 100),
        x=st.integers(-100, 100),
        acc=st.integers(-30000, 30000),
    )
    @settings(max_examples=40, deadline=None)
    def test_combinational_mac(self, a, x, acc):
        width = 8
        acc_w = accumulator_width(width)
        net = build_mac_netlist(width, acc_w)
        g_bits = to_bits(a, width) + to_bits(acc, acc_w)
        out = net.evaluate_plain(g_bits, to_bits(x, width))
        assert from_bits(out, signed=True) == acc + a * x

    def test_unsigned_mac(self):
        net = build_mac_netlist(8, 20, signed=False)
        g_bits = to_bits(200, 8) + to_bits(1000, 20)
        out = net.evaluate_plain(g_bits, to_bits(250, 8))
        assert from_bits(out) == 1000 + 200 * 250


class TestSequentialMac:
    def test_dot_product(self):
        seq = build_sequential_mac(8, accumulator_width(8, 16))
        a_vec = [3, -5, 7, 100, -100, 0, 1, -1]
        x_vec = [2, 2, -3, 50, 50, 9, -9, 127]
        g_rounds = [to_bits(a, 8) for a in a_vec]
        e_rounds = [to_bits(x, 8) for x in x_vec]
        history = seq.run_plain(g_rounds, e_rounds)
        running = 0
        for out, a, x in zip(history, a_vec, x_vec):
            running += a * x
            assert from_bits(out, signed=True) == running

    def test_state_feedback_validation(self):
        seq = build_sequential_mac(4)
        with pytest.raises(CircuitError):
            SequentialCircuit(seq.netlist, state_feedback=[0])
        with pytest.raises(CircuitError):
            SequentialCircuit(
                seq.netlist,
                state_feedback=[9999] * len(seq.netlist.state_inputs),
            )

    def test_initial_state(self):
        acc_w = accumulator_width(4, 4)
        seq = build_sequential_mac(4, acc_w)
        seq.initial_state = to_bits(5, acc_w)
        history = seq.run_plain([to_bits(2, 4)], [to_bits(3, 4)])
        assert from_bits(history[0], signed=True) == 5 + 6

    def test_round_count_mismatch(self):
        seq = build_sequential_mac(4)
        with pytest.raises(CircuitError):
            seq.run_plain([to_bits(1, 4)], [])
