"""Divider and square-root netlists — plus the Table 3 gate-ratio check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.division import build_divider_netlist, build_sqrt_netlist
from repro.errors import CircuitError


class TestDivider:
    @given(a=st.integers(0, 255), d=st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_8bit_division(self, a, d):
        net = build_divider_netlist(8)
        out = net.evaluate_plain(to_bits(a, 8), to_bits(d, 8))
        q, r = from_bits(out[:8]), from_bits(out[8:])
        assert q == a // d
        assert r == a % d

    def test_corners(self):
        net = build_divider_netlist(8)
        for a, d in [(255, 1), (255, 255), (0, 7), (1, 255), (128, 2)]:
            out = net.evaluate_plain(to_bits(a, 8), to_bits(d, 8))
            assert from_bits(out[:8]) == a // d, (a, d)
            assert from_bits(out[8:]) == a % d, (a, d)

    def test_divide_by_zero_convention(self):
        net = build_divider_netlist(8)
        out = net.evaluate_plain(to_bits(77, 8), to_bits(0, 8))
        assert from_bits(out[:8]) == 255  # all-ones quotient

    def test_16bit_spot_checks(self):
        net = build_divider_netlist(16)
        for a, d in [(50000, 7), (12345, 123), (65535, 2)]:
            out = net.evaluate_plain(to_bits(a, 16), to_bits(d, 16))
            assert from_bits(out[:16]) == a // d

    def test_gate_count_scales_quadratically(self):
        ands = {b: build_divider_netlist(b).stats().n_nonfree for b in (8, 16, 32)}
        assert 3.2 < ands[16] / ands[8] < 4.5
        assert 3.2 < ands[32] / ands[16] < 4.5

    def test_garbled_division(self):
        from tests.gc.test_garble_evaluate import gc_run

        net = build_divider_netlist(8)
        result, _ = gc_run(net, to_bits(200, 8), to_bits(9, 8))
        assert from_bits(result.output_bits[:8]) == 200 // 9
        assert from_bits(result.output_bits[8:]) == 200 % 9


class TestSqrt:
    @given(a=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_8bit_sqrt(self, a):
        net = build_sqrt_netlist(8)
        out = net.evaluate_plain([], to_bits(a, 8))
        assert from_bits(out) == int(a**0.5)

    def test_perfect_squares(self):
        net = build_sqrt_netlist(8)
        for root in range(16):
            out = net.evaluate_plain([], to_bits(root * root, 8))
            assert from_bits(out) == root

    def test_16bit_spot_checks(self):
        net = build_sqrt_netlist(16)
        for a in (65535, 40000, 10000, 9999, 2):
            out = net.evaluate_plain([], to_bits(a, 16))
            assert from_bits(out) == int(a**0.5)

    def test_odd_width_rejected(self):
        with pytest.raises(CircuitError):
            build_sqrt_netlist(7)

    def test_cheaper_than_divider(self):
        div = build_divider_netlist(16).stats().n_nonfree
        sqrt = build_sqrt_netlist(16).stats().n_nonfree
        assert sqrt < div


class TestTable3GateRatio:
    def test_mac_to_division_ratio_is_about_two(self):
        # the 2d decomposition of the Table 3 model (repro.apps.ridge)
        # assumes one 32-bit MAC costs ~2x one 32-bit division in AND
        # gates; measure it on the real netlists
        from repro.accel.tree_mac import build_scheduled_mac

        mac_ands = sum(
            1 for g in build_scheduled_mac(32).netlist.gates if not g.is_free
        )
        div_ands = build_divider_netlist(32).stats().n_nonfree
        ratio = mac_ands / div_ands
        assert 1.5 < ratio < 2.5, f"measured MAC/div gate ratio {ratio:.2f}"
