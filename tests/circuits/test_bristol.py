"""Bristol Fashion import/export tests."""

import pytest

from repro.bits import from_bits, to_bits
from repro.circuits.bristol import export_bristol, import_bristol
from repro.circuits.builder import NetlistBuilder
from repro.circuits.equivalence import check_equivalence
from repro.circuits.gates import GateType
from repro.circuits.mac import build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.errors import CircuitError

from tests.gc.test_random_circuits import random_netlists


class TestRoundTrip:
    def test_multiplier_round_trips(self):
        net = build_multiplier_netlist(6, kind="tree", signed=False)
        back = import_bristol(export_bristol(net), name="back")
        assert check_equivalence(net, back)

    def test_all_gate_types_round_trip(self):
        b = NetlistBuilder("zoo")
        g = b.garbler_input_bus(2)
        e = b.evaluator_input_bus(2)
        outs = []
        for gtype in (
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.ANDNOT,
            GateType.NOTAND,
            GateType.ORNOT,
            GateType.NOTOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            outs.append(b._emit(gtype, g[0], e[0]))
        outs.append(b._emit(GateType.NOT, g[1]))
        outs.append(b._emit(GateType.BUF, e[1]))
        b.set_outputs(outs)
        net = b.build()
        back = import_bristol(export_bristol(net))
        assert check_equivalence(net, back)

    def test_hypothesis_random_circuits(self):
        from hypothesis import given, settings

        @given(random_netlists())
        @settings(max_examples=25, deadline=None)
        def inner(net):
            back = import_bristol(export_bristol(net))
            assert check_equivalence(net, back)

        inner()

    def test_exported_circuit_uses_only_bristol_alphabet(self):
        net = build_multiplier_netlist(4, kind="serial", signed=False)
        text = export_bristol(net)
        for line in text.splitlines()[4:]:
            if line.startswith("#") or not line.strip():
                continue
            assert line.split()[-1] in ("AND", "XOR", "INV", "EQW")


class TestImportValidation:
    def test_reject_constants(self):
        b = NetlistBuilder("c")
        (x,) = b.garbler_input_bus(1)
        w = b.const_wire(1)
        b.set_outputs([b._emit(GateType.AND, x, w)])
        with pytest.raises(CircuitError):
            export_bristol(b.build())

    def test_reject_state_wires(self):
        from repro.circuits.mac import build_sequential_mac

        seq = build_sequential_mac(4)
        with pytest.raises(CircuitError):
            export_bristol(seq.netlist)

    def test_truncated_text(self):
        with pytest.raises(CircuitError):
            import_bristol("1 2")

    def test_bad_gate_kind(self):
        text = "1 3\n2 1 1\n1 1\n\n2 1 0 1 2 MAJ"
        with pytest.raises(CircuitError):
            import_bristol(text)

    def test_gate_count_mismatch(self):
        text = "2 3\n2 1 1\n1 1\n\n2 1 0 1 2 AND"
        with pytest.raises(CircuitError):
            import_bristol(text)

    def test_implicit_outputs_convention(self):
        # standard Bristol without our trailer: outputs = last wires
        text = "1 3\n2 1 1\n1 1\n\n2 1 0 1 2 AND"
        net = import_bristol(text)
        assert net.outputs == [2]
        assert net.evaluate_plain([1], [1]) == [1]


class TestSemantics:
    def test_mac_through_bristol(self):
        net = build_mac_netlist(4, 12)
        # MAC has constant wires folded? it may contain constants: check
        if net.constants:
            pytest.skip("mac netlist carries constants; covered elsewhere")
        back = import_bristol(export_bristol(net))
        g = to_bits(3, 4) + to_bits(50, 12)
        assert from_bits(back.evaluate_plain(g, to_bits(-2, 4)), signed=True) == 44
