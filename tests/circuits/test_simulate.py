"""Vectorised simulator tests (against the scalar reference)."""

import numpy as np
import pytest

from repro.bits import from_bits, to_bits
from repro.circuits.mac import build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.circuits.simulate import exhaustive_truth_table, simulate_batch
from repro.errors import CircuitError

from tests.gc.test_random_circuits import random_netlists


class TestSimulateBatch:
    def test_matches_scalar_on_multiplier(self):
        net = build_multiplier_netlist(6, kind="tree", signed=False)
        rng = np.random.default_rng(1)
        g = rng.integers(0, 2, size=(50, 6), dtype=np.uint8)
        e = rng.integers(0, 2, size=(50, 6), dtype=np.uint8)
        batch = simulate_batch(net, g, e)
        for i in range(50):
            scalar = net.evaluate_plain(list(g[i]), list(e[i]))
            assert list(batch[i]) == scalar

    def test_values_decode_correctly(self):
        net = build_multiplier_netlist(8, kind="serial", signed=False)
        g = np.array([to_bits(13, 8)], dtype=np.uint8)
        e = np.array([to_bits(11, 8)], dtype=np.uint8)
        out = simulate_batch(net, g, e)
        assert from_bits(list(out[0])) == 143

    def test_state_inputs_supported(self):
        from repro.circuits.mac import build_sequential_mac

        seq = build_sequential_mac(4, 12)
        g = np.array([to_bits(3, 4)], dtype=np.uint8)
        e = np.array([to_bits(5, 4)], dtype=np.uint8)
        s = np.array([to_bits(100, 12)], dtype=np.uint8)
        out = simulate_batch(seq.netlist, g, e, s)
        assert from_bits(list(out[0]), signed=True) == 115

    def test_missing_state_bits_raise(self):
        from repro.circuits.mac import build_sequential_mac

        seq = build_sequential_mac(4, 12)
        with pytest.raises(CircuitError):
            simulate_batch(
                seq.netlist,
                np.zeros((1, 4), np.uint8),
                np.zeros((1, 4), np.uint8),
            )

    def test_shape_validation(self):
        net = build_multiplier_netlist(4, signed=False)
        with pytest.raises(CircuitError):
            simulate_batch(net, np.zeros((2, 3), np.uint8), np.zeros((2, 4), np.uint8))

    def test_random_circuits_match_scalar(self):
        from hypothesis import given, settings

        @given(random_netlists())
        @settings(max_examples=20, deadline=None)
        def inner(net):
            rng = np.random.default_rng(3)
            n_g, n_e = len(net.garbler_inputs), len(net.evaluator_inputs)
            g = rng.integers(0, 2, size=(8, n_g), dtype=np.uint8)
            e = rng.integers(0, 2, size=(8, n_e), dtype=np.uint8)
            batch = simulate_batch(net, g, e)
            for i in range(8):
                assert list(batch[i]) == net.evaluate_plain(list(g[i]), list(e[i]))

        inner()


class TestExhaustiveTable:
    def test_and_gate_table(self):
        from repro.circuits.builder import NetlistBuilder

        b = NetlistBuilder("and")
        (x,) = b.garbler_input_bus(1)
        (y,) = b.evaluator_input_bus(1)
        b.set_outputs([b.AND(x, y)])
        table = exhaustive_truth_table(b.build())
        assert [int(r[0]) for r in table] == [0, 0, 0, 1]

    def test_too_many_inputs_rejected(self):
        net = build_multiplier_netlist(16, signed=False)
        with pytest.raises(CircuitError):
            exhaustive_truth_table(net)

    def test_multiplier_4bit_full_table(self):
        net = build_multiplier_netlist(4, kind="tree", signed=False)
        table = exhaustive_truth_table(net)
        for code in range(256):
            a, x = code & 15, code >> 4
            assert from_bits(list(table[code])) == a * x
