"""Netlist optimisation passes: semantics preserved, gates removed."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.builder import NetlistBuilder
from repro.circuits.gates import GateType
from repro.circuits.library import add
from repro.circuits.multipliers import build_multiplier_netlist
from repro.circuits.optimize import optimize


def exhaustively_equivalent(before, after, n_g, n_e):
    for g_bits in itertools.product((0, 1), repeat=n_g):
        for e_bits in itertools.product((0, 1), repeat=n_e):
            assert before.evaluate_plain(list(g_bits), list(e_bits)) == \
                after.evaluate_plain(list(g_bits), list(e_bits))


class TestCse:
    def test_duplicate_and_merged(self):
        b = NetlistBuilder("dup")
        x, y = b.garbler_input_bus(2)
        first = b._emit(GateType.AND, x, y)
        second = b._emit(GateType.AND, x, y)
        b.set_outputs([b.XOR(first, second)])  # folds to ZERO after CSE? no:
        net = b.build()
        opt, report = optimize(net)
        assert report.cse_merged >= 1
        exhaustively_equivalent(net, opt, 2, 0)

    def test_commutative_inputs_normalised(self):
        b = NetlistBuilder("comm")
        x, y = b.garbler_input_bus(2)
        g1 = b._emit(GateType.AND, x, y)
        g2 = b._emit(GateType.AND, y, x)
        b.set_outputs([g1, g2])
        opt, report = optimize(b.build())
        assert report.cse_merged == 1
        assert opt.stats().n_nonfree == 1

    def test_noncommutative_not_merged(self):
        b = NetlistBuilder("ncomm")
        x, y = b.garbler_input_bus(2)
        g1 = b._emit(GateType.ANDNOT, x, y)  # x & ~y
        g2 = b._emit(GateType.ANDNOT, y, x)  # y & ~x
        b.set_outputs([g1, g2])
        net = b.build()
        opt, report = optimize(net)
        assert opt.stats().n_nonfree == 2
        exhaustively_equivalent(net, opt, 2, 0)


class TestNotCollapse:
    def test_double_not_removed(self):
        b = NetlistBuilder("nn")
        (x,) = b.garbler_input_bus(1)
        b.set_outputs([b.NOT(b.NOT(x))])
        net = b.build()
        opt, report = optimize(net)
        assert report.nots_collapsed >= 1
        exhaustively_equivalent(net, opt, 1, 0)

    def test_not_folds_into_xor(self):
        b = NetlistBuilder("nx")
        x, y = b.garbler_input_bus(2)
        b.set_outputs([b._emit(GateType.XOR, b._emit(GateType.NOT, x), y)])
        net = b.build()
        opt, report = optimize(net)
        assert report.nots_collapsed >= 1
        # the XOR became XNOR and the NOT died
        assert opt.count(GateType.XNOR) == 1
        assert opt.count(GateType.NOT) == 0
        exhaustively_equivalent(net, opt, 2, 0)

    def test_not_folds_into_and_polarity(self):
        b = NetlistBuilder("na")
        x, y = b.garbler_input_bus(2)
        b.set_outputs([b._emit(GateType.AND, b._emit(GateType.NOT, x), y)])
        net = b.build()
        opt, report = optimize(net)
        assert opt.count(GateType.NOTAND) == 1  # ~x & y, one table either way
        exhaustively_equivalent(net, opt, 2, 0)


class TestDeadGates:
    def test_unused_gate_removed(self):
        b = NetlistBuilder("dead")
        x, y = b.garbler_input_bus(2)
        b._emit(GateType.AND, x, y)  # never used
        b.set_outputs([b.XOR(x, y)])
        opt, report = optimize(b.build())
        assert report.dead_removed == 1
        assert opt.stats().n_nonfree == 0


class TestOnRealCircuits:
    @pytest.mark.parametrize("kind", ["tree", "serial"])
    def test_multiplier_already_tight(self, kind):
        # the builder's constant folding leaves little on the table
        net = build_multiplier_netlist(8, kind=kind, signed=False)
        opt, report = optimize(net)
        assert report.nonfree_after <= report.nonfree_before

    @given(a=st.integers(0, 255), x=st.integers(0, 255))
    @settings(max_examples=15, deadline=None)
    def test_optimized_multiplier_still_multiplies(self, a, x):
        net = build_multiplier_netlist(8, kind="tree", signed=False)
        opt, _ = optimize(net)
        out = opt.evaluate_plain(to_bits(a, 8), to_bits(x, 8))
        assert from_bits(out) == a * x

    def test_optimized_netlist_still_garbles(self):
        from tests.gc.test_garble_evaluate import gc_run

        b = NetlistBuilder("mix")
        xs = b.garbler_input_bus(4)
        ys = b.evaluator_input_bus(4)
        total = add(b, xs, ys, keep_cout=True)
        noisy = b.NOT(b.NOT(total[0]))  # junk for the optimiser
        b._emit(GateType.AND, xs[0], ys[0])  # dead gate
        b.set_outputs(total[:-1] + [noisy])
        net = b.build()
        opt, report = optimize(net)
        assert report.dead_removed >= 1
        result, _ = gc_run(opt, to_bits(5, 4), to_bits(11, 4))
        out = from_bits(result.output_bits[:4])
        assert out == (5 + 11) % 16

    def test_report_renders(self):
        net = build_multiplier_netlist(4, signed=False)
        _, report = optimize(net)
        assert "optimise" in str(report)
