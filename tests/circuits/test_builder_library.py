"""Builder DSL and arithmetic library tests (vs plaintext arithmetic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.builder import ONE, ZERO, Const, NetlistBuilder
from repro.circuits.gates import GateType
from repro.circuits import library as lib
from repro.errors import CircuitError


def run1(build):
    """Build a 1-output netlist via callback and return an eval closure."""
    b = NetlistBuilder("t")
    out = build(b)
    b.set_outputs([out])
    net = b.build()
    return net


class TestConstantFolding:
    def test_const_validation(self):
        with pytest.raises(CircuitError):
            Const(2)

    def test_xor_folds(self):
        b = NetlistBuilder()
        w = b.garbler_input_bus(1)[0]
        assert b.XOR(ZERO, ONE) == ONE
        assert b.XOR(w, ZERO) == w
        assert b.XOR(w, w) == ZERO
        assert len(b.netlist.gates) == 0
        assert b.XOR(w, ONE) != w  # becomes a NOT gate
        assert b.netlist.gates[-1].gtype is GateType.NOT

    def test_and_folds(self):
        b = NetlistBuilder()
        w = b.garbler_input_bus(1)[0]
        assert b.AND(w, ZERO) == ZERO
        assert b.AND(w, ONE) == w
        assert b.AND(w, w) == w
        assert b.AND(ZERO, ONE) == ZERO
        assert len(b.netlist.gates) == 0

    def test_or_folds(self):
        b = NetlistBuilder()
        w = b.garbler_input_bus(1)[0]
        assert b.OR(w, ONE) == ONE
        assert b.OR(w, ZERO) == w
        assert b.OR(w, w) == w
        assert len(b.netlist.gates) == 0

    def test_nand_fuses_single_table(self):
        b = NetlistBuilder()
        w1, w2 = b.garbler_input_bus(2)
        b.NAND(w1, w2)
        assert [g.gtype for g in b.netlist.gates] == [GateType.NAND]

    def test_nand_of_same_wire_is_not(self):
        b = NetlistBuilder()
        (w,) = b.garbler_input_bus(1)
        b.NAND(w, w)
        assert [g.gtype for g in b.netlist.gates] == [GateType.NOT]
        assert b.NAND(ZERO, ZERO) == ONE

    def test_const_wires_are_shared(self):
        b = NetlistBuilder()
        assert b.const_wire(1) == b.const_wire(1)
        assert b.const_wire(0) != b.const_wire(1)

    def test_mux_semantics(self):
        b = NetlistBuilder("mux")
        s, a0, a1 = b.garbler_input_bus(3)
        b.set_outputs([b.MUX(s, a0, a1)])
        net = b.build()
        for s_v in (0, 1):
            for v0 in (0, 1):
                for v1 in (0, 1):
                    expect = v1 if s_v else v0
                    assert net.evaluate_plain([s_v, v0, v1], []) == [expect]


def arith_netlist(width, fn, n_inputs=2):
    b = NetlistBuilder("arith")
    buses = [b.garbler_input_bus(width) for _ in range(n_inputs)]
    out = fn(b, *buses)
    b.set_outputs(out)
    return b.build()


class TestAdder:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_add_unsigned(self, a, x):
        net = arith_netlist(8, lambda b, p, q: lib.add(b, p, q, keep_cout=True))
        out = net.evaluate_plain(to_bits(a, 8) + to_bits(x, 8), [])
        assert from_bits(out) == a + x

    def test_adder_gate_budget(self):
        # the paper's adder: exactly 1 AND per bit, no other non-free gates
        net = arith_netlist(16, lambda b, p, q: lib.add(b, p, q))
        assert net.stats().n_nonfree == 16
        assert all(g.gtype in (GateType.AND, GateType.XOR) for g in net.gates)

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=60, deadline=None)
    def test_sub_signed(self, a, x):
        net = arith_netlist(8, lambda b, p, q: lib.sub(b, p, q))
        out = net.evaluate_plain(to_bits(a, 8) + to_bits(x, 8), [])
        assert from_bits(out, signed=True) == ((a - x + 128) % 256) - 128

    def test_width_mismatch(self):
        b = NetlistBuilder()
        with pytest.raises(CircuitError):
            lib.add(b, b.garbler_input_bus(4), b.garbler_input_bus(5))


class TestNegateAndMux:
    @given(st.integers(-127, 127))
    @settings(max_examples=40, deadline=None)
    def test_negate(self, a):
        net = arith_netlist(8, lambda b, p: lib.negate(b, p), n_inputs=1)
        out = net.evaluate_plain(to_bits(a, 8), [])
        assert from_bits(out, signed=True) == -a

    @given(st.integers(-127, 127), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_cond_negate(self, a, s):
        b = NetlistBuilder()
        bus = b.garbler_input_bus(8)
        sign = b.garbler_input_bus(1)[0]
        b.set_outputs(lib.cond_negate(b, bus, sign))
        net = b.build()
        out = net.evaluate_plain(to_bits(a, 8) + [s], [])
        assert from_bits(out, signed=True) == (-a if s else a)

    def test_cond_negate_gate_budget(self):
        # 1 AND per bit: the increment chain; inversion XORs are free
        b = NetlistBuilder()
        bus = b.garbler_input_bus(8)
        sign = b.garbler_input_bus(1)[0]
        b.set_outputs(lib.cond_negate(b, bus, sign))
        assert b.build().stats().n_nonfree == 8

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_mux_bus(self, v0, v1, s):
        b = NetlistBuilder()
        bus0 = b.garbler_input_bus(8)
        bus1 = b.garbler_input_bus(8)
        sel = b.garbler_input_bus(1)[0]
        b.set_outputs(lib.mux_bus(b, sel, bus0, bus1))
        net = b.build()
        out = net.evaluate_plain(to_bits(v0, 8) + to_bits(v1, 8) + [s], [])
        assert from_bits(out) == (v1 if s else v0)


class TestComparators:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_equals(self, a, x):
        net = arith_netlist(8, lambda b, p, q: [lib.equals(b, p, q)])
        out = net.evaluate_plain(to_bits(a, 8) + to_bits(x, 8), [])
        assert out == [int(a == x)]

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_less_than_unsigned(self, a, x):
        net = arith_netlist(8, lambda b, p, q: [lib.less_than(b, p, q)])
        out = net.evaluate_plain(to_bits(a, 8) + to_bits(x, 8), [])
        assert out == [int(a < x)]

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=60, deadline=None)
    def test_less_than_signed(self, a, x):
        net = arith_netlist(8, lambda b, p, q: [lib.less_than(b, p, q, signed=True)])
        out = net.evaluate_plain(to_bits(a, 8) + to_bits(x, 8), [])
        assert out == [int(a < x)]


class TestExtensions:
    def test_shift_left_const(self):
        b = NetlistBuilder()
        bus = b.garbler_input_bus(4)
        b.set_outputs(lib.shift_left_const(bus, 2, width=6))
        net = b.build()
        out = net.evaluate_plain(to_bits(5, 4), [])
        assert from_bits(out) == 5 << 2

    @given(st.integers(-8, 7))
    @settings(max_examples=20, deadline=None)
    def test_sign_extend(self, v):
        b = NetlistBuilder()
        bus = b.garbler_input_bus(4)
        b.set_outputs(lib.sign_extend(bus, 9))
        net = b.build()
        out = net.evaluate_plain(to_bits(v, 4), [])
        assert from_bits(out, signed=True) == v

    def test_extend_narrower_raises(self):
        with pytest.raises(CircuitError):
            lib.sign_extend([ZERO] * 8, 4)
        with pytest.raises(CircuitError):
            lib.zero_extend([ZERO] * 8, 4)

    def test_constant_bus(self):
        bus = lib.constant_bus(10, 4)
        assert [s.bit for s in bus] == [0, 1, 0, 1]
