"""Shifter / popcount / max / argmax block tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits import blocks
from repro.circuits.builder import NetlistBuilder
from repro.errors import CircuitError


def shift_netlist(width, direction):
    b = NetlistBuilder("shift")
    value = b.garbler_input_bus(width)
    amount = b.garbler_input_bus(max(1, math.ceil(math.log2(width))))
    fn = blocks.barrel_shift_left if direction == "l" else blocks.barrel_shift_right
    b.set_outputs(fn(b, value, amount))
    return b.build()


class TestBarrelShifter:
    @given(v=st.integers(0, 255), s=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_left_shift(self, v, s):
        net = shift_netlist(8, "l")
        out = net.evaluate_plain(to_bits(v, 8) + to_bits(s, 3), [])
        assert from_bits(out) == (v << s) & 0xFF

    @given(v=st.integers(0, 255), s=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_right_shift(self, v, s):
        net = shift_netlist(8, "r")
        out = net.evaluate_plain(to_bits(v, 8) + to_bits(s, 3), [])
        assert from_bits(out) == v >> s

    def test_narrow_amount_rejected(self):
        b = NetlistBuilder("bad")
        value = b.garbler_input_bus(8)
        amount = b.garbler_input_bus(1)
        with pytest.raises(CircuitError):
            blocks.barrel_shift_left(b, value, amount)


class TestPopcount:
    @given(v=st.integers(0, 2**12 - 1))
    @settings(max_examples=40, deadline=None)
    def test_hamming_weight(self, v):
        b = NetlistBuilder("pc")
        bits = b.garbler_input_bus(12)
        b.set_outputs(blocks.popcount(b, bits))
        net = b.build()
        out = net.evaluate_plain(to_bits(v, 12), [])
        assert from_bits(out) == bin(v).count("1")

    def test_single_bit(self):
        b = NetlistBuilder("pc1")
        bits = b.garbler_input_bus(1)
        b.set_outputs(blocks.popcount(b, bits))
        net = b.build()
        assert net.evaluate_plain([1], []) == [1]

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            blocks.popcount(NetlistBuilder(), [])


class TestMaxArgmax:
    @given(x=st.integers(-128, 127), y=st.integers(-128, 127))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_max(self, x, y):
        b = NetlistBuilder("max")
        xb = b.garbler_input_bus(8)
        yb = b.garbler_input_bus(8)
        out, sel = blocks.maximum(b, xb, yb)
        b.set_outputs(list(out) + [sel])
        net = b.build()
        res = net.evaluate_plain(to_bits(x, 8) + to_bits(y, 8), [])
        assert from_bits(res[:8], signed=True) == max(x, y)
        assert res[8] == int(x < y)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_argmax_structure(self, n):
        net = blocks.build_argmax_netlist(n, 8)
        values = [(-1) ** i * (i * 13 % 97) for i in range(n)]
        bits = [bit for v in values for bit in to_bits(v, 8)]
        out = net.evaluate_plain([], bits)
        assert from_bits(out) == values.index(max(values))

    @given(values=st.lists(st.integers(-100, 100), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_argmax_random(self, values):
        net = blocks.build_argmax_netlist(len(values), 8)
        bits = [bit for v in values for bit in to_bits(v, 8)]
        out = net.evaluate_plain([], bits)
        assert values[from_bits(out)] == max(values)

    def test_argmax_garbles(self):
        from tests.gc.test_garble_evaluate import gc_run

        net = blocks.build_argmax_netlist(4, 8)
        values = [5, -3, 90, 17]
        bits = [bit for v in values for bit in to_bits(v, 8)]
        result, _ = gc_run(net, [], bits)
        assert from_bits(result.output_bits) == 2

    def test_mismatched_widths_rejected(self):
        b = NetlistBuilder()
        with pytest.raises(CircuitError):
            blocks.argmax(b, [b.garbler_input_bus(4), b.garbler_input_bus(5)])

    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            blocks.argmax(NetlistBuilder(), [])
