"""Gate IR and netlist container tests."""

import pytest

from repro.circuits.gates import Gate, GateType
from repro.circuits.netlist import Netlist
from repro.errors import CircuitError


class TestGateTypes:
    def test_free_classification(self):
        free = {GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF}
        for gt in GateType:
            assert gt.is_free == (gt in free)
            assert gt.is_nonlinear != gt.is_free

    @pytest.mark.parametrize(
        "gtype,table",
        [
            (GateType.AND, [0, 0, 0, 1]),
            (GateType.NAND, [1, 1, 1, 0]),
            (GateType.OR, [0, 1, 1, 1]),
            (GateType.NOR, [1, 0, 0, 0]),
            (GateType.ANDNOT, [0, 0, 1, 0]),  # a & ~b
            (GateType.NOTAND, [0, 1, 0, 0]),  # ~a & b
            (GateType.ORNOT, [1, 0, 1, 1]),  # a | ~b
            (GateType.NOTOR, [1, 1, 0, 1]),  # ~a | b
            (GateType.XOR, [0, 1, 1, 0]),
            (GateType.XNOR, [1, 0, 0, 1]),
        ],
    )
    def test_truth_tables(self, gtype, table):
        got = [gtype.eval(a, b) for a in (0, 1) for b in (0, 1)]
        assert got == table

    def test_unary_gates(self):
        assert [GateType.NOT.eval(v) for v in (0, 1)] == [1, 0]
        assert [GateType.BUF.eval(v) for v in (0, 1)] == [0, 1]

    def test_and_form_consistency(self):
        # every AND-class type must satisfy out = ((a^alpha)&(b^beta))^gamma
        for gt in GateType:
            if gt.and_form is None:
                continue
            alpha, beta, gamma = gt.and_form
            for a in (0, 1):
                for b in (0, 1):
                    assert gt.eval(a, b) == ((a ^ alpha) & (b ^ beta)) ^ gamma

    def test_wrong_arity_raises(self):
        with pytest.raises(CircuitError):
            GateType.AND.eval(1)
        with pytest.raises(CircuitError):
            Gate(0, GateType.NOT, (1, 2), 3)


def tiny_netlist():
    """Manual two-gate netlist: out = (g0 AND e0) XOR e1."""
    net = Netlist(n_wires=5, name="tiny")
    net.garbler_inputs = [0]
    net.evaluator_inputs = [1, 2]
    net.gates = [
        Gate(0, GateType.AND, (0, 1), 3),
        Gate(1, GateType.XOR, (3, 2), 4),
    ]
    net.outputs = [4]
    return net


class TestNetlist:
    def test_validate_accepts_good_netlist(self):
        tiny_netlist().validate()

    def test_plain_evaluation(self):
        net = tiny_netlist()
        for g0 in (0, 1):
            for e0 in (0, 1):
                for e1 in (0, 1):
                    assert net.evaluate_plain([g0], [e0, e1]) == [(g0 & e0) ^ e1]

    def test_stats(self):
        stats = tiny_netlist().stats()
        assert stats.n_nonfree == 1
        assert stats.n_free == 1
        assert stats.table_bytes == 32
        assert stats.nonfree_depth == 1

    def test_wrong_input_counts_raise(self):
        net = tiny_netlist()
        with pytest.raises(CircuitError):
            net.evaluate_plain([0, 1], [0, 0])
        with pytest.raises(CircuitError):
            net.evaluate_plain([0], [0])

    def test_double_driver_rejected(self):
        net = tiny_netlist()
        net.gates.append(Gate(2, GateType.XOR, (0, 1), 4))
        with pytest.raises(CircuitError):
            net.validate()

    def test_undriven_read_rejected(self):
        net = tiny_netlist()
        net.gates[0] = Gate(0, GateType.AND, (0, 4), 3)  # reads later wire
        with pytest.raises(CircuitError):
            net.validate()

    def test_undriven_output_rejected(self):
        net = tiny_netlist()
        net.outputs = [2, 4]
        net.validate()  # inputs are fine as outputs
        net.outputs = [4]
        net.n_wires = 6
        net.outputs = [5]
        with pytest.raises(CircuitError):
            net.validate()

    def test_state_bits_path(self):
        net = Netlist(n_wires=3, name="st")
        net.state_inputs = [0, 1]
        net.gates = [Gate(0, GateType.XOR, (0, 1), 2)]
        net.outputs = [2]
        net.validate()
        assert net.evaluate_plain([], [], [1, 1]) == [0]
        with pytest.raises(CircuitError):
            net.evaluate_plain([], [], [1])
