"""Netlist equivalence checker tests."""

import pytest

from repro.circuits.builder import NetlistBuilder
from repro.circuits.equivalence import check_equivalence
from repro.circuits.gates import GateType
from repro.circuits.library import add
from repro.circuits.multipliers import build_multiplier_netlist
from repro.circuits.optimize import optimize
from repro.errors import CircuitError


def adder_netlist(width, use_nand_trick=False):
    b = NetlistBuilder("addA")
    x = b.garbler_input_bus(width)
    y = b.evaluator_input_bus(width)
    b.set_outputs(add(b, x, y, keep_cout=True))
    return b.build()


class TestExhaustive:
    def test_identical_netlists_equivalent(self):
        left, right = adder_netlist(4), adder_netlist(4)
        result = check_equivalence(left, right)
        assert result
        assert result.mode == "exhaustive"
        assert result.vectors_checked == 2**8

    def test_detects_differences(self):
        b = NetlistBuilder("andnet")
        (x,) = b.garbler_input_bus(1)
        (y,) = b.evaluator_input_bus(1)
        b.set_outputs([b._emit(GateType.AND, x, y)])
        left = b.build()
        b2 = NetlistBuilder("ornet")
        (x2,) = b2.garbler_input_bus(1)
        (y2,) = b2.evaluator_input_bus(1)
        b2.set_outputs([b2._emit(GateType.OR, x2, y2)])
        right = b2.build()
        result = check_equivalence(left, right)
        assert not result
        assert result.counterexample is not None

    def test_optimized_netlist_equivalent(self):
        net = build_multiplier_netlist(4, kind="tree", signed=False)
        opt, _ = optimize(net)
        assert check_equivalence(net, opt)

    def test_tree_equals_serial_multiplier(self):
        tree = build_multiplier_netlist(4, kind="tree", signed=False)
        serial = build_multiplier_netlist(4, kind="serial", signed=False)
        assert check_equivalence(tree, serial)


class TestRandomised:
    def test_large_circuits_use_random_mode(self):
        tree = build_multiplier_netlist(16, kind="tree", signed=False)
        serial = build_multiplier_netlist(16, kind="serial", signed=False)
        result = check_equivalence(tree, serial, random_vectors=64)
        assert result
        assert result.mode == "random"
        assert result.vectors_checked >= 64

    def test_random_mode_finds_planted_bug(self):
        tree = build_multiplier_netlist(16, kind="tree", signed=False)
        broken = build_multiplier_netlist(16, kind="tree", signed=False)
        broken.outputs = [broken.outputs[1]] + [broken.outputs[0]] + broken.outputs[2:]
        assert not check_equivalence(tree, broken, random_vectors=64)


class TestInterfaceValidation:
    def test_input_arity_mismatch(self):
        with pytest.raises(CircuitError):
            check_equivalence(adder_netlist(4), adder_netlist(5))

    def test_output_arity_mismatch(self):
        left = adder_netlist(4)
        right = adder_netlist(4)
        right.outputs = right.outputs[:-1]
        with pytest.raises(CircuitError):
            check_equivalence(left, right)

    def test_scheduled_mac_equals_reference_mac(self):
        # the flagship equivalence: the paper-structured circuit vs the
        # plain reference (single round, exhaustive over 8+8 inputs
        # would be 2^40 with state; use the randomised mode)
        from repro.accel.tree_mac import build_scheduled_mac
        from repro.circuits.mac import build_sequential_mac

        smc = build_scheduled_mac(8, 24)
        ref = build_sequential_mac(8, 24, kind="tree")
        result = check_equivalence(
            smc.netlist, ref.netlist, random_vectors=128
        )
        assert result
