"""Mini garbled processor (GarbledCPU-style) tests."""

import pytest

from repro.baselines.garbled_processor import (
    INSTRUCTION_BITS,
    Instruction,
    MiniProcessor,
    Op,
    build_processor_round,
    mac_program,
)
from repro.bits import from_bits, to_bits
from repro.crypto.ot import TOY_GROUP
from repro.errors import ConfigurationError
from repro.gc.sequential_gc import run_sequential


@pytest.fixture(scope="module")
def proc():
    return MiniProcessor(8)


class TestInstructionEncoding:
    def test_word_width(self):
        word = Instruction(Op.MUL, dst=2, src1=0, src2=1).encode_bits()
        assert len(word) == INSTRUCTION_BITS == 9

    def test_bad_register_rejected(self):
        with pytest.raises(ConfigurationError):
            Instruction(Op.ADD, dst=4)

    def test_round_trip_fields(self):
        word = Instruction(Op.SUB, dst=3, src1=1, src2=2).encode_bits()
        assert from_bits(word[:3]) == int(Op.SUB)
        assert from_bits(word[3:5]) == 3
        assert from_bits(word[5:7]) == 1
        assert from_bits(word[7:9]) == 2


class TestPlainExecution:
    def test_load_instructions(self, proc):
        regs = proc.run_plain(
            [Instruction(Op.LOADG, dst=0), Instruction(Op.LOADE, dst=1)],
            g_values={0: 42},
            e_values={1: -7},
        )
        assert regs[0] == 42 and regs[1] == -7

    def test_alu_operations(self, proc):
        program = [
            Instruction(Op.LOADG, dst=0),
            Instruction(Op.LOADG, dst=1),
            Instruction(Op.ADD, dst=2, src1=0, src2=1),
            Instruction(Op.SUB, dst=3, src1=0, src2=1),
        ]
        regs = proc.run_plain(program, g_values={0: 30, 1: 12})
        assert regs[2] == 42 and regs[3] == 18

    def test_bitwise_operations(self, proc):
        program = [
            Instruction(Op.LOADG, dst=0),
            Instruction(Op.LOADG, dst=1),
            Instruction(Op.AND, dst=2, src1=0, src2=1),
            Instruction(Op.XOR, dst=3, src1=0, src2=1),
        ]
        regs = proc.run_plain(program, g_values={0: 0b1100, 1: 0b1010})
        assert regs[2] == 0b1000 and regs[3] == 0b0110

    def test_mac_program(self, proc):
        regs = proc.run_plain(
            mac_program(), g_values={0: 11}, e_values={1: -9}
        )
        assert regs[3] == -99

    def test_repeated_mac_accumulates(self, proc):
        program = mac_program() + mac_program()
        regs = proc.run_plain(
            program,
            g_values={0: 3, 4: 5},
            e_values={1: 10, 5: -2},
        )
        assert regs[3] == 3 * 10 + 5 * -2

    def test_mul_keeps_low_half(self, proc):
        program = [
            Instruction(Op.LOADG, dst=0),
            Instruction(Op.LOADG, dst=1),
            Instruction(Op.MUL, dst=2, src1=0, src2=1),
        ]
        regs = proc.run_plain(program, g_values={0: 16, 1: 17})
        assert regs[2] == from_bits(to_bits((16 * 17) & 0xFF, 8), signed=True)


class TestGarbledExecution:
    def test_mac_program_under_gc(self, proc):
        g_rounds, e_rounds = proc.round_inputs(
            mac_program(), g_values={0: 6}, e_values={1: 7}
        )
        _, e_rep = run_sequential(proc.circuit, g_rounds, e_rounds, group=TOY_GROUP)
        final = e_rep.output_bits
        r3 = from_bits(final[3 * 8 : 4 * 8], signed=True)
        assert r3 == 42


class TestOverheadClaim:
    def test_indirect_execution_overhead(self, proc):
        # the paper's motivation: a processor-based GC pays for the full
        # ALU + register muxes every step -> several times the direct
        # MAC circuit's AND count
        from repro.accel.tree_mac import build_scheduled_mac

        direct = sum(
            1 for g in build_scheduled_mac(8).netlist.gates if not g.is_free
        )
        via_cpu = proc.and_gates_for(mac_program())
        assert via_cpu > 4 * direct

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            build_processor_round(3)
