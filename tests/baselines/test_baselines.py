"""Baseline models: calibration against the paper's Table 2 columns."""

import pytest

from repro.baselines.garbledcpu import (
    GarbledCPUModel,
    PAPER_ESTIMATED_IMPROVEMENT,
    SPEEDUP_OVER_JUSTGARBLE,
)
from repro.baselines.overlay import (
    OVERLAY_CORES,
    OverlayModel,
    PAPER_CYCLES_PER_MAC as OVERLAY_PAPER,
    PAPER_THROUGHPUT_PER_CORE,
)
from repro.baselines.tinygarble import (
    PAPER_CYCLES_PER_MAC,
    PAPER_TIME_PER_MAC_US,
    TinyGarbleExecutor,
    TinyGarbleModel,
    serial_mac_and_gates,
)
from repro.errors import ConfigurationError


class TestTinyGarbleModel:
    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_cycles_match_paper_within_6pct(self, b):
        assert abs(TinyGarbleModel(b).model_error()) < 0.06

    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_time_per_mac_matches_paper(self, b):
        model = TinyGarbleModel(b)
        assert model.time_per_mac_s * 1e6 == pytest.approx(
            PAPER_TIME_PER_MAC_US[b], rel=0.06
        )

    def test_gate_count_formula(self):
        assert serial_mac_and_gates(8) == 144
        assert serial_mac_and_gates(16) == 544
        assert serial_mac_and_gates(32) == 2112

    def test_exact_calibration_point(self):
        # the b=16 point is where the 1000-cycles/AND constant is exact
        model = TinyGarbleModel(16)
        assert model.cycles_per_mac == pytest.approx(PAPER_CYCLES_PER_MAC[16], rel=0.002)

    def test_throughput_decreases_with_width(self):
        t8, t32 = TinyGarbleModel(8), TinyGarbleModel(32)
        assert t8.macs_per_second > 10 * t32.macs_per_second

    def test_unknown_width_has_no_paper_value(self):
        model = TinyGarbleModel(12)
        assert model.paper_cycles_per_mac is None
        assert model.model_error() is None

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            TinyGarbleModel(1)

    def test_matmul_time(self):
        model = TinyGarbleModel(8)
        assert model.matmul_time_s(2, 3, 4) == pytest.approx(
            24 * model.time_per_mac_s
        )


class TestTinyGarbleExecutor:
    def test_real_gate_count_close_to_model(self):
        # our executor garbles the *signed* serial MAC: unsigned core
        # (2b^2 - b = 120) + accumulator (24) + three conditional negates
        # (~30); the calibration model (144) tracks the paper's unsigned
        # accounting, so allow the sign-handling overhead here.
        ex = TinyGarbleExecutor(8)
        model = serial_mac_and_gates(8)
        assert model <= ex.and_gates_per_round <= model * 1.25

    def test_sequential_garbling_chains_state(self):
        ex = TinyGarbleExecutor(8)
        runs = ex.garble_rounds(2)
        feedback = ex.circuit.state_feedback
        net = ex.circuit.netlist
        for i, w in enumerate(net.state_inputs):
            assert runs[1].wire_pairs[w] == runs[0].output_pairs[feedback[i]]

    def test_tables_differ_between_rounds(self):
        ex = TinyGarbleExecutor(8)
        runs = ex.garble_rounds(2)
        assert runs[0].tables[0] != runs[1].tables[0]


class TestOverlayModel:
    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_cycles_match_paper_within_3pct(self, b):
        assert abs(OverlayModel(b).model_error()) < 0.03

    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_per_core_throughput_matches_paper(self, b):
        model = OverlayModel(b)
        assert model.macs_per_second_per_core == pytest.approx(
            PAPER_THROUGHPUT_PER_CORE[b], rel=0.03
        )

    def test_core_count(self):
        assert OverlayModel(8).n_cores == OVERLAY_CORES == 43

    def test_overlay_slower_than_direct_design(self):
        from repro.accel.maxelerator import TimingModel

        assert OverlayModel(8).cycles_per_mac > 100 * TimingModel(8).cycles_per_mac

    def test_lut_overhead_range(self):
        assert OverlayModel(8).lut_overhead_range() == (40, 100)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayModel(0)


class TestGarbledCPUModel:
    def test_twice_justgarble(self):
        gc_model = GarbledCPUModel(32)
        tg = TinyGarbleModel(32)
        assert gc_model.macs_per_second == pytest.approx(
            SPEEDUP_OVER_JUSTGARBLE * tg.macs_per_second
        )

    def test_paper_improvement_bound_order_of_magnitude(self):
        # paper: "at least 37x improvement over [13] in throughput per core"
        from repro.accel.maxelerator import TimingModel

        ratios = [
            TimingModel(b).macs_per_second_per_core
            / GarbledCPUModel(b).macs_per_second_per_core
            for b in (8, 16, 32)
        ]
        assert max(ratios) >= PAPER_ESTIMATED_IMPROVEMENT * 0.7
        assert all(r > 10 for r in ratios)
