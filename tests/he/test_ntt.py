"""The negacyclic NTT against the schoolbook oracle."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError
from repro.he.ntt import (
    NegacyclicNTT,
    find_ntt_prime,
    find_primitive_2n_root,
    is_probable_prime,
    negacyclic_mul_schoolbook,
)


class TestPrimeFinding:
    def test_miller_rabin_on_knowns(self):
        assert is_probable_prime(2)
        assert is_probable_prime(97)
        assert is_probable_prime((1 << 61) - 1)  # Mersenne prime
        assert not is_probable_prime(1)
        assert not is_probable_prime(561)  # Carmichael number
        assert not is_probable_prime((1 << 61) - 3)

    def test_ntt_prime_satisfies_congruence(self):
        q = find_ntt_prime(40, 64)
        assert q >= 1 << 40
        assert (q - 1) % 128 == 0
        assert is_probable_prime(q)

    def test_ntt_prime_is_deterministic(self):
        assert find_ntt_prime(61, 128) == find_ntt_prime(61, 128)

    def test_non_power_of_two_degree_rejected(self):
        with pytest.raises(CryptoError):
            find_ntt_prime(40, 48)

    def test_primitive_root_has_order_2n(self):
        n = 64
        q = find_ntt_prime(40, n)
        psi = find_primitive_2n_root(q, n)
        assert pow(psi, n, q) == q - 1
        assert pow(psi, 2 * n, q) == 1


class TestTransforms:
    def test_forward_inverse_roundtrip(self):
        n = 64
        q = find_ntt_prime(40, n)
        ntt = NegacyclicNTT(q, n)
        rng = random.Random(7)
        coeffs = [rng.randrange(q) for _ in range(n)]
        assert ntt.inverse(ntt.forward(coeffs)) == coeffs

    def test_multiply_matches_schoolbook(self):
        n = 32
        q = find_ntt_prime(30, n)
        ntt = NegacyclicNTT(q, n)
        rng = random.Random(11)
        a = [rng.randrange(q) for _ in range(n)]
        b = [rng.randrange(q) for _ in range(n)]
        assert ntt.multiply(a, b) == negacyclic_mul_schoolbook(a, b, q)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.integers(0, 2**32),
           st.integers(0, 31), st.integers(0, 31))
    def test_monomial_products_wrap_negacyclically(self, ca, cb, i, j):
        """x^i * x^j = x^(i+j), with a sign flip past x^N."""
        n = 32
        q = find_ntt_prime(35, n)
        ntt = NegacyclicNTT(q, n)
        a = [0] * n
        b = [0] * n
        a[i] = ca % q
        b[j] = cb % q
        out = ntt.multiply(a, b)
        k = i + j
        expect = [0] * n
        if k < n:
            expect[k] = ca * cb % q
        else:
            expect[k - n] = -(ca * cb) % q
        assert out == expect

    def test_wrong_length_rejected(self):
        ntt = NegacyclicNTT(find_ntt_prime(30, 32), 32)
        with pytest.raises(CryptoError):
            ntt.forward([0] * 31)
        with pytest.raises(CryptoError):
            ntt.inverse([0] * 33)

    def test_unfriendly_modulus_rejected(self):
        # 17 - 1 = 16 is not divisible by 2*32.
        with pytest.raises(CryptoError):
            NegacyclicNTT(17, 32)
