"""Secret-key BFV: round-trips, homomorphism, noise, serialization."""

import numpy as np
import pytest

from repro.errors import CryptoError, GCProtocolError
from repro.fixedpoint import Q8_4, Q16_8
from repro.he.bfv import CIPHERTEXT_HEADER_BYTES, BFVContext, Ciphertext
from repro.he.ntt import negacyclic_mul_schoolbook
from repro.he.params import params_for_workload


def _context(fmt=Q8_4, rows=2, cols=3):
    return BFVContext(params_for_workload(fmt, rows, cols))


def _random_plaintext(ctx, rng):
    half_t = ctx.params.plain_modulus // 2
    return [int(v) for v in
            rng.integers(-half_t, half_t, ctx.params.ring_degree)]


def _bounded_plaintext(ctx, rng, bound):
    """Coefficients small enough that ring products stay inside the
    centered plaintext range — the contract every protocol message
    honours (the accumulator-width sizing guarantees it)."""
    return [int(v) for v in rng.integers(-bound, bound + 1,
                                         ctx.params.ring_degree)]


class TestEncryptDecrypt:
    def test_roundtrip(self):
        ctx = _context()
        rng = np.random.default_rng(1)
        sk = ctx.keygen(rng)
        plain = _random_plaintext(ctx, rng)
        assert ctx.decrypt(ctx.encrypt(plain, sk, rng), sk) == plain

    def test_seeded_encryption_is_deterministic(self):
        ctx = _context()
        outs = []
        for _ in range(2):
            rng = np.random.default_rng(42)
            sk = ctx.keygen(rng)
            ct = ctx.encrypt([1] * ctx.params.ring_degree, sk, rng)
            outs.append(ct.to_bytes(ctx.params))
        assert outs[0] == outs[1]

    def test_different_seeds_differ(self):
        ctx = _context()
        cts = []
        for seed in (1, 2):
            rng = np.random.default_rng(seed)
            sk = ctx.keygen(rng)
            cts.append(ctx.encrypt([0] * ctx.params.ring_degree, sk, rng)
                       .to_bytes(ctx.params))
        assert cts[0] != cts[1]

    def test_out_of_range_plaintext_rejected(self):
        ctx = _context()
        rng = np.random.default_rng(0)
        sk = ctx.keygen(rng)
        bad = [0] * ctx.params.ring_degree
        bad[0] = ctx.params.plain_modulus // 2  # one past the centered range
        with pytest.raises(CryptoError):
            ctx.encrypt(bad, sk, rng)
        with pytest.raises(CryptoError):
            ctx.encrypt([0] * (ctx.params.ring_degree - 1), sk, rng)


class TestHomomorphism:
    def test_plain_mul_matches_schoolbook_mod_t(self):
        ctx = _context(Q16_8, 3, 4)
        params = ctx.params
        rng = np.random.default_rng(3)
        sk = ctx.keygen(rng)
        # |msg*w| <= N * 2^13 * 2^13 = 2^32 < t/2 = 2^34: no wraparound
        msg = _bounded_plaintext(ctx, rng, 1 << 13)
        weights = _bounded_plaintext(ctx, rng, 1 << 13)
        ct = ctx.plain_mul(ctx.encrypt(msg, sk, rng), ctx.make_plain(weights))
        got = ctx.decrypt(ct, sk)
        t = params.plain_modulus
        ref = negacyclic_mul_schoolbook(
            [m % t for m in msg], [w % t for w in weights], t
        )
        centered = [r - t if r >= t // 2 else r for r in ref]
        assert got == centered

    def test_add_is_coefficientwise(self):
        ctx = _context()
        rng = np.random.default_rng(5)
        sk = ctx.keygen(rng)
        t = ctx.params.plain_modulus
        a = _random_plaintext(ctx, rng)
        b = _random_plaintext(ctx, rng)
        ct = ctx.add(ctx.encrypt(a, sk, rng), ctx.encrypt(b, sk, rng))
        expect = [(x + y + t // 2) % t - t // 2 for x, y in zip(a, b)]
        assert ctx.decrypt(ct, sk) == expect

    def test_noise_budget_positive_and_shrinks_under_mul(self):
        ctx = _context(Q16_8, 3, 4)
        rng = np.random.default_rng(9)
        sk = ctx.keygen(rng)
        ct = ctx.encrypt(_bounded_plaintext(ctx, rng, 1 << 10), sk, rng)
        fresh = ctx.noise_budget_bits(ct, sk)
        weights = _bounded_plaintext(ctx, rng, 100)
        spent = ctx.noise_budget_bits(
            ctx.plain_mul(ct, ctx.make_plain(weights)), sk
        )
        assert fresh > 0
        assert spent > 0  # derivation guarantees NOISE_MARGIN_BITS headroom
        assert spent <= fresh


class TestSerialization:
    def test_roundtrip(self):
        ctx = _context()
        rng = np.random.default_rng(2)
        sk = ctx.keygen(rng)
        ct = ctx.encrypt(_random_plaintext(ctx, rng), sk, rng)
        back = Ciphertext.from_bytes(ct.to_bytes(ctx.params), ctx.params)
        assert back.c0 == ct.c0 and back.c1 == ct.c1

    def test_bad_magic_rejected(self):
        ctx = _context()
        with pytest.raises(GCProtocolError, match="bad header"):
            Ciphertext.from_bytes(b"NOPE" + b"\x00" * 64, ctx.params)

    def test_short_buffer_rejected(self):
        ctx = _context()
        with pytest.raises(GCProtocolError):
            Ciphertext.from_bytes(b"RHE1\x00", ctx.params)

    def test_shape_mismatch_rejected(self):
        small = BFVContext(params_for_workload(Q8_4, 1, 2))
        big = BFVContext(params_for_workload(Q16_8, 8, 8))
        rng = np.random.default_rng(4)
        sk = small.keygen(rng)
        wire = small.encrypt([0] * small.params.ring_degree, sk, rng) \
            .to_bytes(small.params)
        with pytest.raises(GCProtocolError, match="shape mismatch"):
            Ciphertext.from_bytes(wire, big.params)

    def test_truncated_body_rejected(self):
        ctx = _context()
        rng = np.random.default_rng(6)
        sk = ctx.keygen(rng)
        wire = ctx.encrypt([0] * ctx.params.ring_degree, sk, rng) \
            .to_bytes(ctx.params)
        with pytest.raises(GCProtocolError, match="truncated"):
            Ciphertext.from_bytes(wire[:-1], ctx.params)

    def test_out_of_range_coefficient_rejected(self):
        ctx = _context()
        params = ctx.params
        width = params.coeff_bytes
        body = (params.q.to_bytes(width, "big") * (2 * params.ring_degree))
        wire = (b"RHE1" + params.ring_degree.to_bytes(4, "big")
                + width.to_bytes(2, "big") + body)
        assert len(wire) - CIPHERTEXT_HEADER_BYTES == 2 * params.ring_degree * width
        with pytest.raises(GCProtocolError, match="out of range"):
            Ciphertext.from_bytes(wire, params)
