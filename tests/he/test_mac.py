"""The encrypted-MAC session halves against the quantised oracle."""

import numpy as np
import pytest

from repro.errors import CryptoError
from repro.fixedpoint import Q8_4, Q16_8
from repro.he.mac import HEMacClient, HEMacServer
from repro.he.params import params_for_workload


def _oracle_raw(matrix, x, fmt):
    """Raw product-scale values, exactly as the GC accumulator holds them."""
    a = fmt.encode_array(np.atleast_2d(np.asarray(matrix, dtype=float)))
    return a @ fmt.encode_array(np.asarray(x, dtype=float))


class TestRowQueries:
    def test_row_results_match_oracle(self):
        matrix = [[1.5, -2.25, 0.5], [0.0, 3.0, -1.75]]
        x = [0.25, -1.5, 2.0]
        server = HEMacServer(matrix, Q16_8)
        client = HEMacClient(server.params, Q16_8, seed=0)
        expect = _oracle_raw(matrix, x, Q16_8)
        for r in range(2):
            result = server.answer_query(client.encrypt_query(x), r)
            assert client.decrypt_row_result(result) == expect[r]
            assert client.last_noise_budget_bits > 0

    def test_row_index_out_of_range(self):
        server = HEMacServer([[1.0, 2.0]], Q8_4)
        client = HEMacClient(server.params, Q8_4, seed=1)
        with pytest.raises(CryptoError):
            server.answer_query(client.encrypt_query([1.0, 1.0]), 1)

    def test_negative_products_wrap_like_twos_complement(self):
        # A saturating-negative dot product stays centered correctly.
        matrix = [[-7.9375, -7.9375]]
        x = [7.9375, 7.9375]
        server = HEMacServer(matrix, Q8_4)
        client = HEMacClient(server.params, Q8_4, seed=2)
        result = server.answer_query(client.encrypt_query(x), 0)
        assert client.decrypt_row_result(result) == _oracle_raw(matrix, x, Q8_4)[0]


class TestBatchedMatvec:
    def test_simd_matvec_matches_oracle(self):
        rng = np.random.default_rng(7)
        matrix = rng.uniform(-4, 4, (5, 3))
        x = rng.uniform(-4, 4, 3)
        server = HEMacServer(matrix, Q16_8)
        client = HEMacClient(server.params, Q16_8, seed=3)
        result = server.answer_matvec(client.encrypt_query(x))
        got = client.decrypt_matvec_result(result, 5)
        assert got == list(_oracle_raw(matrix, x, Q16_8))

    def test_matvec_and_row_queries_agree(self):
        matrix = [[0.5, 1.5], [-2.0, 0.25], [3.5, -1.0]]
        x = [1.25, -0.75]
        server = HEMacServer(matrix, Q8_4)
        client = HEMacClient(server.params, Q8_4, seed=4)
        batched = client.decrypt_matvec_result(
            server.answer_matvec(client.encrypt_query(x)), 3
        )
        for r in range(3):
            single = client.decrypt_row_result(
                server.answer_query(client.encrypt_query(x), r)
            )
            assert single == batched[r]

    def test_params_derive_from_workload(self):
        server = HEMacServer([[0.0] * 6] * 4, Q8_4)
        assert server.params == params_for_workload(Q8_4, 4, 6)
        # client-side derivation from public inputs matches (the
        # handshake's parameter-mismatch check relies on this)
        assert server.params.to_wire() == params_for_workload(Q8_4, 4, 6).to_wire()
