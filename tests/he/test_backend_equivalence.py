"""Property suite: the GC and HE backends are observationally identical.

Both backends must decode the *same* fixed-point dot products — the
bit-identity that makes the backend knob a pure cost trade-off rather
than a semantics change — and the HE backend must never run out of
noise budget, including at the paper's 32-bit format.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import FixedPointFormat, Q8_4, Q32_16
from repro.privatemac import open_session

#: Small formats keep the garbled runs fast (the GC datapath supports
#: bit-widths 4/8/16/...); the shapes cover the degenerate 1x1, a
#: tall-skinny, and a wide row.
FORMATS = [FixedPointFormat(4, 2), Q8_4]
SHAPES = [(1, 1), (3, 1), (1, 4), (2, 3)]


def _values(fmt, count):
    """Exactly-representable fixed-point floats spanning the range."""
    lo = -(1 << (fmt.total_bits - 1))
    hi = (1 << (fmt.total_bits - 1)) - 1
    return st.lists(
        st.integers(lo, hi).map(lambda v: v / (1 << fmt.frac_bits)),
        min_size=count, max_size=count,
    )


@st.composite
def workloads(draw):
    fmt = draw(st.sampled_from(FORMATS))
    rows, cols = draw(st.sampled_from(SHAPES))
    matrix = np.array(
        [draw(_values(fmt, cols)) for _ in range(rows)]
    )
    x = np.array(draw(_values(fmt, cols)))
    return fmt, matrix, x


class TestBackendEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(workloads())
    def test_gc_and_he_decode_identical_products(self, workload):
        fmt, matrix, x = workload
        with open_session(matrix, fmt, "gc", seed=0) as gc:
            gc_result = gc.query_matvec(x)
        with open_session(matrix, fmt, "he", seed=0) as he:
            he_result = he.query_matvec(x)
            oracle = np.array(
                [he.expected_row(r, x) for r in range(matrix.shape[0])]
            )
        # bit-identical, not approximately equal
        assert list(gc_result) == list(he_result) == list(oracle)

    @settings(max_examples=20, deadline=None)
    @given(workloads())
    def test_row_queries_agree_across_backends(self, workload):
        fmt, matrix, x = workload
        row = matrix.shape[0] - 1
        with open_session(matrix, fmt, "gc", seed=0) as gc:
            gc_val = gc.query_row(row, x)
        with open_session(matrix, fmt, "he", seed=0) as he:
            he_val = he.query_row(row, x)
        assert gc_val == he_val


class TestNoiseBudget:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.sampled_from(SHAPES))
    def test_budget_never_underflows(self, seed, shape):
        rows, cols = shape
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(-7.9, 7.9, (rows, cols))
        x = rng.uniform(-7.9, 7.9, cols)
        with open_session(matrix, Q8_4, "he", seed=seed) as he:
            he.query_matvec(x)
            assert he.last_noise_budget_bits > 0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_budget_holds_at_the_paper_32bit_format(self, seed):
        """Q32.16 is the paper's headline operating point: worst-case
        magnitude inputs must still decode with margin to spare."""
        rng = np.random.default_rng(seed)
        bound = float((1 << 15) - 1)  # near the Q32.16 integer limit
        matrix = rng.choice([-bound, bound], size=(2, 4))
        x = rng.choice([-bound, bound], size=4)
        with open_session(matrix, Q32_16, "he", seed=seed) as he:
            result = he.query_matvec(x)
            assert he.last_noise_budget_bits > 0
            oracle = [he.expected_row(r, x) for r in range(2)]
        assert list(result) == oracle
