"""Deterministic parameter derivation and its wire encoding."""

import pytest

from repro.errors import CryptoError
from repro.fixedpoint import Q8_4, Q16_8, Q32_16
from repro.he.params import (
    HEParams,
    MIN_RING_DEGREE,
    accumulator_width,
    params_for_workload,
)


class TestDerivation:
    def test_same_inputs_same_params(self):
        a = params_for_workload(Q16_8, 3, 4)
        b = params_for_workload(Q16_8, 3, 4)
        assert a == b

    def test_plain_modulus_matches_gc_accumulator(self):
        from repro.host import CloudServer

        server = CloudServer([[0.5] * 4] * 3, Q8_4)
        params = params_for_workload(Q8_4, 3, 4)
        assert params.acc_width == server.accelerator.acc_width
        assert params.plain_modulus == 1 << accumulator_width(Q8_4, 4)

    def test_ring_fits_packed_product(self):
        params = params_for_workload(Q8_4, 40, 7)
        # every packed exponent stays below N: no negacyclic wrap
        assert (params.rows + 1) * params.cols <= params.ring_degree
        assert params.ring_degree >= MIN_RING_DEGREE
        # N is the next power of two, not wildly oversized
        assert params.ring_degree < 2 * max(MIN_RING_DEGREE, 41 * 7)

    def test_paper_format_params_are_sound(self):
        params = params_for_workload(Q32_16, 4, 8)
        assert params.plain_modulus < params.q
        assert params.delta > 1
        assert params.coeff_bytes == (params.q.bit_length() + 7) // 8

    def test_degenerate_workload_rejected(self):
        with pytest.raises(CryptoError):
            params_for_workload(Q8_4, 0, 4)
        with pytest.raises(CryptoError):
            params_for_workload(Q8_4, 4, 0)


class TestWireCodec:
    def test_roundtrip(self):
        params = params_for_workload(Q16_8, 2, 5)
        assert HEParams.from_wire(params.to_wire()) == params

    def test_wire_payload_is_json_safe(self):
        import json

        params = params_for_workload(Q32_16, 3, 3)
        assert HEParams.from_wire(json.loads(json.dumps(params.to_wire()))) == params

    @pytest.mark.parametrize("mutate", [
        lambda w: w.pop("q"),
        lambda w: w.update(ring_degree="sixty-four"),
        lambda w: w.update(acc_width=None),
    ])
    def test_malformed_payload_raises_crypto_error(self, mutate):
        wire = params_for_workload(Q8_4, 2, 2).to_wire()
        mutate(wire)
        with pytest.raises(CryptoError):
            HEParams.from_wire(wire)

    def test_inconsistent_params_rejected(self):
        good = params_for_workload(Q8_4, 2, 2)
        with pytest.raises(CryptoError):
            HEParams(ring_degree=48, q=good.q, acc_width=good.acc_width,
                     rows=2, cols=2)
        with pytest.raises(CryptoError):
            HEParams(ring_degree=good.ring_degree, q=17,
                     acc_width=good.acc_width, rows=2, cols=2)
        with pytest.raises(CryptoError):
            # t >= q: nothing left for noise
            HEParams(ring_degree=good.ring_degree, q=good.q,
                     acc_width=good.q.bit_length() + 1, rows=2, cols=2)
