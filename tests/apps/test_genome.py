"""Private genome analysis app tests."""

import numpy as np
import pytest

from repro.apps.genome import (
    PrivateGenomeAnalysis,
    SimilarityResult,
    random_dosages,
    random_snp_vector,
)
from repro.errors import ConfigurationError
from repro.fixedpoint import Q16_8


class TestGenerators:
    def test_snp_vector_is_pm_one(self):
        v = random_snp_vector(50, seed=1)
        assert set(np.unique(v)) <= {-1.0, 1.0}

    def test_dosages_in_range(self):
        d = random_dosages(50, seed=2)
        assert set(np.unique(d)) <= {0.0, 1.0, 2.0}


class TestSimilarity:
    def test_private_similarity_counts_matches(self):
        reference = random_snp_vector(8, seed=3)
        patient = reference.copy()
        patient[:3] *= -1  # three mismatching sites
        analysis = PrivateGenomeAnalysis(Q16_8, seed=3)
        result = analysis.similarity(reference, patient)
        assert result.matching_sites == 5
        assert result.similarity == pytest.approx(5 / 8)
        assert analysis.macs_executed == 8

    def test_identical_genomes(self):
        v = random_snp_vector(6, seed=4)
        result = PrivateGenomeAnalysis(Q16_8, seed=4).similarity(v, v)
        assert result.matching_sites == 6

    def test_shape_and_encoding_validation(self):
        analysis = PrivateGenomeAnalysis()
        with pytest.raises(ConfigurationError):
            analysis.similarity(np.ones(4), np.ones(5))
        with pytest.raises(ConfigurationError):
            analysis.similarity(np.array([0.5, 1.0]), np.array([1.0, 1.0]))


class TestRiskScore:
    def test_private_risk_score(self):
        weights = np.array([0.5, -0.25, 1.0])
        dosages = np.array([2.0, 1.0, 0.0])
        analysis = PrivateGenomeAnalysis(Q16_8, seed=5)
        score = analysis.risk_score(weights, dosages)
        assert score == pytest.approx(weights @ dosages, abs=1e-3)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            PrivateGenomeAnalysis().risk_score(np.ones(3), np.ones(2))


class TestEstimates:
    def test_panel_scale_projection(self):
        est = PrivateGenomeAnalysis.panel_time_estimate_s(100_000)
        assert est["maxelerator"] < est["tinygarble"]
        # 100k-SNP panel: minutes in software, tens of ms on the accelerator
        assert est["tinygarble"] > 60
        assert est["maxelerator"] < 0.1

    def test_result_math(self):
        r = SimilarityResult(inner_product=0.0, n_sites=10)
        assert r.matching_sites == 5
