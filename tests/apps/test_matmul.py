"""Private matrix-vector product: correctness on both backends."""

import numpy as np
import pytest

from repro.apps.matmul import (
    MatVecEstimate,
    PrivateMatVec,
    estimate_times_s,
    private_dot,
)
from repro.errors import ConfigurationError
from repro.fixedpoint import Q8_4, Q16_8


class TestPrivateMatVec:
    @pytest.mark.parametrize("backend", ["maxelerator", "tinygarble"])
    def test_small_product_both_backends(self, backend):
        a = np.array([[1.5, -2.25], [0.5, 3.0]])
        x = np.array([2.0, -1.25])
        pm = PrivateMatVec(a, Q16_8, backend=backend, seed=1)
        report = pm.run_with_client(x)
        np.testing.assert_allclose(report.result, a @ x, atol=1e-3)
        assert report.n_macs == 4
        assert report.tables > 0
        assert report.backend == backend

    def test_matches_quantized_expectation_exactly(self):
        a = np.array([[0.3, -0.7, 0.11]])
        x = np.array([0.9, 0.2, -0.55])
        pm = PrivateMatVec(a, Q8_4, seed=2)
        report = pm.run_with_client(x)
        np.testing.assert_array_equal(report.result, pm.expected(x))

    def test_negative_heavy_inputs(self):
        a = np.array([[-7.0, -7.5]])
        x = np.array([-7.25, -6.0])
        pm = PrivateMatVec(a, Q8_4, seed=3)
        report = pm.run_with_client(x)
        assert report.result[0] == pytest.approx(-7 * -7.25 + -7.5 * -6, abs=0.1)

    def test_private_dot_convenience(self):
        value = private_dot([1.0, 2.0], [0.5, -0.5], Q8_4, seed=4)
        assert value == pytest.approx(-0.5)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivateMatVec(np.zeros(3), Q8_4)
        pm = PrivateMatVec(np.zeros((2, 3)), Q8_4)
        with pytest.raises(ConfigurationError):
            pm.run_with_client(np.zeros(2))

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivateMatVec(np.zeros((1, 2)), Q8_4, backend="magic")

    def test_traffic_is_reported(self):
        pm = PrivateMatVec(np.array([[1.0, 1.0]]), Q8_4, seed=5)
        report = pm.run_with_client(np.array([1.0, 1.0]))
        assert report.bytes_sent_garbler > report.bytes_sent_evaluator
        assert report.bytes_sent_garbler > 32 * report.tables  # tables+labels+OT


class TestEstimates:
    def test_framework_ordering(self):
        est = estimate_times_s(n_macs=1000, bitwidth=32)
        assert est["maxelerator"] < est["overlay"] < est["tinygarble"]

    def test_estimate_scales_linearly(self):
        one = MatVecEstimate(1, 1, 32).times_s()["maxelerator"]
        many = MatVecEstimate(10, 100, 32).times_s()["maxelerator"]
        assert many == pytest.approx(1000 * one)

    def test_table_bytes(self):
        est = MatVecEstimate(2, 3, 8)
        assert est.table_bytes(ands_per_mac=100) == 32 * 100 * 6
        assert est.table_bytes() > 0
