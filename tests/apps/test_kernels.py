"""Private Gram-matrix / kernel analytics tests."""

import numpy as np
import pytest

from repro.apps.kernels import PrivateGramMatrix, spectral_embedding
from repro.errors import ConfigurationError
from repro.fixedpoint import Q16_8


class TestPrivateGram:
    def test_cross_kernel_correct(self):
        rng = np.random.default_rng(1)
        u = rng.uniform(-1, 1, size=(2, 3)).round(2)
        v = rng.uniform(-1, 1, size=(2, 3)).round(2)
        gram = PrivateGramMatrix(u, Q16_8, seed=1)
        k = gram.compute_with_client(v)
        np.testing.assert_allclose(k, u @ v.T, atol=1e-2)
        assert gram.macs_executed == 2 * 2 * 3

    def test_matches_quantised_expectation(self):
        u = np.array([[0.5, -0.25]])
        v = np.array([[1.0, 0.75]])
        gram = PrivateGramMatrix(u, Q16_8, seed=2)
        np.testing.assert_array_equal(
            gram.compute_with_client(v), gram.expected(v)
        )

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            PrivateGramMatrix(np.zeros(3))
        gram = PrivateGramMatrix(np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            gram.compute_with_client(np.zeros((2, 4)))

    def test_mac_census_and_estimates(self):
        assert PrivateGramMatrix.mac_count(10, 20, 5) == 1000
        est = PrivateGramMatrix.time_estimate_s(10, 20, 5)
        assert est["maxelerator"] < est["tinygarble"]


class TestSpectralEmbedding:
    def test_recovers_block_structure(self):
        # two well-separated clusters -> embedding separates them
        rng = np.random.default_rng(3)
        a = rng.normal(0, 0.05, size=(5, 3)) + np.array([1.0, 0.0, 0.0])
        b = rng.normal(0, 0.05, size=(5, 3)) + np.array([-1.0, 0.0, 0.0])
        data = np.vstack([a, b])
        kernel = data @ data.T
        emb = spectral_embedding(kernel, dims=1)
        signs = np.sign(emb[:, 0])
        assert abs(signs[:5].sum()) == 5
        assert abs(signs[5:].sum()) == 5
        assert signs[0] != signs[5]

    def test_square_required(self):
        with pytest.raises(ConfigurationError):
            spectral_embedding(np.zeros((2, 3)))

    def test_dims_selected(self):
        kernel = np.eye(4)
        emb = spectral_embedding(kernel, dims=3)
        assert emb.shape == (4, 3)
