"""Case-study apps: ridge (Table 3), recommender, portfolio, deep, kernel."""

import numpy as np
import pytest

from repro.apps.datasets import (
    TABLE3_DATASETS,
    synthetic_covariance,
    synthetic_portfolio,
    synthetic_ratings,
    synthetic_regression,
)
from repro.apps.deep import MLPLayer, PrivateMLP, build_relu_netlist, im2col, private_relu
from repro.apps.kernel import PrivateGradientSolver
from repro.apps.portfolio import (
    PAPER_MAXELERATOR_S,
    PAPER_TINYGARBLE_S,
    PortfolioRuntimeModel,
    PrivatePortfolioAnalysis,
    macs_per_round,
)
from repro.apps.recommender import (
    PAPER_IMPROVEMENT_RANGE,
    PrivateMatrixFactorization,
    RecommenderRuntimeModel,
)
from repro.apps.ridge import PrivateRidgeRegression, RidgeRuntimeModel
from repro.errors import ConfigurationError
from repro.fixedpoint import Q8_4, Q16_8


class TestDatasets:
    def test_table3_specs_complete(self):
        assert len(TABLE3_DATASETS) == 6
        names = {s.name for s in TABLE3_DATASETS}
        assert "communities11.IV" in names and "concreteStrength" in names

    def test_synthetic_regression_recoverable(self):
        x, y, w = synthetic_regression(200, 5, noise=0.01, seed=1)
        w_hat, *_ = np.linalg.lstsq(x, y, rcond=None)
        np.testing.assert_allclose(w_hat, w, atol=0.05)

    def test_synthetic_ratings_shape(self):
        triples, u, v = synthetic_ratings(10, 8, 30, seed=2)
        assert triples.shape == (30, 3)
        assert (triples[:, 2] >= 1).all() and (triples[:, 2] <= 5).all()

    def test_synthetic_covariance_is_spd(self):
        cov = synthetic_covariance(4, seed=3)
        np.testing.assert_allclose(cov, cov.T)
        assert (np.linalg.eigvalsh(cov) > 0).all()

    def test_portfolio_weights_normalised(self):
        w = synthetic_portfolio(5, seed=4)
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()


class TestRidgeRuntime:
    def test_table3_improvements_match_paper(self):
        model = RidgeRuntimeModel()
        for row in model.table3():
            assert row.improvement == pytest.approx(row.paper_improvement, rel=0.03)

    def test_table3_times_match_paper(self):
        model = RidgeRuntimeModel()
        for row in model.table3():
            assert row.time_ours_s == pytest.approx(row.spec.paper_ours_s, rel=0.05)

    def test_improvement_grows_with_d(self):
        model = RidgeRuntimeModel()
        rows = sorted(model.table3(), key=lambda r: r.spec.d)
        improvements = [r.improvement for r in rows]
        assert improvements == sorted(improvements)

    def test_mac_fraction_monotone(self):
        model = RidgeRuntimeModel()
        assert model.mac_fraction(20) > model.mac_fraction(8) > 0.9

    def test_format_table(self):
        text = RidgeRuntimeModel().format_table()
        assert "communities11.IV" in text and "39.8x" in text


class TestRidgeFunctional:
    def test_private_statistics_give_correct_weights(self):
        x, y, _ = synthetic_regression(12, 2, noise=0.02, seed=5)
        ridge = PrivateRidgeRegression(ridge_lambda=0.05, fmt=Q16_8, seed=6)
        w_private = ridge.fit(x, y)
        w_plain = PrivateRidgeRegression.closed_form(x, y, 0.05)
        np.testing.assert_allclose(w_private, w_plain, atol=0.05)
        assert ridge.macs_executed == 12 * 2 * 2 + 12 * 2

    def test_mac_count_formula(self):
        assert PrivateRidgeRegression.mac_count(100, 5) == 100 * 25 + 100 * 5

    def test_negative_lambda_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivateRidgeRegression(ridge_lambda=-1.0)


class TestRecommender:
    def test_movielens_claim(self):
        run = RecommenderRuntimeModel().movielens_claim()
        lo, hi = PAPER_IMPROVEMENT_RANGE
        assert lo <= run.improvement <= hi
        assert run.accelerated_hours == pytest.approx(1.0, abs=0.05)

    def test_training_reduces_rmse(self):
        triples, _, _ = synthetic_ratings(12, 10, 60, seed=7)
        mf = PrivateMatrixFactorization(12, 10, profile_dim=3, seed=7)
        before = mf.rmse(triples)
        for _ in range(20):
            mf.train_epoch(triples)
        # the synthetic ratings carry a noise floor; require a clear
        # improvement, not perfection
        assert mf.rmse(triples) < before * 0.95

    def test_mac_census(self):
        triples, _, _ = synthetic_ratings(5, 5, 10, seed=8)
        mf = PrivateMatrixFactorization(5, 5, profile_dim=4, seed=8)
        mf.train_epoch(triples)
        assert mf.macs_per_iteration == 3 * 4 * 10

    def test_private_predictions_path(self):
        triples, _, _ = synthetic_ratings(3, 3, 3, seed=9)
        mf = PrivateMatrixFactorization(
            3, 3, profile_dim=2, private_predictions=True, fmt=Q8_4, seed=9
        )
        mf.train_epoch(triples)
        assert mf.private_macs_executed == 3 * 2  # d MACs per rating

    def test_bad_profile_dim(self):
        with pytest.raises(ConfigurationError):
            PrivateMatrixFactorization(2, 2, profile_dim=0)


class TestPortfolio:
    def test_paper_numbers_reproduced(self):
        timing = PortfolioRuntimeModel().analysis_time_s()
        assert timing.tinygarble_s == pytest.approx(PAPER_TINYGARBLE_S, rel=0.08)
        assert timing.maxelerator_s == pytest.approx(PAPER_MAXELERATOR_S, rel=0.05)

    def test_speedup_order(self):
        timing = PortfolioRuntimeModel().analysis_time_s()
        assert 70 <= timing.speedup <= 95  # paper: 1.33 s / 15.23 ms = 87x

    def test_macs_per_round(self):
        assert macs_per_round(2) == 8  # the count implied by the paper

    def test_private_quadratic_form(self):
        cov = synthetic_covariance(2, seed=10)
        w = synthetic_portfolio(2, seed=10)
        analysis = PrivatePortfolioAnalysis(cov, Q16_8, seed=10)
        risk = analysis.risk(w)
        assert risk == pytest.approx(analysis.expected(w), abs=0.02)
        assert analysis.macs_executed == 4 + 2

    def test_asymmetric_covariance_rejected(self):
        with pytest.raises(ConfigurationError):
            PrivatePortfolioAnalysis(np.array([[1.0, 0.5], [0.2, 1.0]]))

    def test_wrong_weight_shape_rejected(self):
        analysis = PrivatePortfolioAnalysis(synthetic_covariance(2))
        with pytest.raises(ConfigurationError):
            analysis.risk(np.ones(3))


class TestDeep:
    def test_relu_netlist_budget_and_function(self):
        net = build_relu_netlist(8)
        # 1 AND per bit; the MSB's mux folds away (ReLU output sign is 0)
        assert net.stats().n_nonfree == 7
        from repro.bits import from_bits, to_bits

        for v in (5, -5, 0, 127, -128):
            out = net.evaluate_plain([], to_bits(v, 8))
            assert from_bits(out, signed=True) == max(v, 0)

    def test_private_relu_protocol(self):
        values = np.array([1.5, -2.0, 0.0])
        out = private_relu(values, Q8_4)
        np.testing.assert_allclose(out, [1.5, 0.0, 0.0])

    def test_private_mlp_inference(self):
        layers = [
            MLPLayer(np.array([[0.5, -0.25], [1.0, 0.75]])),
            MLPLayer(np.array([[1.0, -1.0]]), relu=False),
        ]
        mlp = PrivateMLP(layers, Q16_8)
        x = np.array([1.0, 0.5])
        np.testing.assert_allclose(mlp.infer(x), mlp.expected(x), atol=1e-2)
        assert mlp.macs_executed == 4 + 2

    def test_im2col_lowering(self):
        image = np.arange(16, dtype=float).reshape(4, 4)
        kernel = np.array([[1.0, 0.0], [0.0, -1.0]])
        cols = im2col(image, 2)
        assert cols.shape == (9, 4)
        direct = np.array(
            [
                [image[i, j] - image[i + 1, j + 1] for j in range(3)]
                for i in range(3)
            ]
        )
        np.testing.assert_allclose((cols @ kernel.ravel()).reshape(3, 3), direct)

    def test_im2col_kernel_too_big(self):
        with pytest.raises(ConfigurationError):
            im2col(np.zeros((2, 2)), 3)

    def test_time_estimates(self):
        mlp = PrivateMLP([MLPLayer(np.zeros((4, 4)))])
        est = mlp.inference_time_estimate_s()
        assert est["maxelerator"] < est["tinygarble"]


class TestKernelSolver:
    def test_plain_mode_converges(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, size=(6, 3))
        x_true = rng.uniform(-1, 1, size=3)
        solver = PrivateGradientSolver(a, private=False)
        x_hat, trace = solver.solve(a @ x_true, iterations=200)
        assert trace.converged
        np.testing.assert_allclose(x_hat, x_true, atol=0.05)

    def test_private_mode_small(self):
        a = np.array([[0.5, 0.25], [0.25, 0.75]])
        x_true = np.array([0.5, -0.5])
        solver = PrivateGradientSolver(a, fmt=Q16_8)
        _, trace = solver.solve(a @ x_true, iterations=2)
        assert trace.converged
        assert trace.macs_executed == 2 * solver.macs_per_iteration()

    def test_mac_census(self):
        solver = PrivateGradientSolver(np.zeros((4, 3)), private=False)
        assert solver.macs_per_iteration() == 24

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            PrivateGradientSolver(np.zeros(3))
        solver = PrivateGradientSolver(np.zeros((2, 2)) + 0.1, private=False)
        with pytest.raises(ConfigurationError):
            solver.solve(np.zeros(3))


class TestPrivateClassification:
    def test_client_learns_only_the_class(self):
        import numpy as np

        from repro.apps.deep import build_classifier_netlist, private_classify

        w = np.array([[0.5, -1.0], [1.5, 0.25], [-0.75, 2.0]])
        x = np.array([1.0, 1.5])
        assert private_classify(w, x, Q8_4) == int(np.argmax(w @ x))
        # the netlist's only outputs are the argmax index bits
        net = build_classifier_netlist(2, 3, Q8_4)
        assert len(net.outputs) == 2  # ceil(log2(3)) bits, no score wires

    def test_negative_scores(self):
        import numpy as np

        from repro.apps.deep import private_classify

        w = np.array([[-1.0, -1.0], [-0.5, -0.25]])
        x = np.array([1.0, 2.0])
        assert private_classify(w, x, Q8_4) == int(np.argmax(w @ x))

    def test_shape_validation(self):
        import numpy as np

        from repro.apps.deep import build_classifier_netlist, private_classify

        with pytest.raises(ConfigurationError):
            private_classify(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ConfigurationError):
            build_classifier_netlist(2, 1, Q8_4)
