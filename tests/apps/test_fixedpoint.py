"""Fixed-point codec tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fixedpoint import FixedPointFormat, Q8_4, Q16_8, Q32_16


class TestFormatValidation:
    def test_bad_formats_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(1, 0)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(8, 8)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(8, -1)

    def test_str(self):
        assert str(Q16_8) == "Q8.8"
        assert str(Q32_16) == "Q16.16"


class TestScalarCodec:
    @given(st.floats(-7.9, 7.9))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_within_resolution(self, v):
        raw = Q8_4.encode(v)
        assert abs(Q8_4.decode(raw) - v) <= Q8_4.quantization_error_bound() + 1e-12

    def test_saturation(self):
        assert Q8_4.decode(Q8_4.encode(100.0)) == Q8_4.max_value
        assert Q8_4.decode(Q8_4.encode(-100.0)) == Q8_4.min_value

    def test_exact_values(self):
        assert Q8_4.encode(1.5) == 24
        assert Q8_4.decode(24) == 1.5
        assert Q8_4.encode(-0.25) == -4

    def test_product_scale(self):
        a, b = 1.5, -2.25
        raw = Q16_8.encode(a) * Q16_8.encode(b)
        assert Q16_8.decode_product(raw) == pytest.approx(a * b, abs=1e-4)


class TestArrayCodec:
    def test_array_round_trip(self):
        values = np.array([0.5, -1.25, 3.75, 0.0])
        raw = Q16_8.encode_array(values)
        np.testing.assert_allclose(Q16_8.decode_array(raw), values)

    def test_array_saturates(self):
        raw = Q8_4.encode_array([1e9, -1e9])
        assert raw[0] == 127 and raw[1] == -128

    def test_dot_product_scale(self):
        a = np.array([0.5, -1.5])
        x = np.array([2.0, 1.0])
        raw = Q16_8.encode_array(a) @ Q16_8.encode_array(x)
        assert Q16_8.decode_product(raw) == pytest.approx(a @ x)

    def test_range_properties(self):
        assert Q8_4.min_value == -8.0
        assert Q8_4.max_value == pytest.approx(7.9375)
        assert Q8_4.resolution == 0.0625
