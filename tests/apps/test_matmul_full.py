"""Private matrix-matrix multiplication tests."""

import numpy as np
import pytest

from repro.apps.matmul_full import PrivateMatMul
from repro.errors import ConfigurationError
from repro.fixedpoint import Q8_4, Q16_8


class TestPrivateMatMul:
    def test_two_by_two_product(self):
        a = np.array([[1.0, -0.5], [0.25, 2.0]])
        x = np.array([[1.5, 0.0], [-1.0, 0.5]])
        pm = PrivateMatMul(a, Q16_8, seed=1)
        report = pm.run_with_client(x)
        np.testing.assert_allclose(report.result, a @ x, atol=1e-2)
        assert report.n_macs == 8

    def test_matches_quantised_expectation(self):
        a = np.array([[0.3, -0.7]])
        x = np.array([[0.9], [0.2]])
        pm = PrivateMatMul(a, Q8_4, seed=2)
        report = pm.run_with_client(x)
        np.testing.assert_array_equal(report.result, pm.expected(x))

    def test_paper_cycle_formula(self):
        a = np.zeros((2, 3))
        pm = PrivateMatMul(a, Q8_4)
        report_cycles = pm.run_with_client(np.zeros((3, 2))).paper_cycles
        # 3 * M * N * P * b with the paper's (M x N)(N x P) naming
        assert report_cycles == 3 * 2 * 3 * 2 * 8

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            PrivateMatMul(np.zeros(3))
        pm = PrivateMatMul(np.zeros((2, 3)), Q8_4)
        with pytest.raises(ConfigurationError):
            pm.run_with_client(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            pm.run_with_client(np.zeros(3))

    def test_estimates_present(self):
        pm = PrivateMatMul(np.eye(2) * 0.5, Q8_4, seed=3)
        report = pm.run_with_client(np.eye(2))
        assert report.estimates["maxelerator"] < report.estimates["tinygarble"]
