"""FSM schedule legality, throughput, and utilisation claims."""

import pytest

from repro.accel.schedule import MacSchedule, schedule_rounds
from repro.accel.tree_mac import build_scheduled_mac
from repro.errors import ScheduleError


@pytest.fixture(scope="module", params=[8, 16])
def sched(request):
    smc = build_scheduled_mac(request.param)
    return schedule_rounds(smc, 6)


class TestLegality:
    def test_verify_passes(self, sched):
        sched.verify()

    def test_one_table_per_core_per_cycle(self, sched):
        seen = set()
        for op in sched.ops:
            assert (op.cycle, op.core) not in seen
            seen.add((op.cycle, op.core))

    def test_seg1_gates_stay_on_their_core(self, sched):
        for op in sched.ops:
            if op.tag and op.tag[0] == "seg1":
                assert op.core == op.tag[1]

    def test_seg2_gates_stay_in_pool(self, sched):
        pool = set(sched.circuit.seg2_core_ids)
        for op in sched.ops:
            if not op.tag or op.tag[0] != "seg1":
                assert op.core in pool

    def test_every_and_gate_scheduled_each_round(self, sched):
        net = sched.circuit.netlist
        n_nonfree = sum(1 for g in net.gates if not g.is_free)
        per_round = {}
        for op in sched.ops:
            per_round[op.round_index] = per_round.get(op.round_index, 0) + 1
        assert per_round == {r: n_nonfree for r in range(sched.n_rounds)}

    def test_double_booking_detected(self, sched):
        bad = MacSchedule(
            circuit=sched.circuit,
            n_rounds=sched.n_rounds,
            ops=sched.ops + [sched.ops[0]],
            round_timing=sched.round_timing,
            ii_cycles=sched.ii_cycles,
            ready_cycles=sched.ready_cycles,
        )
        with pytest.raises(ScheduleError):
            bad.verify()


class TestThroughputClaims:
    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_steady_state_is_3b_cycles_per_mac(self, b):
        # Table 2's "Clock Cycle per MAC" row: 24 / 48 / 96
        smc = build_scheduled_mac(b)
        schedule = schedule_rounds(smc, 6)
        assert schedule.steady_state_cycles_per_mac == 3 * b

    def test_b8_latency_matches_paper_formula(self):
        # Section 4.3: b + log2(b) + 2 stages; exact at b = 8
        smc = build_scheduled_mac(8)
        schedule = schedule_rounds(smc, 6)
        stages = schedule.pipeline_latency_cycles / 3
        assert stages == 8 + 3 + 2

    @pytest.mark.parametrize("b", [8, 16])
    def test_idle_cores_at_most_two(self, b):
        # the paper: "the maximum number of idle cores is 2"
        smc = build_scheduled_mac(b)
        schedule = schedule_rounds(smc, 6)
        assert schedule.idle_cores() <= 2

    @pytest.mark.parametrize("b", [8, 16])
    def test_high_utilization(self, b):
        smc = build_scheduled_mac(b)
        schedule = schedule_rounds(smc, 6)
        assert schedule.utilization() > 0.8

    def test_seg1_cores_fully_packed_steady_state(self):
        # segment-1 slots are exactly 3 ops/stage: zero idle cycles there
        smc = build_scheduled_mac(8)
        schedule = schedule_rounds(smc, 6)
        mid = 3 * schedule.ii_cycles
        window = schedule.ops_in_window(mid, mid + schedule.ii_cycles)
        for core in range(smc.n_seg1_cores):
            n = sum(1 for op in window if op.core == core)
            assert n == schedule.ii_cycles, f"core {core} idle in steady state"


class TestScheduleApi:
    def test_stream_order_is_monotone(self, sched):
        stream = sched.stream_order()
        keys = [(s.cycle, s.core) for s in stream]
        assert keys == sorted(keys)

    def test_needs_three_rounds_for_steady_state(self):
        smc = build_scheduled_mac(8)
        schedule = schedule_rounds(smc, 2)
        with pytest.raises(ScheduleError):
            _ = schedule.steady_state_cycles_per_mac

    def test_zero_rounds_rejected(self):
        smc = build_scheduled_mac(8)
        with pytest.raises(ScheduleError):
            schedule_rounds(smc, 0)

    def test_per_core_ops_sums_to_total(self, sched):
        assert sum(sched.per_core_ops().values()) == len(sched.ops)
