"""Cycle-accurate FSM execution, end-to-end system, resources, memory."""

import pytest

from repro.accel.engine import GCEngine
from repro.accel.fsm import AcceleratorFSM
from repro.accel.label_generator import LabelGenerator
from repro.accel.maxelerator import MAXelerator, MaxSequentialGarbler, TimingModel
from repro.accel.memory import CoreMemorySimulator
from repro.accel.resources import PAPER_TABLE1, ResourceModel
from repro.accel.tree_mac import build_scheduled_mac
from repro.bits import from_bits, to_bits
from repro.crypto.labels import LabelFactory, color
from repro.crypto.ot import TOY_GROUP
from repro.errors import ConfigurationError, SimulationError
from repro.gc.channel import local_channel, run_two_party
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.sequential_gc import SequentialEvaluator


@pytest.fixture(scope="module")
def run8():
    smc = build_scheduled_mac(8)
    return smc, AcceleratorFSM(smc, seed=11).garble_rounds(4)


class TestEngine:
    def test_engine_matches_software_garbler(self):
        # one AND garbled by the engine == the software Garbler's table
        from repro.circuits.builder import NetlistBuilder

        b = NetlistBuilder("and1")
        w1 = b.garbler_input_bus(1)[0]
        w2 = b.evaluator_input_bus(1)[0]
        b.set_outputs([b.AND(w1, w2)])
        net = b.build()
        import random

        factory = LabelFactory(source=random.Random(3))
        gc = Garbler(net, factory=factory).garble()

        factory2 = LabelFactory(source=random.Random(3))
        engine = GCEngine()
        a_pair = factory2.fresh_pair()
        b_pair = factory2.fresh_pair()
        out0, table = engine.garble_and(a_pair.zero, b_pair.zero, factory2.offset, 0)
        assert (table.t_g, table.t_e) == (gc.tables[0].t_g, gc.tables[0].t_e)
        assert out0 == gc.wire_pairs[net.outputs[0]].zero

    def test_engine_stats(self):
        engine = GCEngine()
        engine.garble_and(2, 4, 1 | (1 << 100), 0)
        assert engine.stats.tables_generated == 1
        assert engine.stats.aes_activations == 4


class TestFsmExecution:
    def test_stream_covers_all_gates_all_rounds(self, run8):
        smc, run = run8
        n_nonfree = sum(1 for g in smc.netlist.gates if not g.is_free)
        assert run.total_tables == 4 * n_nonfree

    def test_stream_is_cycle_ordered(self, run8):
        _, run = run8
        keys = [(s.cycle, s.core) for s in run.stream]
        assert keys == sorted(keys)

    def test_cores_did_the_work(self, run8):
        smc, run = run8
        total = sum(c.tables_generated for c in run.cores)
        assert total == run.total_tables
        assert all(c.tables_generated > 0 for c in run.cores)

    def test_label_demand_within_rng_bank_capacity(self, run8):
        # Section 5.2: bank is sized k*(b/2) bits/cycle for the worst case
        _, run = run8
        assert run.label_stats.peak_bits_per_cycle <= run.label_stats.cells

    def test_power_gating_saves_energy(self, run8):
        # on average only ~k bits/cycle are needed -> most cells gated
        _, run = run8
        assert run.label_stats.gated_fraction > 0.5

    def test_state_pairs_chain_rounds(self, run8):
        smc, run = run8
        feedback = smc.circuit.state_feedback
        for r in range(1, 4):
            prev_out = run.rounds[r - 1].output_pairs
            for i, pair in enumerate(run.rounds[r].state_pairs):
                assert pair == prev_out[feedback[i]]


class TestEndToEndEvaluation:
    def test_fsm_stream_evaluates_correctly(self, run8):
        smc, run = run8
        net = smc.netlist
        a_vec = [-57, 120, 3, -99]
        x_vec = [93, -128, -45, 17]
        ev = Evaluator(net)
        n_gates = len(net.gates)
        state_labels = [p.select(0) for p in run.rounds[0].state_pairs]
        for r in range(4):
            labels = {}
            meta = run.rounds[r]
            for w, p, bit in zip(net.garbler_inputs, meta.garbler_pairs, to_bits(a_vec[r], 8)):
                labels[w] = p.select(bit)
            for w, p, bit in zip(net.evaluator_inputs, meta.evaluator_pairs, to_bits(x_vec[r], 8)):
                labels[w] = p.select(bit)
            for w, p in meta.const_pairs.items():
                labels[w] = p.select(net.constants[w])
            for w, l in zip(net.state_inputs, state_labels):
                labels[w] = l
            res = ev.evaluate(run.tables_for_round(r), labels, tweak_offset=r * n_gates)
            state_labels = res.labels_for_state(smc.circuit.state_feedback)
        bits = [
            color(l) ^ p for l, p in zip(res.output_labels, run.output_permute_bits)
        ]
        assert from_bits(bits, signed=True) == sum(a * x for a, x in zip(a_vec, x_vec))

    def test_protocol_with_unmodified_software_client(self):
        # "transparent to the evaluator": MaxSequentialGarbler speaks the
        # sequential-GC wire protocol to the stock SequentialEvaluator
        acc = MAXelerator(8, seed=7)
        g_chan, e_chan = local_channel()
        garbler = MaxSequentialGarbler(acc, g_chan, TOY_GROUP)
        client = SequentialEvaluator(acc.circuit.circuit, e_chan, TOY_GROUP)
        a_vec, x_vec = [13, -40, 7], [-3, 2, 110]
        _, e_rep = run_two_party(
            lambda: garbler.run([to_bits(a, 8) for a in a_vec], reveal="both"),
            lambda: client.run([to_bits(x, 8) for x in x_vec], reveal="both"),
        )
        assert from_bits(e_rep.output_bits, signed=True) == sum(
            a * x for a, x in zip(a_vec, x_vec)
        )


class TestTimingModel:
    @pytest.mark.parametrize(
        "b,cycles,time_us,thr,thr_core",
        [
            (8, 24, 0.12, 8.33e6, 1.04e6),
            (16, 48, 0.24, 4.17e6, 2.98e5),
            (32, 96, 0.48, 2.08e6, 8.68e4),
        ],
    )
    def test_table2_maxelerator_column(self, b, cycles, time_us, thr, thr_core):
        t = TimingModel(b)
        assert t.cycles_per_mac == cycles
        assert t.time_per_mac_s * 1e6 == pytest.approx(time_us, rel=0.01)
        assert t.macs_per_second == pytest.approx(thr, rel=0.01)
        assert t.macs_per_second_per_core == pytest.approx(thr_core, rel=0.01)

    def test_matmul_formula(self):
        # Section 4.3: 3*M*N*P*b cycles per matrix product
        t = TimingModel(8)
        assert t.matmul_cycles(2, 3, 4) == 3 * 2 * 3 * 4 * 8

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            MAXelerator(8, clock_mhz=0)


class TestMemoryModel:
    def test_fast_pcie_not_bottleneck(self, run8):
        smc, run = run8
        sim = CoreMemorySimulator(smc.n_cores, pcie_mb_per_s=60000.0)
        rep = sim.simulate(run.writes_by_cycle())
        assert not rep.pcie_is_bottleneck

    def test_slow_pcie_is_bottleneck(self, run8):
        smc, run = run8
        sim = CoreMemorySimulator(smc.n_cores, pcie_mb_per_s=800.0)
        rep = sim.simulate(run.writes_by_cycle())
        assert rep.pcie_is_bottleneck
        assert rep.transfer_time_s > rep.generation_time_s

    def test_overflow_detected(self, run8):
        smc, run = run8
        sim = CoreMemorySimulator(
            smc.n_cores, pcie_mb_per_s=1.0, block_capacity_tables=1
        )
        with pytest.raises(SimulationError):
            sim.simulate(run.writes_by_cycle())

    def test_empty_run_rejected(self):
        with pytest.raises(SimulationError):
            CoreMemorySimulator(4).simulate({})

    def test_byte_accounting(self, run8):
        smc, run = run8
        rep = CoreMemorySimulator(smc.n_cores, pcie_mb_per_s=60000.0).simulate(
            run.writes_by_cycle()
        )
        assert rep.total_bytes == 32 * run.total_tables


class TestResourceModel:
    def test_fit_quality_lut_ff(self):
        model = ResourceModel()
        for b in PAPER_TABLE1:
            err = model.relative_error(b)
            assert abs(err["LUT"]) < 0.05
            assert abs(err["FF"]) < 0.08

    def test_linear_scaling_claim(self):
        assert ResourceModel().scaling_is_roughly_linear()

    def test_extrapolation_monotone(self):
        model = ResourceModel()
        estimates = [model.estimate(b).lut for b in (8, 16, 32, 64)]
        assert estimates == sorted(estimates)

    def test_bad_width_rejected(self):
        model = ResourceModel()
        with pytest.raises(ConfigurationError):
            model.estimate(7)
        with pytest.raises(ConfigurationError):
            model.relative_error(64)

    def test_report_renders(self):
        text = ResourceModel().model_report()
        assert "LUTRAM" in text and "paper" in text


class TestLabelGenerator:
    def test_bank_size_matches_paper(self):
        gen = LabelGenerator(8)
        assert gen.n_cells == 128 * 4

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            LabelGenerator(3)

    def test_demand_accounting(self):
        gen = LabelGenerator(8, seed=1)
        gen.fresh_pair(0)
        gen.fresh_pair(0)
        gen.fresh_pair(5)
        stats = gen.stats(total_cycles=10)
        assert stats.bits_demanded == 3 * 128
        assert stats.peak_bits_per_cycle == 256
