"""Property suite for the multi-tenant core ring: credit conservation,
no starvation, and Jain fairness over hypothesis-generated tenant mixes.

These are the contracts ``BENCH_ring.json`` and the serving layer's
``TenantScheduler`` both lean on; the simulation shares its
``CreditAccount``/``WeightedRefiller`` primitives with the live
scheduler, so what shrinks here is what holds there.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.ring import (
    CoreRing,
    CreditAccount,
    RingConfig,
    TenantSpec,
    WeightedRefiller,
    jain_index,
)
from repro.errors import ConfigurationError

WEIGHTS = st.sampled_from([0.5, 1.0, 2.0, 4.0])
TENANT_MIXES = st.lists(
    st.tuples(WEIGHTS, st.integers(1, 3)), min_size=2, max_size=5
).map(
    lambda mix: [
        TenantSpec(f"t{i}", weight=w, max_inflight=inflight, queue_depth=8)
        for i, (w, inflight) in enumerate(mix)
    ]
)
RING_CONFIGS = st.builds(
    RingConfig,
    n_cores=st.integers(1, 4),
    service_cycles=st.sampled_from([2, 4, 8]),
    credit_cap=st.integers(1, 4),
    refill_period=st.integers(1, 4),
)


def _saturate(ring: CoreRing) -> None:
    """Top up every tenant's backlog to its bound (sheds are fine)."""
    for spec in ring.specs:
        while ring.backlog(spec.tenant) < spec.queue_depth:
            if not ring.submit(spec.tenant):
                break


# ----------------------------------------------------------------------
# credit conservation
# ----------------------------------------------------------------------
@given(tenants=TENANT_MIXES, config=RING_CONFIGS, data=st.data())
@settings(max_examples=25, deadline=None)
def test_credits_conserved_under_arbitrary_interleavings(tenants, config, data):
    """minted == spent + held for every account, at every audit point,
    whatever the submit/step interleaving."""
    ring = CoreRing(tenants, config)
    names = [s.tenant for s in tenants]
    for _ in range(data.draw(st.integers(5, 30), label="ops")):
        if data.draw(st.booleans(), label="submit?"):
            ring.submit(data.draw(st.sampled_from(names), label="tenant"))
        ring.run(data.draw(st.integers(0, 10), label="cycles"))
        ring.check_invariants()
    ring.run_until_drained()
    ring.check_invariants()
    for acct in ring.accounts.values():
        assert acct.minted == acct.spent + acct.credits
        assert acct.inflight == 0


@given(tenants=TENANT_MIXES, config=RING_CONFIGS)
@settings(max_examples=25, deadline=None)
def test_drained_ring_completes_everything_admitted(tenants, config):
    ring = CoreRing(tenants, config)
    _saturate(ring)
    admitted = ring.total_outstanding
    ring.run_until_drained()
    assert ring.total_outstanding == 0
    assert ring.completed == admitted == ring.injected


# ----------------------------------------------------------------------
# no starvation
# ----------------------------------------------------------------------
@given(tenants=TENANT_MIXES, config=RING_CONFIGS)
@settings(max_examples=15, deadline=None)
def test_no_tenant_starves_within_the_bound(tenants, config):
    """At saturation every tenant completes work in each
    ``starvation_bound()`` window — the bound is derived from the
    scheduler's own refill/drain/travel guarantees, so exceeding it is
    starvation, not queueing."""
    ring = CoreRing(tenants, config)
    bound = ring.starvation_bound()
    _saturate(ring)
    ring.run(bound)  # warm-up: first window may start from cold credits
    for _ in range(3):
        before = dict(ring.served)
        for _ in range(bound):
            ring.step()
            _saturate(ring)
        for spec in ring.specs:
            assert ring.served[spec.tenant] > before[spec.tenant], (
                f"{spec.tenant} starved: no progress in {bound} cycles "
                f"(weights {[s.weight for s in ring.specs]})"
            )
    ring.check_invariants()


#: Falsifying examples the property above actually found, pinned so CI
#: (which has no local hypothesis database) replays every bug forever:
#: slot monopoly (the freed-slot ping-pong anti-hogging fixed), phase
#: aliasing (a completion schedule that never lands on an occupied slot
#: phase, fixed by oldest-first reservations), and WRR priority banking
#: (a tenant capped through warm-up storing entitlement for a monopoly
#: burst, fixed by freezing ineligible accounts).
STARVATION_REGRESSIONS = [
    pytest.param(
        [TenantSpec(f"t{i}", max_inflight=1, queue_depth=8) for i in range(2)],
        RingConfig(n_cores=1, service_cycles=1, credit_cap=1, refill_period=1),
        id="slot-monopoly",
    ),
    pytest.param(
        [TenantSpec(f"t{i}", weight=0.5, max_inflight=1, queue_depth=8)
         for i in range(4)],
        RingConfig(n_cores=1, service_cycles=4, credit_cap=1, refill_period=1),
        id="phase-aliasing",
    ),
    pytest.param(
        [TenantSpec("t0", weight=0.5, max_inflight=1, queue_depth=8),
         TenantSpec("t1", weight=4.0, max_inflight=2, queue_depth=8)],
        RingConfig(n_cores=1, service_cycles=2, credit_cap=1, refill_period=3),
        id="wrr-priority-banking",
    ),
]


@pytest.mark.parametrize("tenants, config", STARVATION_REGRESSIONS)
def test_starvation_regressions_stay_fixed(tenants, config):
    """Each pinned counterexample runs the exact window protocol the
    property uses (including the idle warm-up, which is what lets the
    priority-banking attractor form)."""
    ring = CoreRing(tenants, config)
    bound = ring.starvation_bound()
    _saturate(ring)
    ring.run(bound)
    for _ in range(3):
        before = dict(ring.served)
        for _ in range(bound):
            ring.step()
            _saturate(ring)
        for spec in ring.specs:
            assert ring.served[spec.tenant] > before[spec.tenant], (
                f"{spec.tenant} starved in a pinned regression config"
            )
    ring.check_invariants()


# ----------------------------------------------------------------------
# fairness
# ----------------------------------------------------------------------
@given(
    n_tenants=st.integers(2, 6),
    config=RING_CONFIGS,
)
@settings(max_examples=15, deadline=None)
def test_equal_weights_reach_jain_090(n_tenants, config):
    tenants = [
        TenantSpec(f"t{i}", weight=1.0, max_inflight=2, queue_depth=8)
        for i in range(n_tenants)
    ]
    ring = CoreRing(tenants, config)
    for _ in range(40 * ring.starvation_bound() // 10):
        ring.step()
        _saturate(ring)
    ring.run_until_drained()
    assert ring.jain_fairness() >= 0.9, ring.snapshot()


def test_weighted_fairness_tracks_the_weights():
    """When credits are the bottleneck (refill rate below core service
    rate), 2:1 weights must show up as roughly 2:1 service — and the
    weight-normalized Jain index must still read fair.

    The config is pinned credit-bound on purpose: with credits abundant
    every backlogged tenant holds one whenever a slot passes, slots
    round-robin, and weights deliberately have nothing to bite on.
    """
    tenants = [
        TenantSpec("heavy", weight=2.0, max_inflight=3, queue_depth=8),
        TenantSpec("light", weight=1.0, max_inflight=3, queue_depth=8),
    ]
    # service rate 2 cores / 2 cycles = 1 work/cycle; refill rate
    # 1 credit / 4 cycles — credits, not cores, gate admission
    ring = CoreRing(
        tenants,
        RingConfig(n_cores=2, service_cycles=2, credit_cap=2, refill_period=4),
    )
    for _ in range(4000):
        ring.step()
        _saturate(ring)
    ring.run_until_drained()
    ratio = ring.served["heavy"] / ring.served["light"]
    assert 1.5 <= ratio <= 2.5, ring.snapshot()
    assert ring.jain_fairness(weighted=True) >= 0.85, ring.snapshot()


def test_simulation_is_deterministic():
    """Same mix, same config -> byte-identical snapshot (the property
    BENCH_ring.json's committed numbers depend on)."""

    def run_once():
        ring = CoreRing(
            [TenantSpec(f"t{i}", weight=1.0 + (i % 2)) for i in range(4)],
            RingConfig(n_cores=2, service_cycles=4, refill_period=2),
        )
        for _ in range(500):
            ring.step()
            _saturate(ring)
        ring.run_until_drained()
        return ring.snapshot()

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# units: the primitives
# ----------------------------------------------------------------------
class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == 1.0

    def test_one_tenant_takes_everything(self):
        assert jain_index([12, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_read_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0


class TestCreditAccount:
    def test_spend_complete_roundtrip(self):
        acct = CreditAccount("a", cap=2, max_inflight=1)
        acct.spend()
        assert (acct.credits, acct.inflight) == (1, 1)
        acct.complete()
        assert acct.inflight == 0
        acct.check()

    def test_spend_without_credits_is_typed(self):
        acct = CreditAccount("a", cap=1)
        acct.spend()
        with pytest.raises(ConfigurationError, match="no credits"):
            acct.spend()

    def test_refund_at_cap_forfeits_but_balances(self):
        acct = CreditAccount("a", cap=2, max_inflight=2)
        acct.spend()
        acct.grant(1)  # back at cap while one unit is in flight
        acct.refund()  # the refunded credit has nowhere to go
        assert acct.forfeited == 1
        acct.check()

    def test_grant_clips_at_the_cap(self):
        acct = CreditAccount("a", cap=3)
        assert acct.grant(5) == 0
        acct.spend()
        assert acct.grant(5) == 1
        acct.check()


class TestWeightedRefiller:
    def test_grants_converge_to_weight_proportions(self):
        accounts = [
            CreditAccount("heavy", weight=3.0, cap=10**9),
            CreditAccount("light", weight=1.0, cap=10**9),
        ]
        for acct in accounts:  # start empty so neither account caps out
            acct.credits = acct.minted = 0
        refiller = WeightedRefiller(accounts)
        grants = {"heavy": 0, "light": 0}
        for _ in range(400):
            winner = refiller.tick()
            grants[winner.tenant] += 1
        assert grants["heavy"] == 300
        assert grants["light"] == 100

    def test_capped_accounts_are_skipped(self):
        full = CreditAccount("full", weight=100.0, cap=1)
        hungry = CreditAccount("hungry", weight=1.0, cap=4)
        hungry.spend()
        refiller = WeightedRefiller([full, hungry])
        assert refiller.tick() is hungry

    def test_all_capped_returns_none(self):
        refiller = WeightedRefiller([CreditAccount("a", cap=1)])
        assert refiller.tick() is None

    def test_capped_accounts_bank_at_most_one_round(self):
        """A tenant capped for a long stretch must not accumulate
        unbounded WRR entitlement to spend as a monopoly burst once it
        rejoins — the lockout the no-starvation property caught after a
        warm-up left one tenant sitting at its cap for hundreds of
        ticks.  With priorities clamped to the total weight, catch-up
        is bounded by two ``ceil(total / min_weight)`` rounds however
        long the gap was."""
        heavy = CreditAccount("heavy", weight=4.0, cap=1)  # starts capped
        light = CreditAccount("light", weight=0.5, cap=1)
        refiller = WeightedRefiller([heavy, light])
        for _ in range(200):
            light.spend()
            light.complete()  # stay hungry without growing in-flight
            assert refiller.tick() is light  # heavy is capped throughout
        heavy.spend()
        heavy.complete()  # heavy rejoins the rotation
        window = []
        for _ in range(18):  # two ceil(total_weight / min_weight) rounds
            for acct in (heavy, light):
                if acct.credits >= acct.cap:  # keep both competing
                    acct.spend()
                    acct.complete()
            winner = refiller.tick()
            window.append(winner.tenant)
        assert "light" in window, window


class TestRingEdges:
    def test_backpressure_sheds_instead_of_queueing(self):
        ring = CoreRing([TenantSpec("a", queue_depth=2)])
        assert ring.submit("a") and ring.submit("a")
        assert not ring.submit("a")
        assert ring.shed == 1 and ring.shed_by_tenant["a"] == 1

    def test_unknown_tenant_is_typed(self):
        ring = CoreRing([TenantSpec("a")])
        with pytest.raises(ConfigurationError, match="unknown tenant"):
            ring.submit("ghost")

    def test_duplicate_tenant_is_typed(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            CoreRing([TenantSpec("a"), TenantSpec("a")])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RingConfig(n_cores=0).validate()
        with pytest.raises(ConfigurationError):
            TenantSpec("a", weight=0.0)

    def test_saturated_ring_hits_the_acceptance_numbers(self):
        """The committed-bench configuration: 8 tenants on 4 cores at
        saturation must clear utilization >= 0.90 and Jain >= 0.9."""
        ring = CoreRing(
            [TenantSpec(f"t{i}", max_inflight=2, queue_depth=8) for i in range(8)],
            RingConfig(n_cores=4, service_cycles=16, credit_cap=4, refill_period=2),
        )
        for _ in range(20_000):
            ring.step()
            _saturate(ring)
        snap = ring.snapshot()
        assert snap["utilization"] >= 0.90, snap
        assert snap["jain"] >= 0.9, snap
