"""FSM-program (schedule) serialisation tests."""

import json

import pytest

from repro.accel.bitstream import schedule_from_json, schedule_to_json
from repro.accel.fsm import AcceleratorFSM
from repro.accel.schedule import schedule_rounds
from repro.accel.tree_mac import build_scheduled_mac
from repro.errors import ScheduleError


@pytest.fixture(scope="module")
def sched():
    return schedule_rounds(build_scheduled_mac(8), 4)


class TestRoundTrip:
    def test_json_round_trip_preserves_ops(self, sched):
        text = schedule_to_json(sched)
        reloaded = schedule_from_json(text)
        assert len(reloaded.ops) == len(sched.ops)
        assert {(o.cycle, o.core, o.round_index, o.gate_index) for o in reloaded.ops} == {
            (o.cycle, o.core, o.round_index, o.gate_index) for o in sched.ops
        }
        assert reloaded.steady_state_cycles_per_mac == sched.steady_state_cycles_per_mac

    def test_reloaded_schedule_verifies(self, sched):
        reloaded = schedule_from_json(schedule_to_json(sched))
        reloaded.verify()

    def test_reloaded_schedule_drives_the_fsm(self, sched):
        reloaded = schedule_from_json(schedule_to_json(sched))
        run = AcceleratorFSM(reloaded.circuit, seed=3).garble_rounds(4, reloaded)
        assert run.total_tables == len(reloaded.ops)

    def test_supplied_circuit_reused(self, sched):
        reloaded = schedule_from_json(schedule_to_json(sched), circuit=sched.circuit)
        assert reloaded.circuit is sched.circuit


class TestValidation:
    def test_version_checked(self, sched):
        payload = json.loads(schedule_to_json(sched))
        payload["version"] = 99
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_circuit_mismatch_rejected(self, sched):
        other = build_scheduled_mac(16)
        with pytest.raises(ScheduleError):
            schedule_from_json(schedule_to_json(sched), circuit=other)

    def test_missing_gate_rejected(self, sched):
        payload = json.loads(schedule_to_json(sched))
        payload["ops"] = payload["ops"][:-1]
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))

    def test_tampered_double_booking_rejected(self, sched):
        payload = json.loads(schedule_to_json(sched))
        # put the second op on the first op's (cycle, core) slot
        payload["ops"][1][0] = payload["ops"][0][0]
        payload["ops"][1][1] = payload["ops"][0][1]
        with pytest.raises(ScheduleError):
            schedule_from_json(json.dumps(payload))
