"""Scheduled tree-MAC circuit: structure and function."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.accel.tree_mac import (
    build_scheduled_mac,
    default_acc_width,
    seg1_cores,
    seg2_cores,
    total_cores,
)
from repro.errors import ConfigurationError


class TestCoreGeometry:
    @pytest.mark.parametrize("b,cores", [(8, 8), (16, 14), (32, 24)])
    def test_paper_core_counts(self, b, cores):
        # Table 2's "No of cores" row
        assert total_cores(b) == cores

    def test_segment_split(self):
        assert seg1_cores(8) == 4 and seg2_cores(8) == 4
        assert seg1_cores(16) == 8 and seg2_cores(16) == 6
        assert seg1_cores(32) == 16 and seg2_cores(32) == 8

    def test_unsupported_widths_rejected(self):
        for bad in (3, 6, 10, 12, 128):
            with pytest.raises(ConfigurationError):
                build_scheduled_mac(bad)

    def test_too_narrow_accumulator_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scheduled_mac(8, acc_width=10)


class TestStructure:
    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_segment1_is_exactly_3b_ops_per_core(self, b):
        # Figure 3: 2 partial products + 1 adder AND per stage, b stages
        smc = build_scheduled_mac(b)
        counts = smc.ops_by_unit()
        for m in range(seg1_cores(b)):
            assert counts[("seg1", m)] == 3 * b

    @pytest.mark.parametrize("b", [8, 16])
    def test_tree_has_b_half_minus_one_adders(self, b):
        smc = build_scheduled_mac(b)
        tree_units = {k for k in smc.ops_by_unit() if k[0] == "tree"}
        assert len(tree_units) == b // 2 - 1

    def test_segment2_ops_fit_in_slots(self, ):
        # seg2 AND count must fit the paper's core budget within one II
        for b in (8, 16, 32):
            smc = build_scheduled_mac(b)
            counts = smc.ops_by_unit()
            seg2 = sum(v for k, v in counts.items() if k[0] != "seg1")
            assert seg2 <= 3 * seg2_cores(b) * b

    def test_every_and_gate_is_tagged(self):
        smc = build_scheduled_mac(8)
        for gate in smc.netlist.gates:
            if not gate.is_free:
                assert gate.index in smc.tags

    def test_seg1_pinned_seg2_pooled(self):
        smc = build_scheduled_mac(8)
        assert smc.core_for_tag(("seg1", 2, 0, "pp_lo")) == 2
        assert smc.core_for_tag(("tree", 0, 0, 3)) is None
        assert smc.seg2_core_ids == [4, 5, 6, 7]

    def test_default_acc_width(self):
        assert default_acc_width(8, 256) == 24
        assert default_acc_width(32, 1000) == 74


class TestFunction:
    @given(
        a=st.lists(st.integers(-128, 127), min_size=3, max_size=3),
        x=st.lists(st.integers(-128, 127), min_size=3, max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_dot_product_plain(self, a, x):
        smc = build_scheduled_mac(8)
        hist = smc.circuit.run_plain(
            [to_bits(v, 8) for v in a], [to_bits(v, 8) for v in x]
        )
        assert from_bits(hist[-1], signed=True) == sum(p * q for p, q in zip(a, x))

    def test_extreme_values_including_min(self):
        smc = build_scheduled_mac(8)
        cases = [(-128, -128), (-128, 127), (127, -128), (127, 127)]
        for a, x in cases:
            hist = smc.circuit.run_plain([to_bits(a, 8)], [to_bits(x, 8)])
            assert from_bits(hist[-1], signed=True) == a * x, (a, x)

    def test_16bit_function(self):
        smc = build_scheduled_mac(16)
        a, x = -31234, 29999
        hist = smc.circuit.run_plain([to_bits(a, 16)], [to_bits(x, 16)])
        assert from_bits(hist[-1], signed=True) == a * x

    def test_matches_reference_sequential_mac(self):
        # same function as the reference circuit from repro.circuits.mac
        from repro.circuits.mac import build_sequential_mac

        ref = build_sequential_mac(8, 24)
        smc = build_scheduled_mac(8, 24)
        a_vec = [5, -9, 127, -128]
        x_vec = [-3, 44, -1, 2]
        g = [to_bits(v, 8) for v in a_vec]
        e = [to_bits(v, 8) for v in x_vec]
        ref_hist = ref.run_plain(g, e)
        smc_hist = smc.circuit.run_plain(g, e)
        assert [from_bits(h, signed=True) for h in ref_hist] == [
            from_bits(h, signed=True) for h in smc_hist
        ]
