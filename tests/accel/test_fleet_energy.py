"""Fleet scaling (§6), energy/power-gating (§5.2), serving model tests."""

import pytest

from repro.accel.energy import energy_report
from repro.accel.fleet import (
    PAPER_EXTRA_CORES_FACTOR,
    XCVU095_LUT,
    FleetModel,
    FleetPlan,
)
from repro.accel.fsm import AcceleratorFSM
from repro.accel.maxelerator import TimingModel
from repro.accel.tree_mac import build_scheduled_mac
from repro.errors import ConfigurationError
from repro.perf.system import ServingModel, ands_per_mac


@pytest.fixture(scope="module")
def run8():
    return AcceleratorFSM(build_scheduled_mac(8), seed=21).garble_rounds(4)


class TestFleet:
    def test_at_least_four_b32_units_fit(self):
        plan = FleetModel().plan(32)
        assert plan.units >= 4
        assert plan.lut_used <= XCVU095_LUT

    def test_throughput_scales_linearly(self):
        model = FleetModel()
        one = model.plan(8, units=1)
        four = model.plan(8, units=4)
        assert four.macs_per_second == pytest.approx(4 * one.macs_per_second)
        assert four.total_cores == 4 * one.total_cores

    def test_requesting_too_many_units_rejected(self):
        model = FleetModel()
        fit = model.plan(8).units
        with pytest.raises(ConfigurationError):
            model.plan(8, units=fit + 1)

    def test_limiting_resource_identified(self):
        plan = FleetModel().plan(8)
        assert plan.limiting_resource in ("LUT", "FF", "LUTRAM")

    def test_paper_25x_claim_gap_documented(self):
        # our resource model supports ~4-20x more cores, not 25x; the
        # method exists to quantify the published claim honestly
        gap = FleetModel().paper_scaling_claim_gap(32)
        assert gap > 1.0  # the claim exceeds what Table 1's numbers allow

    def test_clients_vs_software(self):
        plan = FleetModel().plan(32, units=1)
        # one b=32 unit replaces ~1300 software cores' worth of garbling
        assert plan.clients_vs_software() > 1000

    def test_fleetplan_properties(self):
        plan = FleetPlan(8, 2, "LUT", 60000.0, 50000.0)
        assert plan.total_cores == 16
        assert 0 < plan.lut_utilisation < 1


class TestEnergy:
    def test_gating_saves_most_rng_energy(self, run8):
        report = energy_report(run8)
        # Section 5.2: most of the worst-case RNG bank is gated off
        assert report.rng_saving > 0.5

    def test_system_level_saving_positive(self, run8):
        report = energy_report(run8)
        assert 0 < report.system_saving < 1

    def test_totals_consistent(self, run8):
        report = energy_report(run8)
        assert report.total < report.total_without_gating
        assert report.total == pytest.approx(
            report.aes_energy + report.rng_energy_gated + report.memory_energy
        )

    def test_aes_energy_tracks_tables(self, run8):
        report = energy_report(run8)
        # 4 AES activations per table at unit energy
        assert report.aes_energy == 4 * run8.total_tables


class TestServingModel:
    def test_default_bottleneck_is_a_link(self):
        # at b=32 one unit garbles 2.08e6 MAC/s = ~142 Gb/s of tables:
        # the network is the bottleneck, exactly the paper's caveat
        model = ServingModel(32)
        assert model.server_bottleneck() in ("network", "pcie")

    def test_huge_network_moves_bottleneck_to_engines(self):
        # b=32 garbling emits ~1.2 Tb/s of tables; go well past that
        model = ServingModel(32, network_gbps=2000.0, pcie_gbps=2000.0)
        assert model.server_bottleneck() == "garbling"

    def test_network_threshold(self):
        model = ServingModel(32)
        threshold = model.network_threshold_gbps()
        assert ServingModel(32, network_gbps=threshold * 1.1, pcie_gbps=1e4).server_bottleneck() == "garbling"
        assert ServingModel(32, network_gbps=threshold * 0.9, pcie_gbps=1e4).server_bottleneck() == "network"

    def test_clients_vs_software_claim_near_57(self):
        assert ServingModel(32).clients_vs_software_claim() == pytest.approx(54, rel=0.07)

    def test_max_clients_scale_with_units(self):
        small = ServingModel(32, network_gbps=1e4, pcie_gbps=1e4, mac_units=1)
        big = ServingModel(32, network_gbps=1e4, pcie_gbps=1e4, mac_units=4)
        assert big.max_clients() == pytest.approx(4 * small.max_clients(), rel=0.01)

    def test_bytes_per_mac_measured_from_netlist(self):
        model = ServingModel(8)
        assert model.bytes_per_mac == 32 * ands_per_mac(8) + 16 * 16

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingModel(32, network_gbps=0)
        with pytest.raises(ConfigurationError):
            ServingModel(32, mac_units=0)

    def test_report_renders(self):
        text = ServingModel(8).format_report()
        assert "bottleneck" in text and "clients" in text


class TestTimingConsistency:
    def test_fleet_and_serving_agree(self):
        plan = FleetModel().plan(32, units=2)
        serving = ServingModel(32, mac_units=2, network_gbps=1e5, pcie_gbps=1e5)
        assert serving.rates().garbling == pytest.approx(plan.macs_per_second)

    def test_engine_rate_matches_table2(self):
        assert ServingModel(8).rates().garbling == TimingModel(8).macs_per_second
