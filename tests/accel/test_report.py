"""Schedule report renderers."""

import pytest

from repro.accel.report import GLYPHS, gantt, unit_census
from repro.accel.schedule import schedule_rounds
from repro.accel.tree_mac import build_scheduled_mac


@pytest.fixture(scope="module")
def sched():
    return schedule_rounds(build_scheduled_mac(8), 5)


class TestGantt:
    def test_renders_all_cores(self, sched):
        text = gantt(sched, width=48)
        for core in range(8):
            assert f"core  {core}" in text

    def test_segment1_rows_are_saturated(self, sched):
        text = gantt(sched, width=48)
        rows = [l for l in text.splitlines() if "[s1]" in l]
        for row in rows:
            body = row.split("|")[1]
            assert "." not in body  # zero idle cycles on segment-1 cores

    def test_segment_labels(self, sched):
        text = gantt(sched, width=24)
        assert "[s1]" in text and "[s2]" in text

    def test_window_clipped_to_schedule(self, sched):
        text = gantt(sched, start=sched.total_cycles - 10, width=1000)
        assert str(sched.total_cycles - 1) in text.splitlines()[0]

    def test_every_glyph_defined(self, sched):
        text = gantt(sched, width=sched.total_cycles)
        assert "?" not in text


class TestUnitCensus:
    def test_census_totals(self, sched):
        text = unit_census(sched)
        n_ands = sum(1 for g in sched.circuit.netlist.gates if not g.is_free)
        assert str(n_ands) in text

    def test_all_units_listed(self, sched):
        text = unit_census(sched)
        for name in ("seg1", "tree", "acc", "aneg", "xneg"):
            assert name in text


def test_glyph_table_complete():
    assert set(GLYPHS) == {"pp_lo", "pp_hi", "add", "tree", "aneg", "xneg", "acc"}
