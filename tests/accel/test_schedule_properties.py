"""Hypothesis property tests over the FSM scheduler's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.schedule import schedule_rounds
from repro.accel.tree_mac import CYCLES_PER_STAGE, build_scheduled_mac

# small search space: circuits are rebuilt per example
WIDTHS = st.sampled_from([4, 8])
ROUNDS = st.integers(3, 5)
GUARDS = st.integers(1, 10)


@given(b=WIDTHS, rounds=ROUNDS)
@settings(max_examples=10, deadline=None)
def test_steady_state_always_3b(b, rounds):
    schedule = schedule_rounds(build_scheduled_mac(b), rounds)
    assert schedule.steady_state_cycles_per_mac == CYCLES_PER_STAGE * b


@given(b=WIDTHS, rounds=ROUNDS)
@settings(max_examples=10, deadline=None)
def test_schedule_always_verifies(b, rounds):
    schedule = schedule_rounds(build_scheduled_mac(b), rounds)
    schedule.verify()


@given(b=WIDTHS, guard=GUARDS)
@settings(max_examples=10, deadline=None)
def test_accumulator_width_does_not_break_throughput(b, guard):
    # wider accumulators add segment-2 work; the paper's formula must
    # keep absorbing it (the +8 budget) for sane guard sizes
    smc = build_scheduled_mac(b, acc_width=2 * b + guard)
    schedule = schedule_rounds(smc, 4)
    assert schedule.steady_state_cycles_per_mac == CYCLES_PER_STAGE * b
    assert schedule.idle_cores() <= 2


@given(b=WIDTHS, rounds=ROUNDS, prefetch=st.integers(0, 2))
@settings(max_examples=10, deadline=None)
def test_prefetch_never_hurts_throughput(b, rounds, prefetch):
    smc = build_scheduled_mac(b)
    schedule = schedule_rounds(smc, rounds, prefetch_rounds=prefetch)
    schedule.verify()
    assert schedule.steady_state_cycles_per_mac >= CYCLES_PER_STAGE * b - 1


@given(b=WIDTHS, rounds=ROUNDS)
@settings(max_examples=6, deadline=None)
def test_every_round_emits_identical_table_count(b, rounds):
    schedule = schedule_rounds(build_scheduled_mac(b), rounds)
    per_round: dict[int, int] = {}
    for op in schedule.ops:
        per_round[op.round_index] = per_round.get(op.round_index, 0) + 1
    assert len(set(per_round.values())) == 1
