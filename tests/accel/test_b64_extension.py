"""Extension: the architecture beyond the paper's widths (b = 64).

The paper evaluates b = 8/16/32; the design generalises ("the number of
cores depends on the input bit-width and available resources").  These
tests check that every analytic and scheduled property extrapolates
cleanly to 64-bit MACs.
"""

import pytest

from repro.accel.maxelerator import TimingModel
from repro.accel.resources import ResourceModel
from repro.accel.schedule import schedule_rounds
from repro.accel.tree_mac import (
    build_scheduled_mac,
    seg1_cores,
    seg2_cores,
    total_cores,
)
from repro.bits import from_bits, to_bits


@pytest.fixture(scope="module")
def smc64():
    return build_scheduled_mac(64)


class TestGeometry:
    def test_core_formula(self):
        assert seg1_cores(64) == 32
        assert seg2_cores(64) == 14  # ceil((32 + 8) / 3)
        assert total_cores(64) == 46

    def test_timing_model(self):
        t = TimingModel(64)
        assert t.cycles_per_mac == 192
        assert t.macs_per_second == pytest.approx(200e6 / 192)

    def test_resources_extrapolate(self):
        est = ResourceModel().estimate(64)
        est32 = ResourceModel().estimate(32)
        assert 1.5 < est.lut / est32.lut < 2.5  # still ~linear


class TestStructure:
    def test_segment1_packing(self, smc64):
        counts = smc64.ops_by_unit()
        for m in range(32):
            assert counts[("seg1", m)] == 3 * 64

    def test_seg2_fits_budget(self, smc64):
        counts = smc64.ops_by_unit()
        seg2 = sum(v for k, v in counts.items() if k[0] != "seg1")
        assert seg2 <= 3 * seg2_cores(64) * 64

    def test_function(self, smc64):
        a, x = -(2**60), 2**55 + 12345
        hist = smc64.circuit.run_plain([to_bits(a, 64)], [to_bits(x, 64)])
        assert from_bits(hist[-1], signed=True) == a * x


class TestSchedule:
    def test_steady_state_is_192_cycles(self, smc64):
        schedule = schedule_rounds(smc64, 4)
        schedule.verify()
        assert schedule.steady_state_cycles_per_mac == 192

    def test_idle_bound_holds(self, smc64):
        schedule = schedule_rounds(smc64, 4)
        assert schedule.idle_cores() <= 2
        assert schedule.utilization() > 0.9
