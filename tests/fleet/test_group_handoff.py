"""GatewayGroup: lifecycle, kill/drain handoff, lease-fenced adoption.

The tentpole scenarios: a client mid-query when its gateway dies (or
drains) fails over to a peer, which adopts the session from the shared
store — lease steal, checkpoint rewind to the client's acked round,
batched restart stream — and the query finishes bit-identical with the
session garbled exactly once.
"""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fixedpoint import Q8_4
from repro.fleet import GatewayGroup
from repro.host import AnalyticsClient, CloudServer
from repro.net import RemoteAnalyticsClient
from repro.recover import BackoffPolicy
from repro.serve import ServingConfig
from repro.telemetry import MetricsRegistry

MODEL = np.array([
    [0.5, -1.0, 0.25, 0.75, -0.5, 1.0, 0.125, -0.25],
    [1.0, 1.0, -1.5, 0.5, 0.75, -0.75, 2.0, 0.25],
])
X = np.array([0.5, -0.25, 1.0, 0.75, 0.125, -0.5, 0.25, 1.0])
RECV_TIMEOUT = 20.0


def fresh_server():
    return CloudServer(
        MODEL, Q8_4, pool_size=0, seed=13, auto_refill=False,
        telemetry=MetricsRegistry(),
    )


def make_group(server, n=3, lease_ttl_s=0.4):
    cfg = ServingConfig(
        workers=2,
        queue_depth=8,
        refill=False,
        recv_timeout_s=RECV_TIMEOUT,
        drain_timeout_s=10.0,
        lease_ttl_s=lease_ttl_s,
        resume_batch_window_s=0.01,
        retry_after_s=0.02,
    )
    return GatewayGroup(server, n_gateways=n, config=cfg)


def client_for(group, start_at=0):
    dialer = group.loopback_dialer(
        name="client", recv_timeout_s=RECV_TIMEOUT,
        telemetry=group.server.telemetry, start_at=start_at,
    )
    return RemoteAnalyticsClient(
        dial=dialer,
        telemetry=group.server.telemetry,
        backoff=BackoffPolicy(base_s=0.02, cap_s=0.1, max_attempts=12, seed=3),
    )


def run_handoff(group, fault, ot_mode="per_round", row=1):
    """Start a query, fire ``fault(sid)`` at the first committed
    round-boundary checkpoint, and return the client plus its result.

    The trigger hooks the store's two commit paths (admission ``put``,
    boundary ``cas_advance``) rather than polling: in ``upfront`` OT
    mode every round evaluates within ~1 ms once the single OT flight
    lands, so a polling loop usually misses the mid-query window.
    """
    client = client_for(group)
    result = {}
    boundary = threading.Event()
    hit = {}
    orig_put, orig_cas = group.store.put, group.store.cas_advance

    def observe(cp):
        if not boundary.is_set() and 1 <= cp.next_round < cp.rounds:
            hit["sid"] = cp.session_id
            boundary.set()

    def hooked_put(cp):
        orig_put(cp)
        observe(cp)

    def hooked_cas(cp, *args, **kwargs):
        orig_cas(cp, *args, **kwargs)
        observe(cp)

    group.store.put, group.store.cas_advance = hooked_put, hooked_cas

    def query():
        try:
            result["got"] = client.query_row(row, X, ot_mode=ot_mode)
        except BaseException as exc:  # surfaced to the assertion below
            result["err"] = exc

    t = threading.Thread(target=query)
    t.start()
    try:
        if not boundary.wait(timeout=15.0):
            pytest.fail("no round-boundary checkpoint appeared")
        fault(hit["sid"], client)
    finally:
        group.store.put, group.store.cas_advance = orig_put, orig_cas
        t.join(timeout=60.0)
    assert not t.is_alive(), "query never finished after the fault"
    if "err" in result:
        raise result["err"]
    return client, result["got"]


class TestGroupLifecycle:
    def test_needs_at_least_one_member(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            GatewayGroup(fresh_server(), n_gateways=0)

    def test_members_share_the_store_and_get_distinct_ids(self):
        group = make_group(fresh_server())
        assert len(group) == 3
        ids = [gw.gateway_id for gw in group.gateways]
        assert ids == ["gw0", "gw1", "gw2"]
        assert all(gw.store is group.store for gw in group.gateways)

    def test_bind_start_exposes_addresses_and_stop_is_idempotent(self):
        group = make_group(fresh_server(), n=2)
        group.start(bind=True)
        try:
            addrs = group.addresses
            assert len(addrs) == 2
            assert all(port > 0 for _, port in addrs)
        finally:
            group.stop()
            group.stop()  # killed/stopped members tolerate a second stop

    def test_killed_member_refuses_adoption_and_dialer_rotates(self):
        server = fresh_server()
        group = make_group(server).start()
        try:
            group.kill(0)
            client = client_for(group, start_at=0)
            try:
                # the dialer walked past the dead member transparently
                assert client.session_id
                assert client.query_row(0, X) == pytest.approx(
                    float(MODEL[0] @ X), abs=1e-12
                )
            finally:
                client.close()
            assert server.telemetry.counter("fleet.dialer.failures").value >= 1
        finally:
            group.stop()


class TestKillHandoff:
    @pytest.mark.parametrize("ot_mode", ["per_round", "upfront"])
    def test_kill_mid_query_migrates_bit_exact(self, ot_mode):
        """A gateway crash mid-stream: the client fails over, a peer
        steals the expired lease, and the result is bit-identical to the
        uninterrupted reference with zero re-garbled rounds."""
        server = fresh_server()
        # uninterrupted reference, garbled independently
        reference = AnalyticsClient(server).query_row(1, X, ot_mode=ot_mode)
        garbled0 = server.stats.runs_garbled
        group = make_group(server).start()
        try:
            def fault(sid, client):
                transport = client.endpoint.transport
                group.kill(0)
                # the socketpair still holds buffered frames the dead
                # gateway wrote; drop them so the break is observable
                transport.close()

            client, got = run_handoff(group, fault, ot_mode=ot_mode)
            try:
                assert got == reference  # bit-for-bit, not approx
                # the migrated session was garbled exactly once
                assert server.stats.runs_garbled == garbled0 + 1
                tm = server.telemetry
                assert tm.counter("gateway.resumes.restart").value == 1
                assert tm.counter("recover.lease.steals").value == 1
                # the answering gateway provably was not the dead one
                assert client.endpoint.last_gateway_id in ("gw1", "gw2")
            finally:
                client.close()
        finally:
            group.stop()

    def test_hard_kill_abandons_sockets_and_still_migrates(self):
        """Satellite: the hard-kill path skips every cooperative
        teardown hook (no channel.kill, no joins, no serving stop) yet
        the client still fails over through the store and finishes
        bit-identical — the thread fleet's closest stand-in for the
        process tier's SIGKILL."""
        server = fresh_server()
        reference = AnalyticsClient(server).query_row(1, X)
        garbled0 = server.stats.runs_garbled
        group = make_group(server).start()
        try:
            def fault(sid, client):
                transport = client.endpoint.transport
                group.kill(0, hard=True)
                transport.close()

            client, got = run_handoff(group, fault)
            try:
                assert got == reference
                assert server.stats.runs_garbled == garbled0 + 1
                tm = server.telemetry
                assert tm.counter("gateway.hard_kills").value == 1
                assert tm.counter("gateway.resumes.restart").value == 1
                assert tm.counter("recover.lease.steals").value == 1
                assert client.endpoint.last_gateway_id in ("gw1", "gw2")
            finally:
                client.close()
        finally:
            group.stop()

    def test_live_lease_sheds_then_expiry_steals(self):
        """Satellite (gateway layer): while the dead owner's lease is
        still live a peer's adoption is denied — a typed shed, served
        rounds untouched — and only after expiry does exactly one peer
        steal and finish.  The loser's serve is a no-op."""
        server = fresh_server()
        group = make_group(server, lease_ttl_s=0.6).start()
        try:
            committed_at_kill = {}

            def fault(sid, client):
                transport = client.endpoint.transport
                group.kill(0)
                transport.close()
                committed_at_kill["round"] = group.store.committed_round(sid)

            client, got = run_handoff(group, fault)
            try:
                assert got == pytest.approx(float(MODEL[1] @ X), abs=1e-12)
                tm = server.telemetry
                # at least one adoption bounced off the live lease...
                assert tm.counter("recover.lease.denied").value >= 1
                # ...and the denial did not advance the session
                assert committed_at_kill["round"] is not None
                # exactly one steal won the session
                assert tm.counter("recover.lease.steals").value == 1
                assert tm.counter("gateway.resumes.restart").value == 1
                assert server.stats.runs_garbled == 1
            finally:
                client.close()
        finally:
            group.stop()


class TestDrainHandoff:
    def test_drain_hands_off_without_a_steal(self):
        """A graceful drain releases the session's lease, so the
        successor adopts epoch-clean — no steal, no re-garble."""
        server = fresh_server()
        group = make_group(server).start()
        try:
            def fault(sid, client):
                assert group.drain(0, timeout_s=10.0) is True

            client, got = run_handoff(group, fault)
            try:
                assert got == pytest.approx(float(MODEL[1] @ X), abs=1e-12)
                tm = server.telemetry
                assert tm.counter("recover.lease.steals").value == 0
                assert tm.counter("gateway.resumes.restart").value == 1
                assert tm.counter("gateway.sessions.drained").value >= 1
                assert server.stats.runs_garbled == 1
            finally:
                client.close()
        finally:
            group.stop()
