"""ProcessFleet: real gateway subprocesses sharing one store file.

The thread-fleet handoff suite proves the lease/CAS/checkpoint design;
these tests prove the same invariants survive real process boundaries:
TCP transports, SIGKILL (counters lost, leases leaked, maybe a torn
append), SIGTERM (drain + compact + clean exit), heartbeat-based silent
death detection, and cumulative garble accounting across respawns.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import ProcessFleet
from repro.fleet.procs import derive_model
from repro.net import RemoteAnalyticsClient
from repro.recover import BackoffPolicy
from repro.serve import ServingConfig

RECV_TIMEOUT = 20.0
X6 = np.array([0.5, -0.25, 1.0, 0.75, 0.125, -0.5])


def fleet_config(lease_ttl_s=0.3):
    return ServingConfig(
        workers=1,
        queue_depth=4,
        refill=False,
        recv_timeout_s=RECV_TIMEOUT,
        drain_timeout_s=10.0,
        lease_ttl_s=lease_ttl_s,
        resume_batch_window_s=0.01,
        retry_after_s=0.02,
    )


def make_fleet(n=2, seed=7, rounds=6, **kwargs):
    return ProcessFleet(
        n_members=n, seed=seed, rows=2, rounds=rounds,
        config=fleet_config(), **kwargs,
    )


def make_client(fleet, start_at=0, seed=3):
    return RemoteAnalyticsClient(
        dial=fleet.dialer(recv_timeout_s=RECV_TIMEOUT, start_at=start_at),
        backoff=BackoffPolicy(base_s=0.02, cap_s=0.2, max_attempts=12,
                              seed=seed),
    )


def run_query_with_fault(fleet, client, fire, row=1, x=X6,
                         after_committed=1, deadline_s=30.0):
    """Run ``query_row`` on a thread; call ``fire()`` once the shared
    store shows a committed round >= ``after_committed`` for the
    session.  Frame counts are the wrong trigger across processes: with
    per-round OT the client receives OT flights *before* the member's
    admission checkpoint lands, so a kill gated on ``recv_seq`` can
    strand the session lease-held but checkpoint-less.  The store is
    the one surface both sides agree on — the same condition the
    thread-fleet suite hooks in-process.  Returns (result, fired)."""
    result = {}
    sid = client.session_id
    audit = fleet.open_store()

    def query():
        try:
            result["got"] = client.query_row(row, x, ot_mode="per_round")
        except BaseException as exc:
            result["err"] = exc

    t = threading.Thread(target=query)
    t.start()
    fired = False
    deadline = time.monotonic() + deadline_s
    try:
        while t.is_alive() and time.monotonic() < deadline:
            committed = audit.committed_round(sid)
            if committed is not None and committed >= after_committed:
                fire()
                fired = True
                break
            time.sleep(0.0005)
    finally:
        audit.close()
    t.join(timeout=deadline_s)
    assert not t.is_alive(), "query never finished after the fault"
    if "err" in result:
        raise result["err"]
    return result["got"], fired


class TestFleetLifecycle:
    def test_needs_at_least_one_member(self):
        with pytest.raises(ConfigurationError, match="at least one member"):
            ProcessFleet(n_members=0)

    def test_model_is_shared_and_deterministic(self):
        fleet = ProcessFleet(n_members=1, seed=11, rows=3, rounds=4)
        assert np.array_equal(fleet.model, derive_model(11, 3, 4))
        # snapped to the Q8.4 grid so results compare bit-exact
        assert np.array_equal(fleet.model, np.round(fleet.model * 16) / 16)

    def test_serves_queries_over_tcp_and_reports_counters(self):
        with make_fleet(n=2, rounds=3) as fleet:
            assert all(port > 0 for _, port in fleet.addresses)
            x = X6[:3]
            client = make_client(fleet, start_at=0)
            try:
                got = client.query_row(1, x)
                assert got == fleet.expected(1, x)  # bit-exact
            finally:
                client.close()
            # the worker shipped its garble counter over the results pipe
            deadline = time.monotonic() + 5.0
            while fleet.total_runs_garbled() < 1:
                assert time.monotonic() < deadline, "stats never arrived"
                time.sleep(0.01)
            assert fleet.runs_garbled_by_member() == [1, 0]
            # both members heartbeat, nobody looks silently dead
            assert fleet.detect_silent_deaths(max_age_s=5.0) == []

    def test_sigterm_stop_exits_clean_and_removes_tmpdir(self):
        fleet = make_fleet(n=2, rounds=3).start()
        tmpdir = fleet.dir
        fleet.stop()
        import os
        assert not os.path.exists(tmpdir)
        assert all(m.process.exitcode == 0 for m in fleet.members)


class TestProcessFaults:
    def test_sigkill_mid_query_fails_over_bit_exact(self):
        """The tentpole invariant at the process tier: SIGKILL of the
        serving member mid-stream, the client fails over over TCP, a
        peer steals the leaked lease and adopts from the shared file —
        bit-identical result, zero re-garbled rounds (proved by the
        per-process counters), and the store file afterwards is clean
        of torn tails."""
        with make_fleet(n=2, rounds=6) as fleet:
            client = make_client(fleet, start_at=0)
            try:
                got, fired = run_query_with_fault(
                    fleet, client, fire=lambda: fleet.kill(0),
                )
                assert fired, "query finished before the kill window"
                assert got == fleet.expected(1, X6)
                assert not fleet.alive(0)
            finally:
                client.close()
            # zero re-garbles: the victim garbled once (reported before
            # it died), the adopter streamed from the checkpoint only
            assert fleet.total_runs_garbled() == 1
            assert fleet.member_runs_garbled(1) == 0
            # session completed + BYE: the ledger balances (bounded wait
            # — the BYE tombstone is written by the adopter's thread)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                audit = fleet.open_store()
                if (audit.get(client.session_id) is None
                        and audit.lease_holder(client.session_id) is None):
                    break
                time.sleep(0.05)
            audit = fleet.open_store()
            assert audit.torn_tail_recovered == 0
            assert audit.get(client.session_id) is None
            assert audit.lease_holder(client.session_id) is None

    def test_sigterm_drains_and_peer_resumes_without_steal(self):
        """SIGTERM is the graceful surface: the member checkpoints its
        in-flight session, releases the lease, compacts, and exits 0;
        the client resumes on the peer with no steal needed."""
        with make_fleet(n=2, rounds=6) as fleet:
            client = make_client(fleet, start_at=0)
            try:
                got, fired = run_query_with_fault(
                    fleet, client,
                    fire=lambda: fleet.terminate(0, timeout_s=20.0),
                )
                assert fired, "query finished before the drain window"
                assert got == fleet.expected(1, X6)
            finally:
                client.close()
            assert not fleet.alive(0)
            assert fleet.members[0].process.exitcode == 0
            assert fleet.members[0].stopped_clean is True
            assert fleet.total_runs_garbled() == 1

    def test_heartbeat_detects_a_dead_member(self):
        with make_fleet(n=2, rounds=3,
                        heartbeat_interval_s=0.02) as fleet:
            assert fleet.detect_silent_deaths(max_age_s=5.0) == []
            fleet.kill(0)
            # the frozen heartbeat file goes stale; detection does not
            # consult the pid table
            time.sleep(0.3)
            assert fleet.detect_silent_deaths(max_age_s=0.2) == [0]

    def test_respawn_folds_counters_across_generations(self):
        with make_fleet(n=2, rounds=3) as fleet:
            x = X6[:3]
            c1 = make_client(fleet, start_at=0)
            try:
                assert c1.query_row(0, x) == fleet.expected(0, x)
            finally:
                c1.close()
            deadline = time.monotonic() + 5.0
            while fleet.member_runs_garbled(0) < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            fleet.kill(0)
            fleet.respawn(0)
            assert fleet.alive(0)
            c2 = make_client(fleet, start_at=0)
            try:
                assert c2.query_row(1, x) == fleet.expected(1, x)
            finally:
                c2.close()
            deadline = time.monotonic() + 5.0
            while fleet.member_runs_garbled(0) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            # generation 1's garble survived the respawn in the base
            assert fleet.member_runs_garbled(0) == 2

    def test_respawn_requires_a_dead_member(self):
        with make_fleet(n=1, rounds=3) as fleet:
            with pytest.raises(ConfigurationError, match="still alive"):
                fleet.respawn(0)


class TestPlacement:
    def test_client_pins_to_the_placed_owner(self):
        """After the handshake the dialer cursor sits on the session's
        rendezvous owner, so reconnects dial the owner first."""
        with make_fleet(n=3, rounds=3) as fleet:
            dialer = fleet.dialer(recv_timeout_s=RECV_TIMEOUT, start_at=1)
            client = RemoteAnalyticsClient(
                dial=dialer,
                backoff=BackoffPolicy(base_s=0.02, cap_s=0.2,
                                      max_attempts=12, seed=5),
            )
            try:
                assert client.session_id
                assert dialer.cursor == fleet.place(client.session_id)
            finally:
                client.close()

    def test_live_only_placement_moves_only_dead_members_keys(self):
        with make_fleet(n=3, rounds=3) as fleet:
            keys = [f"session-{i}" for i in range(60)]
            before = {k: fleet.place(k) for k in keys}
            fleet.kill(1)
            for k in keys:
                after = fleet.place(k, live_only=True)
                if before[k] != 1:
                    assert after == before[k], k
                else:
                    assert after in (0, 2), k
