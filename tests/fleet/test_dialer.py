"""FailoverDialer: rotation, stickiness, penalties, exhaustion,
rendezvous placement."""

import socket

import pytest

from repro.errors import ConfigurationError, WireError
from repro.fleet import FailoverDialer, rendezvous_index
from repro.telemetry import MetricsRegistry


class _FakeTransport:
    def __init__(self, label):
        self.label = label


def ok(label):
    def dial():
        return _FakeTransport(label)
    return dial


def dead(exc=None):
    def dial():
        raise exc if exc is not None else WireError("gateway down")
    return dial


class TestFailoverDialer:
    def test_needs_at_least_one_gateway(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FailoverDialer([])

    def test_sticky_on_success(self):
        dialer = FailoverDialer([ok("a"), ok("b")])
        assert dialer().label == "a"
        assert dialer().label == "a"
        assert dialer.cursor == 0

    def test_rotates_past_a_dead_gateway(self):
        tm = MetricsRegistry()
        dialer = FailoverDialer([dead(), ok("b"), ok("c")], telemetry=tm)
        assert dialer().label == "b"
        # the cursor moved: the healthy member keeps this client
        assert dialer.cursor == 1
        assert dialer().label == "b"
        assert tm.counter("fleet.dialer.failures").value == 1
        assert tm.counter("fleet.dialer.dials").value == 2

    def test_oserror_also_rotates(self):
        dialer = FailoverDialer([dead(ConnectionRefusedError()), ok("b")])
        assert dialer().label == "b"

    def test_penalize_moves_off_the_current_gateway(self):
        tm = MetricsRegistry()
        dialer = FailoverDialer([ok("a"), ok("b"), ok("c")], telemetry=tm)
        assert dialer().label == "a"
        dialer.penalize()  # e.g. gateway a answered net.retry_after
        assert dialer().label == "b"
        dialer.penalize()
        dialer.penalize()  # wraps back around
        assert dialer().label == "a"
        assert tm.counter("fleet.dialer.penalties").value == 3

    def test_all_dead_raises_wire_error(self):
        dialer = FailoverDialer([dead(), dead(), dead()])
        with pytest.raises(WireError, match="all 3 gateways refused"):
            dialer()

    def test_start_at_offsets_the_cursor(self):
        dialer = FailoverDialer([ok("a"), ok("b"), ok("c")], start_at=2)
        assert dialer().label == "c"

    def test_member_ids_must_match_dials(self):
        with pytest.raises(ConfigurationError, match="member_ids"):
            FailoverDialer([ok("a"), ok("b")], member_ids=["m0"])

    def test_pin_moves_the_cursor_to_the_placed_owner(self):
        tm = MetricsRegistry()
        dialer = FailoverDialer(
            [ok("a"), ok("b"), ok("c")],
            member_ids=["m0", "m1", "m2"],
            place_sessions=True,
            telemetry=tm,
        )
        idx = dialer.pin("session-42")
        assert idx == rendezvous_index("session-42", ["m0", "m1", "m2"])
        assert dialer.cursor == idx
        assert tm.counter("fleet.dialer.pins").value == 1
        # placement is pure: pinning the same session is a no-op move
        assert dialer.pin("session-42") == idx

    def test_from_addresses_dials_a_listener(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            dialer = FailoverDialer.from_addresses(
                [listener.getsockname()], name="t", recv_timeout_s=1.0
            )
            transport = dialer()
            try:
                accepted, _ = listener.accept()
                accepted.close()
            finally:
                transport.close()
        finally:
            listener.close()


class TestRendezvousPlacement:
    def test_deterministic_and_in_range(self):
        members = ["m0", "m1", "m2", "m3"]
        for key in (f"s-{i}" for i in range(50)):
            idx = rendezvous_index(key, members)
            assert 0 <= idx < 4
            assert idx == rendezvous_index(key, members)

    def test_spreads_keys_over_members(self):
        members = ["m0", "m1", "m2", "m3"]
        placed = {rendezvous_index(f"s-{i}", members) for i in range(200)}
        assert placed == {0, 1, 2, 3}

    def test_removing_a_member_only_replaces_its_keys(self):
        """The consistent-hashing property: membership churn moves only
        the dead member's sessions; everyone else stays put."""
        members = [f"m{i}" for i in range(4)]
        keys = [f"session-{i}" for i in range(300)]
        before = {k: rendezvous_index(k, members) for k in keys}
        survivors = members[:2] + members[3:]  # m2 died
        for k in keys:
            after_member = survivors[rendezvous_index(k, survivors)]
            if members[before[k]] != "m2":
                assert after_member == members[before[k]], k

    def test_empty_membership_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one member"):
            rendezvous_index("s", [])
