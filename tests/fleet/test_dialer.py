"""FailoverDialer: rotation, stickiness, penalties, exhaustion."""

import socket

import pytest

from repro.errors import ConfigurationError, WireError
from repro.fleet import FailoverDialer
from repro.telemetry import MetricsRegistry


class _FakeTransport:
    def __init__(self, label):
        self.label = label


def ok(label):
    def dial():
        return _FakeTransport(label)
    return dial


def dead(exc=None):
    def dial():
        raise exc if exc is not None else WireError("gateway down")
    return dial


class TestFailoverDialer:
    def test_needs_at_least_one_gateway(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            FailoverDialer([])

    def test_sticky_on_success(self):
        dialer = FailoverDialer([ok("a"), ok("b")])
        assert dialer().label == "a"
        assert dialer().label == "a"
        assert dialer.cursor == 0

    def test_rotates_past_a_dead_gateway(self):
        tm = MetricsRegistry()
        dialer = FailoverDialer([dead(), ok("b"), ok("c")], telemetry=tm)
        assert dialer().label == "b"
        # the cursor moved: the healthy member keeps this client
        assert dialer.cursor == 1
        assert dialer().label == "b"
        assert tm.counter("fleet.dialer.failures").value == 1
        assert tm.counter("fleet.dialer.dials").value == 2

    def test_oserror_also_rotates(self):
        dialer = FailoverDialer([dead(ConnectionRefusedError()), ok("b")])
        assert dialer().label == "b"

    def test_penalize_moves_off_the_current_gateway(self):
        tm = MetricsRegistry()
        dialer = FailoverDialer([ok("a"), ok("b"), ok("c")], telemetry=tm)
        assert dialer().label == "a"
        dialer.penalize()  # e.g. gateway a answered net.retry_after
        assert dialer().label == "b"
        dialer.penalize()
        dialer.penalize()  # wraps back around
        assert dialer().label == "a"
        assert tm.counter("fleet.dialer.penalties").value == 3

    def test_all_dead_raises_wire_error(self):
        dialer = FailoverDialer([dead(), dead(), dead()])
        with pytest.raises(WireError, match="all 3 gateways refused"):
            dialer()

    def test_start_at_offsets_the_cursor(self):
        dialer = FailoverDialer([ok("a"), ok("b"), ok("c")], start_at=2)
        assert dialer().label == "c"

    def test_from_addresses_dials_a_listener(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            dialer = FailoverDialer.from_addresses(
                [listener.getsockname()], name="t", recv_timeout_s=1.0
            )
            transport = dialer()
            try:
                accepted, _ = listener.accept()
                accepted.close()
            finally:
                transport.close()
        finally:
            listener.close()
