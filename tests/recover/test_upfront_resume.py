"""Upfront-OT resume: label-slice indexing across every round boundary.

In ``upfront`` OT mode the evaluator receives *all* of its input labels
in one OT before round 0 and slices per round.  A resumed stream
restarts that concatenation at ``start_round``, so both sides must
agree that slice ``k`` of the resumed OT belongs to absolute round
``start_round + k`` — an off-by-one on either side silently decodes
the wrong labels.  This property test pins the indexing for every
possible resume boundary ``r in [0, M)`` against the uninterrupted
reference, over randomized model widths and round counts, with exactly
one garbling per scenario.
"""

import random

import numpy as np
import pytest

from repro.bits import from_bits, to_bits
from repro.fixedpoint import FixedPointFormat, Q8_4
from repro.gc.channel import local_channel, run_two_party
from repro.gc.sequential_gc import SequentialEvaluator
from repro.host import CloudServer
from repro.recover import (
    EvaluatorProgress,
    SessionCheckpoint,
    checkpoint_from_run,
    serve_from_checkpoint,
)


class _Recording(EvaluatorProgress):
    """Snapshot the carried accumulator labels at every round boundary.

    ``carried[k]`` is the state-label list an evaluator re-entering at
    ``start_round=k`` must be given; ``outputs[k]`` mirrors the
    completed-round count when each snapshot was taken (sanity).
    """

    def __init__(self):
        super().__init__()
        object.__setattr__(self, "carried", {})

    def __setattr__(self, key, value):
        super().__setattr__(key, value)
        if key == "state_labels" and self.completed_rounds > 0:
            self.carried[self.completed_rounds] = list(value)


def _scenario(seed):
    """One randomized (fmt, model row, query) scenario."""
    rng = random.Random(seed)
    total_bits = rng.choice((4, 8))
    frac_bits = total_bits // 2
    fmt = FixedPointFormat(total_bits, frac_bits)
    rounds = rng.randint(2, 5)
    scale = 2.0**frac_bits
    # small representable magnitudes keep the accumulator honest at
    # every width the scenario can draw
    draw = lambda: rng.randint(-3 * int(scale) // 2, 3 * int(scale) // 2) / scale
    row = np.array([draw() for _ in range(rounds)])
    x = np.array([draw() for _ in range(rounds)])
    model = np.vstack([row, [draw() for _ in range(rounds)]])
    return fmt, model, x


@pytest.mark.parametrize("seed", [101, 202, 303, 404])
def test_upfront_resume_is_bit_exact_at_every_boundary(seed):
    fmt, model, x = _scenario(seed)
    rounds = model.shape[1]
    server = CloudServer(model, fmt, pool_size=0, seed=seed, auto_refill=False)
    circuit = server.accelerator.circuit.circuit
    x_bits = [to_bits(int(v), fmt.total_bits) for v in fmt.encode_array(x)]
    expected_raw = {}

    # uninterrupted upfront reference run; capture the checkpoint and
    # the carried labels at every boundary from the same garbled run
    captured = {}

    def on_run(run, encoded_row):
        captured["cp"] = checkpoint_from_run(
            run, encoded_row, fmt.total_bits, f"s-up{seed}", 0,
            ot_mode="upfront",
        )

    g, e = local_channel(recv_timeout_s=10.0)
    recording = _Recording()
    evaluator = SequentialEvaluator(circuit, e, server.group)
    _, report = run_two_party(
        lambda: server.serve_row(g, 0, on_run=on_run, ot_mode="upfront"),
        lambda: evaluator.run(x_bits, progress=recording),
    )
    expected_raw["bits"] = report.output_bits
    expected = fmt.decode_product(from_bits(report.output_bits, signed=True))
    assert expected == pytest.approx(float(model[0] @ x), abs=1e-9)
    assert server.stats.runs_garbled == 1
    reference = captured["cp"]
    assert reference.ot_mode == "upfront"

    for r in range(rounds):
        cp = SessionCheckpoint.from_dict(reference.to_dict())
        if r:
            cp.advance(r)
            # upfront advance never prunes: every remaining round must
            # still be re-servable from the store copy
            assert [m.round_index for m in cp.materials] == list(range(rounds))
        g2, e2 = local_channel(recv_timeout_s=10.0)
        evaluator2 = SequentialEvaluator(circuit, e2, server.group)
        progress = EvaluatorProgress()
        streamed, resumed = run_two_party(
            lambda: serve_from_checkpoint(g2, cp, server.group),
            lambda: evaluator2.run(
                x_bits,
                start_round=r,
                state_labels=(recording.carried[r] if r else None),
                progress=progress,
            ),
        )
        assert streamed == rounds - r
        assert resumed.output_bits == expected_raw["bits"], (
            f"seed {seed}: resume at round {r} diverged from the "
            "uninterrupted run"
        )
        assert progress.completed_rounds == rounds
    # the whole sweep re-served stored material: still exactly one garble
    assert server.stats.runs_garbled == 1


@pytest.mark.parametrize("seed", [55, 66])
def test_per_round_resume_matches_upfront_results(seed):
    """Cross-mode sanity: the same scenario served per_round from a
    checkpoint at its deepest boundary decodes the same product."""
    fmt, model, x = _scenario(seed)
    rounds = model.shape[1]
    server = CloudServer(model, fmt, pool_size=0, seed=seed, auto_refill=False)
    circuit = server.accelerator.circuit.circuit
    x_bits = [to_bits(int(v), fmt.total_bits) for v in fmt.encode_array(x)]
    captured = {}

    def on_run(run, encoded_row):
        captured["cp"] = checkpoint_from_run(
            run, encoded_row, fmt.total_bits, f"s-pr{seed}", 0,
            ot_mode="per_round",
        )

    g, e = local_channel(recv_timeout_s=10.0)
    recording = _Recording()
    evaluator = SequentialEvaluator(circuit, e, server.group)
    _, report = run_two_party(
        lambda: server.serve_row(g, 0, on_run=on_run),
        lambda: evaluator.run(x_bits, progress=recording),
    )
    r = rounds - 1
    cp = captured["cp"]
    cp.advance(r)
    g2, e2 = local_channel(recv_timeout_s=10.0)
    evaluator2 = SequentialEvaluator(circuit, e2, server.group)
    _, resumed = run_two_party(
        lambda: serve_from_checkpoint(g2, cp, server.group),
        lambda: evaluator2.run(
            x_bits, start_round=r, state_labels=recording.carried[r]
        ),
    )
    assert resumed.output_bits == report.output_bits
    assert server.stats.runs_garbled == 1
