"""Cross-process store semantics with *real* subprocesses.

The in-thread lease race (``test_expired_lease_contention_has_exactly_
one_winner``) proves the in-memory CAS; these tests prove the same
invariants when the contenders are separate OS processes whose only
shared state is the JSONL file — the fcntl lock and the replay/refresh
path are load-bearing here, not the GIL.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.recover import JsonlSessionStore, RoundMaterial, SessionCheckpoint

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def make_checkpoint(sid="s-1", rounds=2, next_round=0) -> SessionCheckpoint:
    materials = [
        RoundMaterial(
            round_index=r,
            tables=bytes(range(32)),
            garbler_labels=[r * 10 + 1],
            const_labels=[7],
            evaluator_pairs=[(100 + r, 200 + r)],
            state_labels=[1, 2, 3] if r == 0 else None,
        )
        for r in range(rounds)
    ]
    cp = SessionCheckpoint(
        session_id=sid,
        row_index=1,
        rounds=rounds,
        next_round=0,
        materials=materials,
        output_permute_bits=[0, 1],
        client_name="tester",
    )
    if next_round:
        cp.advance(next_round)
    return cp


def _spawn(code: str, *argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", code, *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


_RACER = """
import json, os, sys, time
from repro.errors import LeaseError
from repro.recover import JsonlSessionStore, SessionCheckpoint

path, owner, ready, go = sys.argv[1:5]
store = JsonlSessionStore(path, ttl_s=600.0)
open(ready, "w").close()
deadline = time.monotonic() + 30.0
while not os.path.exists(go):
    if time.monotonic() > deadline:
        sys.exit(3)
    time.sleep(0.001)
# expiry re-anchors at *our* load time: wait out our view of the lease
lease0 = store.get_lease("s-race")
if lease0 is not None:
    delay = lease0.expires_at - time.monotonic()
    if delay > 0:
        time.sleep(delay + 0.01)
lease = store.acquire_lease("s-race", owner, ttl_s=30.0)
won = lease is not None
cas_ok = False
if won:
    cp = SessionCheckpoint.from_dict(store.get("s-race").to_dict())
    cp.advance(2)
    try:
        store.cas_advance(cp, owner, 1)
        cas_ok = True
    except LeaseError:
        cas_ok = False
print(json.dumps({
    "owner": owner,
    "won": won,
    "epoch": lease.epoch if lease else None,
    "cas_ok": cas_ok,
}))
"""


def test_two_subprocesses_race_one_lease_exactly_one_winner(tmp_path):
    path = str(tmp_path / "sessions.jsonl")
    seed = JsonlSessionStore(path, ttl_s=600.0)
    seed.put(make_checkpoint("s-race", rounds=3, next_round=1))
    seed.acquire_lease("s-race", "gw-dead", ttl_s=0.05)
    time.sleep(0.1)  # the original owner is provably dark now

    ready = [str(tmp_path / f"ready-{i}") for i in range(2)]
    go = str(tmp_path / "go")
    procs = [
        _spawn(_RACER, path, f"proc-{i}", ready[i], go) for i in range(2)
    ]
    deadline = time.monotonic() + 30.0
    while not all(os.path.exists(r) for r in ready):
        assert time.monotonic() < deadline, "racers never became ready"
        time.sleep(0.001)
    open(go, "w").close()

    results = []
    for p in procs:
        out, err = p.communicate(timeout=60)
        assert p.returncode == 0, err
        results.append(json.loads(out))

    winners = [r for r in results if r["won"]]
    assert len(winners) == 1, results
    # the winner stole the expired lease (epoch fence moved exactly once)
    # and committed its round through the CAS
    assert winners[0]["epoch"] == 2
    assert winners[0]["cas_ok"] is True
    # the parent's store instance observes the subprocess outcome
    lease = seed.get_lease("s-race")
    assert lease.owner == winners[0]["owner"] and lease.epoch == 2
    assert seed.committed_round("s-race") == 2


_APPENDER = """
import sys
from repro.recover import JsonlSessionStore
from repro.recover.checkpoint import RoundMaterial, SessionCheckpoint

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = JsonlSessionStore(path, ttl_s=600.0)
for i in range(count):
    cp = SessionCheckpoint(
        session_id=f"s-{tag}-{i % 5}",
        row_index=0,
        rounds=1,
        next_round=0,
        materials=[RoundMaterial(round_index=0, tables=b"x" * 16,
                                 garbler_labels=[1], const_labels=[2],
                                 evaluator_pairs=[(3, 4)],
                                 state_labels=[5])],
        output_permute_bits=[0],
        client_name="appender",
    )
    store.put(cp)
print("done")
"""

_COMPACTOR = """
import sys, time
from repro.recover import JsonlSessionStore

path, rounds = sys.argv[1], int(sys.argv[2])
store = JsonlSessionStore(path, ttl_s=600.0)
for _ in range(rounds):
    store.compact()
    time.sleep(0.002)
print("done")
"""


def test_compaction_cannot_corrupt_a_concurrent_appender(tmp_path):
    """compact()'s os.replace races two appenders; the flock serialises
    them, so a fresh reader afterwards sees a clean, torn-free log."""
    path = str(tmp_path / "sessions.jsonl")
    JsonlSessionStore(path, ttl_s=600.0).put(make_checkpoint("s-seed"))
    procs = [
        _spawn(_APPENDER, path, "a", "60"),
        _spawn(_APPENDER, path, "b", "60"),
        _spawn(_COMPACTOR, path, "12"),
    ]
    for p in procs:
        out, err = p.communicate(timeout=120)
        assert p.returncode == 0, err
        assert out.strip() == "done"
    fresh = JsonlSessionStore(path, ttl_s=600.0)  # must not raise
    assert fresh.torn_tail_recovered == 0
    # last-record-wins replay kept every session's latest checkpoint
    assert {"s-a-0", "s-b-0", "s-seed"} <= set(fresh.session_ids())
