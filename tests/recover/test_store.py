"""Session stores: TTL eviction, JSONL persistence, corruption handling,
and the fleet lease/CAS fence."""

import json
import threading

import pytest

from repro.errors import ConfigurationError, LeaseError
from repro.recover import (
    InMemorySessionStore,
    JsonlSessionStore,
    RoundMaterial,
    SessionCheckpoint,
    decode_record_line,
    encode_record_v2,
)
from repro.telemetry import MetricsRegistry


def make_checkpoint(sid="s-1", rounds=2, next_round=0) -> SessionCheckpoint:
    materials = [
        RoundMaterial(
            round_index=r,
            tables=bytes(range(32)) * (r + 1),
            garbler_labels=[r * 10 + 1, r * 10 + 2],
            const_labels=[7],
            evaluator_pairs=[(100 + r, 200 + r)],
            state_labels=[1, 2, 3] if r == 0 else None,
        )
        for r in range(rounds)
    ]
    cp = SessionCheckpoint(
        session_id=sid,
        row_index=1,
        rounds=rounds,
        next_round=0,
        materials=materials,
        output_permute_bits=[0, 1, 1, 0],
        client_name="tester",
    )
    if next_round:
        cp.advance(next_round, send_seq=5, recv_seq=3)
    return cp


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestInMemoryStore:
    def test_put_get_delete_roundtrip(self):
        store = InMemorySessionStore(ttl_s=60.0)
        cp = make_checkpoint("s-a")
        store.put(cp)
        assert store.get("s-a") is cp
        assert len(store) == 1
        assert store.delete("s-a") is True
        assert store.get("s-a") is None
        assert store.delete("s-a") is False

    def test_ttl_evicts_stale_checkpoints(self):
        clock = FakeClock()
        tm = MetricsRegistry()
        store = InMemorySessionStore(ttl_s=10.0, telemetry=tm, clock=clock)
        store.put(make_checkpoint("s-old"))
        clock.now += 11.0
        store.put(make_checkpoint("s-new"))
        assert store.get("s-old") is None
        assert store.get("s-new") is not None
        assert tm.counter("recover.store.evicted").value == 1
        assert tm.counter("recover.store.puts").value == 2

    def test_fresh_entries_survive_a_sweep(self):
        clock = FakeClock()
        store = InMemorySessionStore(ttl_s=10.0, clock=clock)
        store.put(make_checkpoint("s-a"))
        clock.now += 5.0
        assert store.sweep() == 0
        assert store.get("s-a") is not None
        clock.now += 6.0
        assert store.sweep() == 1
        assert len(store) == 0

    def test_put_refreshes_the_ttl_clock(self):
        clock = FakeClock()
        store = InMemorySessionStore(ttl_s=10.0, clock=clock)
        store.put(make_checkpoint("s-a"))
        clock.now += 8.0
        store.put(make_checkpoint("s-a", next_round=1))
        clock.now += 8.0  # 16s after first put, 8s after refresh
        assert store.get("s-a") is not None

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ConfigurationError, match="TTL"):
            InMemorySessionStore(ttl_s=0.0)


class TestJsonlStore:
    def test_checkpoints_survive_a_process_restart(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        cp = make_checkpoint("s-persist", rounds=2, next_round=1)
        store.put(cp)
        # a brand-new store instance (the restarted gateway) reloads it
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        got = reloaded.get("s-persist")
        assert got is not None
        assert got.to_dict() == cp.to_dict()

    def test_delete_tombstones_survive_reload(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-a"))
        store.put(make_checkpoint("s-b"))
        store.delete("s-a")
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.get("s-a") is None
        assert reloaded.get("s-b") is not None

    def test_last_put_wins_on_reload(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-a", rounds=2, next_round=0))
        store.put(make_checkpoint("s-a", rounds=2, next_round=1))
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.get("s-a").next_round == 1

    def test_corrupt_mid_file_record_fails_typed(self, tmp_path):
        # a corrupt record *followed by a valid one* is real corruption,
        # not a torn tail — the store must refuse the file loudly
        path = tmp_path / "sessions.jsonl"
        JsonlSessionStore(path, ttl_s=60.0).put(make_checkpoint("s-a"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        with open(path, "ab") as fh:
            fh.write(encode_record_v2({"op": "delete", "session_id": "s-x"}))
        with pytest.raises(ConfigurationError, match="corrupt checkpoint log"):
            JsonlSessionStore(path, ttl_s=60.0)

    def test_torn_final_record_is_truncated_not_fatal(self, tmp_path):
        # a SIGKILL mid-append leaves a partial final line; successors
        # must drop it, count it, and keep the complete prefix
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-a"))
        store.put(make_checkpoint("s-b"))
        intact_size = path.stat().st_size
        torn = encode_record_v2({"op": "put", "checkpoint":
                                 make_checkpoint("s-c").to_dict()})
        with open(path, "ab") as fh:
            fh.write(torn[: len(torn) // 2])  # no trailing newline
        telemetry = MetricsRegistry()
        reloaded = JsonlSessionStore(path, ttl_s=60.0, telemetry=telemetry)
        assert reloaded.get("s-a") is not None
        assert reloaded.get("s-b") is not None
        assert reloaded.get("s-c") is None
        assert reloaded.torn_tail_recovered == 1
        assert telemetry.counter("store.torn_tail_recovered").value == 1
        # the torn bytes are physically gone: the next reader is clean
        assert path.stat().st_size == intact_size
        assert JsonlSessionStore(path, ttl_s=60.0).torn_tail_recovered == 0

    def test_torn_newline_terminated_record_is_truncated(self, tmp_path):
        # even a newline-terminated final line that fails its CRC/length
        # framing is treated as torn (v2 framing makes this detectable)
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-a"))
        line = encode_record_v2({"op": "delete", "session_id": "s-a"})
        with open(path, "ab") as fh:
            fh.write(line[:40] + b"\n")
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.torn_tail_recovered == 1
        assert reloaded.get("s-a") is not None  # the torn delete never happened

    def test_v1_plain_json_file_still_loads(self, tmp_path):
        # a store written by the pre-CRC format must keep loading
        path = tmp_path / "sessions.jsonl"
        cp = make_checkpoint("s-old", next_round=1)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"op": "put", "checkpoint": cp.to_dict()}) + "\n")
            fh.write(json.dumps({
                "op": "lease", "session_id": "s-old", "owner": "gw0",
                "epoch": 3, "expires_in": 30.0,
            }) + "\n")
        store = JsonlSessionStore(path, ttl_s=60.0)
        assert store.get("s-old") is not None
        assert store.committed_round("s-old") == 1
        lease = store.get_lease("s-old")
        assert lease is not None and lease.owner == "gw0" and lease.epoch == 3

    def test_mixed_v1_v2_records_tolerated(self, tmp_path):
        # rolling upgrade: old writer appended v1 lines, new writer v2
        path = tmp_path / "sessions.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"op": "put", "checkpoint":
                                 make_checkpoint("s-1").to_dict()}) + "\n")
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-2"))  # appends a v2 record
        store.delete("s-1")
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.get("s-1") is None
        assert reloaded.get("s-2") is not None

    def test_record_codec_roundtrip_and_crc(self):
        rec = {"op": "delete", "session_id": "s-π"}
        line = encode_record_v2(rec)
        assert line.startswith(b"!v2 ") and line.endswith(b"\n")
        assert decode_record_line(line.rstrip(b"\n")) == rec
        flipped = bytearray(line.rstrip(b"\n"))
        flipped[-1] ^= 0x01
        with pytest.raises(ValueError):
            decode_record_line(bytes(flipped))

    def test_peer_appends_are_visible_across_instances(self, tmp_path):
        # two stores on one file (stand-in for two processes): writes by
        # one are folded in by the other on its next operation
        path = tmp_path / "sessions.jsonl"
        a = JsonlSessionStore(path, ttl_s=60.0)
        b = JsonlSessionStore(path, ttl_s=60.0)
        a.put(make_checkpoint("s-shared", next_round=1))
        assert b.committed_round("s-shared") == 1
        assert b.get("s-shared") is not None
        assert b.acquire_lease("s-shared", "gw-b") is not None
        assert a.lease_holder("s-shared") == "gw-b"
        # a compaction by one peer does not lose the other's view
        b.compact()
        a.delete("s-shared")
        assert b.get("s-shared") is None

    def test_compact_rewrites_to_live_entries_only(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        for i in range(4):
            store.put(make_checkpoint(f"s-{i}"))
        for i in range(3):
            store.delete(f"s-{i}")
        assert sum(1 for _ in open(path, "rb")) == 7  # 4 puts + 3 tombstones
        store.compact()
        lines = [decode_record_line(l.rstrip(b"\n")) for l in open(path, "rb")]
        assert len(lines) == 1
        assert lines[0]["checkpoint"]["session_id"] == "s-3"
        # and the compacted file still reloads
        assert JsonlSessionStore(path, ttl_s=60.0).get("s-3") is not None

    def test_missing_file_means_empty_store(self, tmp_path):
        store = JsonlSessionStore(tmp_path / "absent.jsonl", ttl_s=60.0)
        assert len(store) == 0


class TestLeases:
    def test_acquire_renew_release(self):
        store = InMemorySessionStore(ttl_s=60.0)
        store.put(make_checkpoint("s-l"))
        lease = store.acquire_lease("s-l", "gw-a", ttl_s=30.0)
        assert lease is not None and lease.epoch == 1
        # renewal keeps the epoch
        again = store.acquire_lease("s-l", "gw-a", ttl_s=30.0)
        assert again.epoch == 1
        assert store.release_lease("s-l", "gw-a") is True
        assert store.get_lease("s-l") is None
        # a stale owner cannot release what it no longer holds
        assert store.release_lease("s-l", "gw-a") is False

    def test_live_lease_denies_other_owners(self):
        tm = MetricsRegistry()
        store = InMemorySessionStore(ttl_s=60.0, telemetry=tm)
        store.acquire_lease("s-l", "gw-a", ttl_s=30.0)
        assert store.acquire_lease("s-l", "gw-b", ttl_s=30.0) is None
        assert tm.counter("recover.lease.denied").value == 1

    def test_expired_lease_is_stolen_with_epoch_bump(self):
        clock = FakeClock()
        tm = MetricsRegistry()
        store = InMemorySessionStore(ttl_s=600.0, telemetry=tm, clock=clock)
        store.acquire_lease("s-l", "gw-a", ttl_s=5.0)
        clock.now += 6.0
        stolen = store.acquire_lease("s-l", "gw-b", ttl_s=5.0)
        assert stolen is not None
        assert stolen.owner == "gw-b" and stolen.epoch == 2
        assert tm.counter("recover.lease.steals").value == 1

    def test_expired_lease_contention_has_exactly_one_winner(self):
        """Satellite: two gateways race to adopt the same expired
        session — one wins, the loser is denied, the epoch moves once."""
        clock = FakeClock()
        store = InMemorySessionStore(ttl_s=600.0, clock=clock)
        store.put(make_checkpoint("s-race", rounds=2, next_round=1))
        store.acquire_lease("s-race", "gw-dead", ttl_s=1.0)
        clock.now += 2.0  # the owner is provably dark now
        results = {}
        barrier = threading.Barrier(2)

        def adopt(owner):
            barrier.wait()
            results[owner] = store.acquire_lease("s-race", owner, ttl_s=30.0)

        threads = [
            threading.Thread(target=adopt, args=(o,))
            for o in ("gw-x", "gw-y")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wins = [o for o, lease in results.items() if lease is not None]
        assert len(wins) == 1
        winner = wins[0]
        lease = store.get_lease("s-race")
        assert lease.owner == winner and lease.epoch == 2

    def test_cas_advance_requires_lease_and_agreement(self):
        store = InMemorySessionStore(ttl_s=60.0)
        cp = make_checkpoint("s-cas", rounds=2, next_round=0)
        store.put(cp)
        # no lease: the caller's serve is a no-op
        mine = SessionCheckpoint.from_dict(cp.to_dict())
        mine.advance(1)
        with pytest.raises(LeaseError, match="lease held by"):
            store.cas_advance(mine, "gw-a", 0)
        store.acquire_lease("s-cas", "gw-a", ttl_s=30.0)
        store.cas_advance(mine, "gw-a", 0)
        assert store.committed_round("s-cas") == 1
        # stale expectation: someone else committed since
        other = SessionCheckpoint.from_dict(cp.to_dict())
        other.advance(1)
        with pytest.raises(LeaseError, match="CAS advance lost"):
            store.cas_advance(other, "gw-a", 0)

    def test_loser_cannot_advance_after_a_steal(self):
        """The fencing property: the stale owner's copy is rejected even
        though it disagrees with the store by nothing but ownership."""
        clock = FakeClock()
        store = InMemorySessionStore(ttl_s=600.0, clock=clock)
        cp = make_checkpoint("s-fence", rounds=2, next_round=0)
        store.put(cp)
        store.acquire_lease("s-fence", "gw-old", ttl_s=1.0)
        clock.now += 2.0
        store.acquire_lease("s-fence", "gw-new", ttl_s=30.0)
        stale = SessionCheckpoint.from_dict(cp.to_dict())
        stale.advance(1)
        with pytest.raises(LeaseError, match="lease held by 'gw-new'"):
            store.cas_advance(stale, "gw-old", 0)
        assert store.committed_round("s-fence") == 0

    def test_delete_drops_lease_and_committed_round(self):
        store = InMemorySessionStore(ttl_s=60.0)
        store.put(make_checkpoint("s-d"))
        store.acquire_lease("s-d", "gw-a", ttl_s=30.0)
        store.delete("s-d")
        assert store.get_lease("s-d") is None
        assert store.committed_round("s-d") is None

    def test_nonpositive_lease_ttl_rejected(self):
        store = InMemorySessionStore(ttl_s=60.0)
        with pytest.raises(ConfigurationError, match="lease TTL"):
            store.acquire_lease("s-l", "gw-a", ttl_s=0.0)


class TestJsonlLeasePersistence:
    def test_lease_survives_restart_with_relative_expiry(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-l", rounds=2, next_round=1))
        store.acquire_lease("s-l", "gw-a", ttl_s=30.0)
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        lease = reloaded.get_lease("s-l")
        assert lease is not None
        assert lease.owner == "gw-a" and lease.epoch == 1
        # still live after the reload: another owner is denied
        assert reloaded.acquire_lease("s-l", "gw-b", ttl_s=30.0) is None
        # and the committed round was rebuilt for the CAS fence
        assert reloaded.committed_round("s-l") == 1

    def test_lease_release_survives_restart(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-l"))
        store.acquire_lease("s-l", "gw-a", ttl_s=30.0)
        store.release_lease("s-l", "gw-a")
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.get_lease("s-l") is None
        assert reloaded.acquire_lease("s-l", "gw-b", ttl_s=30.0) is not None

    def test_compact_mid_handoff_keeps_lease_and_unacked_tail(self, tmp_path):
        """Satellite: compaction while a handoff is in flight must not
        lose the lease record or the unacked-frame tail material."""
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        cp = make_checkpoint("s-mid", rounds=2)
        store.put(cp)
        store.acquire_lease("s-mid", "gw-a", ttl_s=30.0)
        # advance to round 1: round 0 becomes the unacked tail
        mine = SessionCheckpoint.from_dict(cp.to_dict())
        mine.advance(1, send_seq=9, recv_seq=4)
        store.cas_advance(mine, "gw-a", 0)
        store.compact()  # a draining peer compacts the shared log now
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        got = reloaded.get("s-mid")
        assert got is not None
        assert [m.round_index for m in got.materials] == [0, 1]
        assert got.stream_boundaries == mine.stream_boundaries
        lease = reloaded.get_lease("s-mid")
        assert lease is not None
        assert lease.owner == "gw-a" and lease.epoch == 1
        assert reloaded.committed_round("s-mid") == 1

    def test_compact_keeps_expired_leases_for_the_epoch_fence(self, tmp_path):
        """Dropping an expired lease at compaction would restart the
        epoch fence at 1 — the next steal must continue it instead."""
        clock = FakeClock()
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=600.0, clock=clock)
        store.put(make_checkpoint("s-fence"))
        store.acquire_lease("s-fence", "gw-a", ttl_s=1.0)
        clock.now += 2.0  # expired, not released
        store.compact()
        reloaded = JsonlSessionStore(path, ttl_s=600.0, clock=clock)
        stolen = reloaded.acquire_lease("s-fence", "gw-b", ttl_s=30.0)
        assert stolen is not None
        assert stolen.epoch == 2
