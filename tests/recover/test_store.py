"""Session stores: TTL eviction, JSONL persistence, corruption handling."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.recover import (
    InMemorySessionStore,
    JsonlSessionStore,
    RoundMaterial,
    SessionCheckpoint,
)
from repro.telemetry import MetricsRegistry


def make_checkpoint(sid="s-1", rounds=2, next_round=0) -> SessionCheckpoint:
    materials = [
        RoundMaterial(
            round_index=r,
            tables=bytes(range(32)) * (r + 1),
            garbler_labels=[r * 10 + 1, r * 10 + 2],
            const_labels=[7],
            evaluator_pairs=[(100 + r, 200 + r)],
            state_labels=[1, 2, 3] if r == 0 else None,
        )
        for r in range(rounds)
    ]
    cp = SessionCheckpoint(
        session_id=sid,
        row_index=1,
        rounds=rounds,
        next_round=0,
        materials=materials,
        output_permute_bits=[0, 1, 1, 0],
        client_name="tester",
    )
    if next_round:
        cp.advance(next_round, send_seq=5, recv_seq=3)
    return cp


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now


class TestInMemoryStore:
    def test_put_get_delete_roundtrip(self):
        store = InMemorySessionStore(ttl_s=60.0)
        cp = make_checkpoint("s-a")
        store.put(cp)
        assert store.get("s-a") is cp
        assert len(store) == 1
        assert store.delete("s-a") is True
        assert store.get("s-a") is None
        assert store.delete("s-a") is False

    def test_ttl_evicts_stale_checkpoints(self):
        clock = FakeClock()
        tm = MetricsRegistry()
        store = InMemorySessionStore(ttl_s=10.0, telemetry=tm, clock=clock)
        store.put(make_checkpoint("s-old"))
        clock.now += 11.0
        store.put(make_checkpoint("s-new"))
        assert store.get("s-old") is None
        assert store.get("s-new") is not None
        assert tm.counter("recover.store.evicted").value == 1
        assert tm.counter("recover.store.puts").value == 2

    def test_fresh_entries_survive_a_sweep(self):
        clock = FakeClock()
        store = InMemorySessionStore(ttl_s=10.0, clock=clock)
        store.put(make_checkpoint("s-a"))
        clock.now += 5.0
        assert store.sweep() == 0
        assert store.get("s-a") is not None
        clock.now += 6.0
        assert store.sweep() == 1
        assert len(store) == 0

    def test_put_refreshes_the_ttl_clock(self):
        clock = FakeClock()
        store = InMemorySessionStore(ttl_s=10.0, clock=clock)
        store.put(make_checkpoint("s-a"))
        clock.now += 8.0
        store.put(make_checkpoint("s-a", next_round=1))
        clock.now += 8.0  # 16s after first put, 8s after refresh
        assert store.get("s-a") is not None

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ConfigurationError, match="TTL"):
            InMemorySessionStore(ttl_s=0.0)


class TestJsonlStore:
    def test_checkpoints_survive_a_process_restart(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        cp = make_checkpoint("s-persist", rounds=2, next_round=1)
        store.put(cp)
        # a brand-new store instance (the restarted gateway) reloads it
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        got = reloaded.get("s-persist")
        assert got is not None
        assert got.to_dict() == cp.to_dict()

    def test_delete_tombstones_survive_reload(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-a"))
        store.put(make_checkpoint("s-b"))
        store.delete("s-a")
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.get("s-a") is None
        assert reloaded.get("s-b") is not None

    def test_last_put_wins_on_reload(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        store.put(make_checkpoint("s-a", rounds=2, next_round=0))
        store.put(make_checkpoint("s-a", rounds=2, next_round=1))
        reloaded = JsonlSessionStore(path, ttl_s=60.0)
        assert reloaded.get("s-a").next_round == 1

    def test_corrupt_log_line_fails_typed(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        JsonlSessionStore(path, ttl_s=60.0).put(make_checkpoint("s-a"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{not json\n")
        with pytest.raises(ConfigurationError, match="corrupt checkpoint log"):
            JsonlSessionStore(path, ttl_s=60.0)

    def test_compact_rewrites_to_live_entries_only(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path, ttl_s=60.0)
        for i in range(4):
            store.put(make_checkpoint(f"s-{i}"))
        for i in range(3):
            store.delete(f"s-{i}")
        assert sum(1 for _ in open(path)) == 7  # 4 puts + 3 tombstones
        store.compact()
        lines = [json.loads(l) for l in open(path)]
        assert len(lines) == 1
        assert lines[0]["checkpoint"]["session_id"] == "s-3"
        # and the compacted file still reloads
        assert JsonlSessionStore(path, ttl_s=60.0).get("s-3") is not None

    def test_missing_file_means_empty_store(self, tmp_path):
        store = JsonlSessionStore(tmp_path / "absent.jsonl", ttl_s=60.0)
        assert len(store) == 0
