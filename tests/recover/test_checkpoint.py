"""Checkpoints: advance/prune semantics, serialization, resumed serving.

The load-bearing claim: a :class:`SessionCheckpoint` captured by the
``on_run`` hook can serve the *whole* query (or its tail) without a
single additional garbling — ``serve_from_checkpoint`` streams stored
material, and the unmodified evaluator decodes the bit-identical MAC.
"""

import threading

import numpy as np
import pytest

from repro.errors import ResumeError
from repro.fixedpoint import Q8_4
from repro.gc.channel import local_channel, run_two_party
from repro.gc.sequential_gc import SequentialEvaluator
from repro.host import CloudServer
from repro.bits import from_bits, to_bits
from repro.recover import (
    EvaluatorProgress,
    RoundMaterial,
    SessionCheckpoint,
    checkpoint_from_run,
    serve_from_checkpoint,
)
from repro.telemetry import MetricsRegistry

MODEL = np.array([[0.5, -1.0], [1.5, 0.25], [-0.75, 2.0]])


def make_checkpoint(rounds=3) -> SessionCheckpoint:
    return SessionCheckpoint(
        session_id="s-unit",
        row_index=0,
        rounds=rounds,
        next_round=0,
        materials=[
            RoundMaterial(
                round_index=r,
                tables=b"\xaa" * 32,
                garbler_labels=[r, r + 1],
                const_labels=[],
                evaluator_pairs=[(2 * r, 2 * r + 1)],
                state_labels=[9] if r == 0 else None,
            )
            for r in range(rounds)
        ],
        output_permute_bits=[1, 0],
    )


class TestAdvance:
    def test_advance_prunes_completed_rounds(self):
        cp = make_checkpoint(rounds=3)
        cp.advance(2, send_seq=14, recv_seq=9)
        assert cp.next_round == 2
        # round 1 is the unacked tail: streamed, but the client may not
        # have verified it yet — a successor gateway can re-serve it
        assert [m.round_index for m in cp.materials] == [1, 2]
        assert (cp.send_seq, cp.recv_seq) == (14, 9)
        assert not cp.complete
        cp.advance(3)
        assert cp.complete
        assert [m.round_index for m in cp.materials] == [2]

    def test_upfront_mode_never_prunes_on_advance(self):
        cp = make_checkpoint(rounds=3)
        cp.ot_mode = "upfront"
        cp.advance(3, send_seq=20, recv_seq=2)
        # the free-running upfront stream keeps everything; only
        # rewind_to (which knows the acked round) may discard
        assert [m.round_index for m in cp.materials] == [0, 1, 2]

    def test_boundary_map_tracks_advances(self):
        cp = make_checkpoint(rounds=3)
        cp.begin_stream(0)
        cp.advance(1, send_seq=5)
        cp.advance(2, send_seq=9)
        assert cp.stream_boundaries == [[0, 0], [1, 5], [2, 9]]
        assert cp.acked_round(0) == 0
        assert cp.acked_round(4) == 0
        assert cp.acked_round(5) == 1
        assert cp.acked_round(8) == 1
        assert cp.acked_round(9) == 2
        assert cp.acked_round(999) == 2

    def test_rewind_restores_reservable_rounds(self):
        cp = make_checkpoint(rounds=3)
        cp.ot_mode = "upfront"
        cp.advance(3, send_seq=20)
        cp.rewind_to(1)
        assert cp.next_round == 1
        assert [m.round_index for m in cp.materials] == [1, 2]
        with pytest.raises(ResumeError, match="cannot rewind forward"):
            cp.rewind_to(2)

    def test_rewind_without_material_is_typed(self):
        cp = make_checkpoint(rounds=3)
        cp.advance(2, send_seq=9)
        cp.advance(3, send_seq=14)
        # per_round pruning dropped rounds 0 and 1; only round 2 (the
        # tail) is re-servable
        with pytest.raises(ResumeError, match="never re-served"):
            cp.rewind_to(0)
        cp.rewind_to(2)
        assert cp.next_round == 2

    def test_advance_backwards_is_typed(self):
        cp = make_checkpoint()
        cp.advance(2)
        with pytest.raises(ResumeError, match="cannot move backwards"):
            cp.advance(1)

    def test_material_for_pruned_round_is_typed(self):
        cp = make_checkpoint()
        cp.advance(1)
        cp.advance(2)
        with pytest.raises(ResumeError, match="never re-served"):
            cp.material_for(0)
        assert cp.material_for(1).round_index == 1


class TestSerialization:
    def test_dict_roundtrip_is_lossless(self):
        cp = make_checkpoint()
        cp.advance(2, send_seq=7, recv_seq=4)
        rebuilt = SessionCheckpoint.from_dict(cp.to_dict())
        assert rebuilt.to_dict() == cp.to_dict()
        assert rebuilt.materials[0].tables == b"\xaa" * 32
        assert rebuilt.materials[0].evaluator_pairs == [(2, 3)]

    def test_state_labels_only_on_round_zero(self):
        cp = make_checkpoint()
        rebuilt = SessionCheckpoint.from_dict(cp.to_dict())
        assert rebuilt.materials[0].state_labels == [9]
        assert rebuilt.materials[1].state_labels is None


class _Harness:
    """A server + a captured checkpoint for one row, garbled exactly once."""

    def __init__(self, seed=11):
        self.telemetry = MetricsRegistry()
        self.server = CloudServer(
            MODEL, Q8_4, pool_size=0, seed=seed, auto_refill=False,
            telemetry=self.telemetry,
        )
        self.row = 1
        self.x = np.array([0.5, -0.25])
        self.expected = float(MODEL[self.row] @ self.x)

    def captured_checkpoint(self) -> SessionCheckpoint:
        """Serve the row once end-to-end, capturing the on_run snapshot."""
        captured = {}

        def on_run(run, encoded_row):
            captured["cp"] = checkpoint_from_run(
                run, encoded_row, self.server.fmt.total_bits,
                "s-e2e", self.row, client_name="harness",
            )

        g, e = local_channel(recv_timeout_s=10.0)
        evaluator = SequentialEvaluator(
            self.server.accelerator.circuit.circuit, e, self.server.group
        )
        x_bits = self.x_bits()
        _, report = run_two_party(
            lambda: self.server.serve_row(g, self.row, on_run=on_run),
            lambda: evaluator.run(x_bits),
        )
        assert self.decode(report) == pytest.approx(self.expected, abs=1e-12)
        return captured["cp"]

    def x_bits(self):
        fmt = self.server.fmt
        return [
            to_bits(int(v), fmt.total_bits)
            for v in fmt.encode_array(self.x)
        ]

    def decode(self, report) -> float:
        raw = from_bits(report.output_bits, signed=True)
        return self.server.fmt.decode_product(raw)


class TestServeFromCheckpoint:
    def test_full_query_from_checkpoint_without_regarbling(self):
        h = _Harness()
        cp = h.captured_checkpoint()
        garbled_before = h.server.stats.runs_garbled
        # serve the same query again purely from the checkpoint
        g, e = local_channel(recv_timeout_s=10.0)
        evaluator = SequentialEvaluator(
            h.server.accelerator.circuit.circuit, e, h.server.group
        )
        x_bits = h.x_bits()
        streamed, report = run_two_party(
            lambda: serve_from_checkpoint(g, cp, h.server.group,
                                          telemetry=h.telemetry),
            lambda: evaluator.run(x_bits),
        )
        assert streamed == MODEL.shape[1]
        assert h.decode(report) == pytest.approx(h.expected, abs=1e-12)
        assert h.server.stats.runs_garbled == garbled_before
        assert cp.complete
        assert h.telemetry.counter("recover.rounds.streamed").value == streamed

    def test_checkpoint_survives_serialization_before_resume(self):
        """The JSONL path: dict round-trip, then serve — still bit-exact."""
        h = _Harness(seed=23)
        cp = SessionCheckpoint.from_dict(h.captured_checkpoint().to_dict())
        g, e = local_channel(recv_timeout_s=10.0)
        evaluator = SequentialEvaluator(
            h.server.accelerator.circuit.circuit, e, h.server.group
        )
        x_bits = h.x_bits()
        _, report = run_two_party(
            lambda: serve_from_checkpoint(g, cp, h.server.group),
            lambda: evaluator.run(x_bits),
        )
        assert h.decode(report) == pytest.approx(h.expected, abs=1e-12)

    def test_mid_session_resume_carries_evaluator_state(self):
        """Round 0 on the original stream, rounds 1.. from the checkpoint
        with the client's carried accumulator labels — the paper's state
        chaining, across a simulated disconnect at a round boundary."""
        h = _Harness(seed=31)
        cp = h.captured_checkpoint()
        garbled_before = h.server.stats.runs_garbled
        x_bits = h.x_bits()
        circuit = h.server.accelerator.circuit.circuit

        # phase 1: evaluate only round 0 from a full checkpoint stream,
        # recording progress; a drain would cut here
        cp_phase1 = SessionCheckpoint.from_dict(cp.to_dict())
        g, e = local_channel(recv_timeout_s=10.0)
        progress = EvaluatorProgress()
        stop_after = {"round": 1}

        def serve_then_hang():
            # stream everything; the client stops reading after round 1,
            # so use a plain thread that may block — the evaluator side
            # drives how far phase 1 goes
            try:
                serve_from_checkpoint(g, cp_phase1, h.server.group)
            except Exception:
                pass

        t = threading.Thread(target=serve_then_hang, daemon=True)
        t.start()
        evaluator = SequentialEvaluator(circuit, e, h.server.group)

        class _Stop(Exception):
            pass

        # run rounds [0, stop) by aborting via a progress subclass; the
        # evaluator stores completed_rounds first and the carry labels
        # second, so trigger on the labels to capture a coherent pair
        class _Counting(EvaluatorProgress):
            def __setattr__(self, key, value):
                super().__setattr__(key, value)
                if (
                    key == "state_labels"
                    and self.completed_rounds >= stop_after["round"]
                ):
                    raise _Stop()

        counting = _Counting()
        with pytest.raises(_Stop):
            evaluator.run(x_bits, progress=counting)
        assert counting.completed_rounds == 1
        carried = list(counting.state_labels)

        # phase 2: a fresh channel serves rounds 1.. from the checkpoint
        cp.advance(1)
        g2, e2 = local_channel(recv_timeout_s=10.0)
        evaluator2 = SequentialEvaluator(circuit, e2, h.server.group)
        _, report = run_two_party(
            lambda: serve_from_checkpoint(g2, cp, h.server.group),
            lambda: evaluator2.run(
                x_bits, start_round=1, state_labels=carried,
                progress=progress,
            ),
        )
        assert h.decode(report) == pytest.approx(h.expected, abs=1e-12)
        assert progress.completed_rounds == MODEL.shape[1]
        assert h.server.stats.runs_garbled == garbled_before

    def test_completed_checkpoint_refuses_to_resume(self):
        cp = make_checkpoint(rounds=2)
        cp.advance(2)
        g, _ = local_channel(recv_timeout_s=1.0)
        with pytest.raises(ResumeError, match="nothing to resume"):
            serve_from_checkpoint(g, cp)
