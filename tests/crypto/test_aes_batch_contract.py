"""The batch AES contract: explicit layout handling, counted invocations.

Two invariants guard the vectorised garbling hot path:

1. ``AES128.encrypt_words`` never silently degrades on a non-contiguous
   or mistyped input — it either copies *explicitly* (``allow_copy=True``)
   or raises ``CryptoError`` (``allow_copy=False``, the setting the
   garbling hash uses).
2. One topological stage is ONE AES invocation, regardless of how many
   gates or sessions ride in it — proven from the cipher's own
   ``batch_calls`` counter and the ``gc.aes_batch_calls`` telemetry.
"""

import random

import numpy as np
import pytest

from repro.crypto.aes import AES128
from repro.crypto.labels import LabelFactory
from repro.crypto.prf import FIXED_KEY, GarblingHash
from repro.errors import CryptoError
from repro.gc.vector_garble import VectorGarbler, garble_mac_runs
from repro.telemetry import MetricsRegistry


def _blocks(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=(n, 4), dtype=np.uint32)


class TestExplicitLayoutContract:
    def test_batch_matches_scalar_path(self):
        aes = AES128(FIXED_KEY)
        words = _blocks(17)
        enc = aes.encrypt_words(words)
        for row, out in zip(words, enc):
            block = b"".join(int(w).to_bytes(4, "big") for w in row)
            assert aes.encrypt_block(block) == b"".join(
                int(w).to_bytes(4, "big") for w in out
            )

    def test_non_contiguous_rejected_without_allow_copy(self):
        aes = AES128(FIXED_KEY)
        strided = _blocks(32)[::2]  # every other row: not C-contiguous
        assert not strided.flags.c_contiguous
        with pytest.raises(CryptoError, match="C-contiguous"):
            aes.encrypt_words(strided, allow_copy=False)
        assert aes.batch_calls == 0  # rejected before touching the engine

    def test_wrong_dtype_rejected_without_allow_copy(self):
        aes = AES128(FIXED_KEY)
        with pytest.raises(CryptoError, match="uint32"):
            aes.encrypt_words(
                _blocks(4).astype(np.uint64), allow_copy=False
            )

    def test_allow_copy_copies_explicitly_and_matches(self):
        aes = AES128(FIXED_KEY)
        base = _blocks(32)
        strided = base[::2]
        copied = aes.encrypt_words(strided, allow_copy=True)
        direct = aes.encrypt_words(np.ascontiguousarray(strided))
        np.testing.assert_array_equal(copied, direct)

    def test_bad_shape_rejected(self):
        aes = AES128(FIXED_KEY)
        with pytest.raises(CryptoError, match="shape"):
            aes.encrypt_words(np.zeros((4, 3), dtype=np.uint32))

    def test_counters_count_invocations_not_blocks(self):
        aes = AES128(FIXED_KEY)
        aes.encrypt_words(_blocks(100))
        aes.encrypt_words(_blocks(7))
        assert aes.batch_calls == 2
        assert aes.batch_blocks == 107
        assert aes.scalar_calls == 0


class TestOneInvocationPerStage:
    def _mac_netlist(self):
        from repro.circuits.mac import build_mac_netlist

        return build_mac_netlist(8)

    @pytest.mark.parametrize("n_sessions", [1, 2, 8])
    def test_cipher_counter_one_call_per_stage(self, n_sessions):
        """The regression the tentpole exists for: adding sessions must
        not add AES invocations — only blocks per invocation."""
        net = self._mac_netlist()
        hash_fn = GarblingHash()
        vg = VectorGarbler(net, hash_fn=hash_fn)
        factories = [
            LabelFactory(source=random.Random(s)) for s in range(n_sessions)
        ]
        vg.garble(factories)
        assert hash_fn.aes.batch_calls == vg.plan.n_stages
        assert hash_fn.batch_calls == vg.plan.n_stages
        assert hash_fn.aes.scalar_calls == 0
        # per-element accounting still matches the scalar garbler's
        assert hash_fn.calls == n_sessions * 4 * vg.plan.n_and
        assert hash_fn.aes.batch_blocks == n_sessions * 4 * vg.plan.n_and

    def test_telemetry_counter_scales_with_rounds_not_sessions(self):
        from repro.accel.tree_mac import build_scheduled_mac

        scheduled = build_scheduled_mac(8)
        n_stages = VectorGarbler(scheduled.netlist).plan.n_stages
        for n_sessions in (1, 3):
            tm = MetricsRegistry()
            factories = [
                LabelFactory(source=random.Random(s)) for s in range(n_sessions)
            ]
            garble_mac_runs(scheduled, 3, factories, telemetry=tm)
            assert tm.counter("gc.aes_batch_calls").value == 3 * n_stages
            assert tm.counter("gc.vector_sessions").value == 3 * n_sessions

    def test_hash_words_refuses_copies_on_the_hot_path(self):
        """hash_words hands the cipher an already-contiguous buffer; the
        allow_copy=False setting would surface any regression as an
        error instead of a silent slow copy."""
        hash_fn = GarblingHash()
        labels = np.array([[1, 2], [3, 4]], dtype=np.uint64)
        tweaks = np.array([[0, 5], [0, 6]], dtype=np.uint64)
        out = hash_fn.hash_words(labels, tweaks)
        assert out.shape == (2, 2)
        assert hash_fn.batch_calls == 1
        # bit-identical to the scalar hash
        scalar = GarblingHash()
        for row_l, row_t, row_o in zip(labels, tweaks, out):
            l = (int(row_l[0]) << 64) | int(row_l[1])
            t = (int(row_t[0]) << 64) | int(row_t[1])
            o = (int(row_o[0]) << 64) | int(row_o[1])
            assert scalar(l, t) == o

    def test_hash_words_empty_batch_is_free(self):
        hash_fn = GarblingHash()
        out = hash_fn.hash_words(
            np.zeros((0, 2), dtype=np.uint64), np.zeros((0, 2), dtype=np.uint64)
        )
        assert out.shape == (0, 2)
        assert hash_fn.batch_calls == 0
        assert hash_fn.aes.batch_calls == 0
