"""Garbling hash and wire-label algebra tests."""

import random

import pytest

from repro.crypto.labels import (
    K_BITS,
    LabelFactory,
    LabelPair,
    color,
    random_label,
    random_offset,
)
from repro.crypto.prf import MASK128, GarblingHash, gf_double, make_tweak
from repro.errors import CryptoError


class TestGfDouble:
    def test_simple_shift(self):
        assert gf_double(1) == 2
        assert gf_double(0) == 0

    def test_reduction_on_msb(self):
        assert gf_double(1 << 127) == 0x87

    def test_stays_in_field(self):
        rng = random.Random(1)
        for _ in range(100):
            v = rng.getrandbits(128)
            assert 0 <= gf_double(v) <= MASK128

    def test_linear_over_xor(self):
        rng = random.Random(2)
        for _ in range(50):
            a, b = rng.getrandbits(128), rng.getrandbits(128)
            assert gf_double(a ^ b) == gf_double(a) ^ gf_double(b)


class TestGarblingHash:
    def test_deterministic(self):
        h = GarblingHash()
        assert h(12345, 1) == GarblingHash()(12345, 1)

    def test_tweak_separates_calls(self):
        h = GarblingHash()
        assert h(12345, 1) != h(12345, 2)

    def test_label_separates_calls(self):
        h = GarblingHash()
        assert h(1, 7) != h(2, 7)

    def test_output_is_128_bits(self):
        h = GarblingHash()
        for i in range(20):
            assert 0 <= h(i * 999331, i) <= MASK128

    def test_batch_matches_scalar(self):
        h = GarblingHash()
        rng = random.Random(3)
        labels = [rng.getrandbits(128) for _ in range(64)]
        tweaks = list(range(64))
        batch = GarblingHash().hash_many(labels, tweaks)
        scalar = [h(l, t) for l, t in zip(labels, tweaks)]
        assert batch == scalar

    def test_batch_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            GarblingHash().hash_many([1, 2], [3])

    def test_call_counter(self):
        h = GarblingHash()
        h(1, 2)
        h.hash_many([3, 4], [5, 6])
        assert h.calls == 3


class TestTweaks:
    def test_unique_per_gate_and_half(self):
        seen = set()
        for gate in range(100):
            for half in (0, 1):
                seen.add(make_tweak(gate, half))
        assert len(seen) == 200


class TestLabels:
    def test_offset_lsb_is_one(self):
        for _ in range(20):
            assert random_offset() & 1 == 1

    def test_pair_relation(self):
        r = random_offset()
        pair = LabelPair(random_label(), r)
        assert pair.one == pair.zero ^ r
        assert pair.select(0) == pair.zero
        assert pair.select(1) == pair.one

    def test_colors_differ(self):
        r = random_offset()
        for _ in range(20):
            pair = LabelPair(random_label(), r)
            assert color(pair.zero) != color(pair.one)

    def test_decode(self):
        pair = LabelPair(random_label(), random_offset())
        assert pair.decode(pair.zero) == 0
        assert pair.decode(pair.one) == 1
        with pytest.raises(CryptoError):
            pair.decode(pair.zero ^ 2)

    def test_even_offset_rejected(self):
        with pytest.raises(CryptoError):
            LabelPair(0, 2)
        with pytest.raises(CryptoError):
            LabelFactory(offset=4)


class TestLabelFactory:
    def test_shared_offset(self):
        factory = LabelFactory()
        pairs = [factory.fresh_pair() for _ in range(10)]
        assert len({p.offset for p in pairs}) == 1
        assert len({p.zero for p in pairs}) == 10

    def test_entropy_accounting(self):
        factory = LabelFactory()
        for _ in range(5):
            factory.fresh_pair()
        assert factory.random_bits_consumed == 5 * K_BITS

    def test_custom_source(self):
        factory = LabelFactory(source=random.Random(42))
        other = LabelFactory(source=random.Random(42))
        assert factory.fresh_pair().zero == other.fresh_pair().zero

    def test_pair_from_zero(self):
        factory = LabelFactory()
        pair = factory.pair_from_zero(123456)
        assert pair.zero == 123456
        assert pair.offset == factory.offset
