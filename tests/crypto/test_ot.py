"""Oblivious-transfer tests (base OT and IKNP extension)."""

import random

import pytest

from repro.crypto.ot import (
    TOY_GROUP,
    BaseOTReceiver,
    BaseOTSender,
    transfer_labels,
)
from repro.errors import CryptoError
from repro.gc.channel import local_channel, run_two_party


def random_pairs(n, seed=0):
    rng = random.Random(seed)
    return [(rng.getrandbits(128), rng.getrandbits(128)) for _ in range(n)]


class TestBaseOT:
    def test_receiver_gets_chosen_messages(self):
        pairs = random_pairs(8, seed=1)
        choices = [0, 1, 1, 0, 1, 0, 0, 1]
        garbler, evaluator = local_channel()
        got = transfer_labels(garbler, evaluator, pairs, choices, TOY_GROUP, use_extension=False)
        assert got == [pair[c] for pair, c in zip(pairs, choices)]

    def test_all_zero_and_all_one_choices(self):
        pairs = random_pairs(4, seed=2)
        for bit in (0, 1):
            garbler, evaluator = local_channel()
            got = transfer_labels(garbler, evaluator, pairs, [bit] * 4, TOY_GROUP, use_extension=False)
            assert got == [p[bit] for p in pairs]

    def test_mismatched_lengths_raise(self):
        garbler, evaluator = local_channel()
        with pytest.raises(CryptoError):
            transfer_labels(garbler, evaluator, random_pairs(2), [0], TOY_GROUP)

    def test_key_count_mismatch_detected(self):
        garbler, evaluator = local_channel()
        sender = BaseOTSender(garbler, TOY_GROUP)
        receiver = BaseOTReceiver(evaluator, TOY_GROUP)
        with pytest.raises(CryptoError):
            run_two_party(
                lambda: sender.send(random_pairs(3)),
                lambda: receiver.receive([0, 1]),  # one key short
            )


class TestOTExtension:
    def test_extension_correctness(self):
        n = 300  # force several PRG blocks and a non-trivial matrix
        pairs = random_pairs(n, seed=3)
        rng = random.Random(4)
        choices = [rng.getrandbits(1) for _ in range(n)]
        garbler, evaluator = local_channel()
        got = transfer_labels(garbler, evaluator, pairs, choices, TOY_GROUP, use_extension=True)
        assert got == [pair[c] for pair, c in zip(pairs, choices)]

    def test_auto_selects_extension_for_large_batches(self):
        n = 200
        pairs = random_pairs(n, seed=5)
        choices = [i % 2 for i in range(n)]
        garbler, evaluator = local_channel()
        got = transfer_labels(garbler, evaluator, pairs, choices, TOY_GROUP)
        assert got == [pair[c] for pair, c in zip(pairs, choices)]
        # extension traffic includes the 'u' matrix message
        assert "ot.ext.u" in evaluator.sent.by_tag

    def test_traffic_is_accounted(self):
        pairs = random_pairs(4, seed=6)
        garbler, evaluator = local_channel()
        transfer_labels(garbler, evaluator, pairs, [1, 0, 1, 0], TOY_GROUP, use_extension=False)
        assert garbler.sent.payload_bytes > 0
        assert evaluator.sent.payload_bytes > 0
        assert "ot.base.enc" in garbler.sent.by_tag
