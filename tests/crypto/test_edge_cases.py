"""Edge cases across the crypto layer."""

import numpy as np
import pytest

from repro.crypto.aes import AES128
from repro.crypto.ot import TOY_GROUP, transfer_labels
from repro.crypto.prf import FIXED_KEY, GarblingHash, MASK128, gf_double
from repro.crypto.rng import TRNGSeededDRBG
from repro.gc.channel import local_channel


class TestAesEdges:
    def test_empty_batch(self):
        aes = AES128(FIXED_KEY)
        assert aes.encrypt_blocks(b"") == b""

    def test_single_block_batch_equals_scalar(self):
        aes = AES128(FIXED_KEY)
        block = bytes(range(16))
        assert aes.encrypt_blocks(block) == aes.encrypt_block(block)

    def test_large_batch(self):
        aes = AES128(FIXED_KEY)
        data = bytes(range(256)) * 64  # 1024 blocks
        out = aes.encrypt_blocks(data)
        assert len(out) == len(data)
        assert out[:16] == aes.encrypt_block(data[:16])

    def test_all_zero_and_all_one_blocks(self):
        aes = AES128(FIXED_KEY)
        for block in (bytes(16), b"\xff" * 16):
            out = aes.encrypt_block(block)
            assert out != block
            assert aes.decrypt_block(out) == block


class TestHashEdges:
    def test_hash_of_zero_label(self):
        h = GarblingHash()
        assert 0 <= h(0, 0) <= MASK128

    def test_hash_many_empty(self):
        assert GarblingHash().hash_many([], []) == []

    def test_gf_double_iterated_stays_in_field(self):
        v = 1
        for _ in range(300):
            v = gf_double(v)
            assert 0 <= v <= MASK128
        assert v != 0  # doubling is invertible, never collapses


class TestDrbgEdges:
    def test_large_read(self):
        drbg = TRNGSeededDRBG(seed=bytes(16))
        data = drbg.random_bytes(100_000)
        assert len(data) == 100_000
        # quick sanity: roughly balanced bits
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        assert 0.49 < bits.mean() < 0.51

    def test_sequential_reads_differ(self):
        drbg = TRNGSeededDRBG(seed=bytes(16))
        assert drbg.random_bytes(16) != drbg.random_bytes(16)

    def test_getrandbits_zero_width_edge(self):
        drbg = TRNGSeededDRBG(seed=bytes(16))
        assert drbg.getrandbits(1) in (0, 1)


class TestOtEdges:
    def test_single_pair_transfer(self):
        garbler, evaluator = local_channel()
        got = transfer_labels(
            garbler, evaluator, [(111, 222)], [1], TOY_GROUP, use_extension=False
        )
        assert got == [222]

    def test_zero_message_values(self):
        garbler, evaluator = local_channel()
        got = transfer_labels(
            garbler, evaluator, [(0, 1)], [0], TOY_GROUP, use_extension=False
        )
        assert got == [0]

    def test_extension_with_exactly_129_pairs(self):
        # one past the auto-extension threshold
        pairs = [(i, i + 1000) for i in range(129)]
        choices = [i % 2 for i in range(129)]
        garbler, evaluator = local_channel()
        got = transfer_labels(garbler, evaluator, pairs, choices, TOY_GROUP)
        assert got == [p[c] for p, c in zip(pairs, choices)]
        assert "ot.ext.u" in evaluator.sent.by_tag
