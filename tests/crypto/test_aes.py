"""AES-128 correctness against FIPS-197 and cross-path consistency."""

import numpy as np
import pytest

from repro.crypto.aes import (
    AES128,
    SBOX,
    INV_SBOX,
    expand_key,
    words_from_u128,
    u128_from_words,
)
from repro.errors import CryptoError

# FIPS-197 Appendix B example
FIPS_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
FIPS_PLAIN = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
FIPS_CIPHER = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

# FIPS-197 Appendix C.1 example
C1_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
C1_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
C1_CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


def test_sbox_known_entries():
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


def test_inv_sbox_is_inverse():
    for v in range(256):
        assert INV_SBOX[SBOX[v]] == v


def test_key_expansion_fips_appendix_a():
    words = expand_key(FIPS_KEY)
    assert words[4] == 0xA0FAFE17
    assert words[43] == 0xB6630CA6


def test_encrypt_fips_appendix_b():
    assert AES128(FIPS_KEY).encrypt_block(FIPS_PLAIN) == FIPS_CIPHER


def test_encrypt_fips_appendix_c1():
    assert AES128(C1_KEY).encrypt_block(C1_PLAIN) == C1_CIPHER


def test_decrypt_round_trips():
    aes = AES128(C1_KEY)
    assert aes.decrypt_block(C1_CIPHER) == C1_PLAIN
    rng = np.random.default_rng(7)
    for _ in range(20):
        block = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
        assert aes.decrypt_block(aes.encrypt_block(block)) == block


def test_u128_interface_matches_bytes():
    aes = AES128(FIPS_KEY)
    value = int.from_bytes(FIPS_PLAIN, "big")
    assert aes.encrypt_u128(value).to_bytes(16, "big") == FIPS_CIPHER


def test_batch_matches_scalar():
    aes = AES128(C1_KEY)
    rng = np.random.default_rng(11)
    blocks = rng.integers(0, 256, (64, 16), dtype=np.uint8).tobytes()
    batch_out = aes.encrypt_blocks(blocks)
    for i in range(64):
        scalar = aes.encrypt_block(blocks[16 * i : 16 * i + 16])
        assert batch_out[16 * i : 16 * i + 16] == scalar


def test_words_u128_round_trip():
    values = [0, 1, (1 << 128) - 1, 0x0123456789ABCDEF0123456789ABCDEF]
    assert u128_from_words(words_from_u128(values)) == values


def test_bad_key_and_block_sizes_raise():
    with pytest.raises(CryptoError):
        AES128(b"short")
    aes = AES128(FIPS_KEY)
    with pytest.raises(CryptoError):
        aes.encrypt_block(b"x" * 15)
    with pytest.raises(CryptoError):
        aes.decrypt_block(b"x" * 17)
    with pytest.raises(CryptoError):
        aes.encrypt_blocks(b"x" * 17)


def test_batch_rejects_bad_shape():
    aes = AES128(FIPS_KEY)
    with pytest.raises(CryptoError):
        aes.encrypt_words(np.zeros((4, 3), dtype=np.uint32))
