"""Ring-oscillator RNG simulation and NIST-style battery tests."""

import numpy as np
import pytest

from repro.crypto.randomness_tests import (
    ALL_TESTS,
    BatteryResult,
    run_battery,
)
from repro.crypto.rng import RingOscillator, RingOscillatorRNG, TRNGSeededDRBG
from repro.errors import ConfigurationError


class TestRingOscillator:
    def test_even_inverter_count_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            RingOscillator(5.0, rng, inverters=4)

    def test_sample_is_binary(self):
        ring = RingOscillator(5.0, np.random.default_rng(1))
        assert all(ring.sample() in (0, 1) for _ in range(100))

    def test_vectorised_sampling_is_binary_and_sized(self):
        ring = RingOscillator(5.0, np.random.default_rng(2))
        bits = ring.sample_bits(1000)
        assert bits.shape == (1000,)
        assert set(np.unique(bits)) <= {0, 1}


class TestRingOscillatorRNG:
    def test_needs_at_least_one_ring(self):
        with pytest.raises(ConfigurationError):
            RingOscillatorRNG(num_ros=0)

    def test_bit_accounting(self):
        trng = RingOscillatorRNG(seed=3)
        trng.bit()
        trng.bits(10)
        assert trng.bits_produced == 11

    def test_bytes_length(self):
        trng = RingOscillatorRNG(seed=4)
        assert len(trng.bytes(32)) == 32

    def test_output_roughly_balanced(self):
        trng = RingOscillatorRNG(seed=5)
        bits = trng.bits(20000)
        assert 0.45 < bits.mean() < 0.55

    def test_passes_battery(self):
        # The headline claim of Section 5.2: the RO-RNG passes the NIST
        # battery.  20 kbit keeps the test quick but meaningful.
        trng = RingOscillatorRNG(seed=6)
        result = run_battery(trng.bits(20000))
        assert result.passed, str(result)


class TestDRBG:
    def test_deterministic_from_seed(self):
        a = TRNGSeededDRBG(seed=bytes(range(16)))
        b = TRNGSeededDRBG(seed=bytes(range(16)))
        assert a.random_bytes(100) == b.random_bytes(100)

    def test_getrandbits_width(self):
        drbg = TRNGSeededDRBG(seed=bytes(16))
        for k in (1, 7, 128, 129):
            assert drbg.getrandbits(k) < (1 << k)

    def test_bad_seed_length(self):
        with pytest.raises(ConfigurationError):
            TRNGSeededDRBG(seed=b"short")

    def test_seeds_from_trng(self):
        drbg = TRNGSeededDRBG(trng=RingOscillatorRNG(seed=7))
        assert len(drbg.random_bytes(16)) == 16

    def test_passes_battery(self):
        drbg = TRNGSeededDRBG(seed=b"\x42" * 16)
        bits = np.unpackbits(np.frombuffer(drbg.random_bytes(4000), dtype=np.uint8))
        assert run_battery(bits).passed


class TestBattery:
    def test_all_ones_fails(self):
        bits = np.ones(20000, dtype=np.uint8)
        result = run_battery(bits)
        assert not result.passed
        assert "monobit" in result.failures

    def test_alternating_fails_runs(self):
        bits = np.tile(np.array([0, 1], dtype=np.uint8), 10000)
        result = run_battery(bits)
        assert not result.passed

    def test_periodic_fails_spectral_or_serial(self):
        pattern = np.array([1, 1, 0, 1, 0, 0, 1, 0], dtype=np.uint8)
        bits = np.tile(pattern, 2500)
        result = run_battery(bits)
        assert not result.passed

    def test_good_sequence_passes_each_test(self):
        rng = np.random.default_rng(8)
        bits = rng.integers(0, 2, 20000).astype(np.uint8)
        for name, fn in ALL_TESTS.items():
            assert fn(bits) >= 0.01, name

    def test_too_short_sequence_raises(self):
        with pytest.raises(ConfigurationError):
            run_battery(np.ones(10, dtype=np.uint8))

    def test_result_string_rendering(self):
        result = BatteryResult({"monobit": 0.5, "runs": 0.001})
        text = str(result)
        assert "FAIL" in text and "monobit" in text


class TestMatrixRank:
    def test_random_sequence_passes(self):
        from repro.crypto.randomness_tests import binary_matrix_rank

        rng = np.random.default_rng(12)
        bits = rng.integers(0, 2, 32 * 32 * 40).astype(np.uint8)
        assert binary_matrix_rank(bits) >= 0.01

    def test_low_rank_sequence_fails(self):
        from repro.crypto.randomness_tests import binary_matrix_rank

        # constant rows -> every matrix far from full rank
        bits = np.tile(np.ones(32, dtype=np.uint8), 32 * 40)
        assert binary_matrix_rank(bits) < 0.01

    def test_gf2_rank_helper(self):
        from repro.crypto.randomness_tests import _gf2_rank

        eye = np.eye(8, dtype=np.uint8)
        assert _gf2_rank(eye) == 8
        assert _gf2_rank(np.zeros((8, 8), dtype=np.uint8)) == 0
        dup = eye.copy()
        dup[7] = dup[0]
        assert _gf2_rank(dup) == 7

    def test_included_in_battery(self):
        from repro.crypto.randomness_tests import ALL_TESTS

        assert "binary_matrix_rank" in ALL_TESTS

    def test_trng_passes_rank_test(self):
        from repro.crypto.randomness_tests import binary_matrix_rank
        from repro.crypto.rng import TRNGSeededDRBG

        drbg = TRNGSeededDRBG(seed=b"\x21" * 16)
        bits = np.unpackbits(
            np.frombuffer(drbg.random_bytes(32 * 32 * 40 // 8), dtype=np.uint8)
        )
        assert binary_matrix_rank(bits) >= 0.01
