"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_table1(capsys):
    out = run_cli(capsys, "table1")
    assert "LUTRAM" in out


def test_table2(capsys):
    out = run_cli(capsys, "table2")
    assert "MAXelerator" in out and "985x" in out


def test_table3(capsys):
    out = run_cli(capsys, "table3")
    assert "communities11.IV" in out


def test_recommender(capsys):
    out = run_cli(capsys, "recommender")
    assert "2.9 h" in out


def test_portfolio(capsys):
    out = run_cli(capsys, "portfolio")
    assert "15.23" in out


def test_schedule(capsys):
    out = run_cli(capsys, "schedule", "-b", "8")
    assert "cycles/MAC: 24" in out


def test_serving(capsys):
    out = run_cli(capsys, "serving", "-b", "32")
    assert "bottleneck" in out


def test_demo(capsys):
    out = run_cli(capsys, "demo", "--seed", "3")
    assert "privately computed" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_sweep(capsys):
    out = run_cli(capsys, "sweep")
    assert "MAXelerator" in out and "64" in out


def test_chaos_recovery_profile(capsys):
    out = run_cli(
        capsys,
        "chaos",
        "--profile", "recovery",
        "--sessions", "2",
        "--seed", "3",
        "--deadline", "30.0",
    )
    assert "profile=recovery" in out
    assert "0 violations" in out


def test_chaos_log_and_replay_roundtrip(capsys, tmp_path):
    log = tmp_path / "replay.jsonl"
    out = run_cli(
        capsys,
        "chaos",
        "--sessions", "2",
        "--seed", "1",
        "--transports", "memory",
        "--log", str(log),
    )
    assert "chaos run" in out
    assert log.exists()
    replay_out = run_cli(capsys, "chaos", "--replay", str(log))
    assert "0 violations" in replay_out


def test_chaos_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        main(["chaos", "--profile", "bogus"])


def test_serve(capsys):
    out = run_cli(
        capsys,
        "serve",
        "--clients", "2",
        "--requests", "1",
        "--workers", "2",
        "--pool", "2",
        "--rounds", "2",
    )
    assert "served 2 requests" in out
    assert "pool hit rate" in out
    assert "serving telemetry" in out
    assert "request.latency" in out
