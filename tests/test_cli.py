"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.__main__ import main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def test_table1(capsys):
    out = run_cli(capsys, "table1")
    assert "LUTRAM" in out


def test_table2(capsys):
    out = run_cli(capsys, "table2")
    assert "MAXelerator" in out and "985x" in out


def test_table3(capsys):
    out = run_cli(capsys, "table3")
    assert "communities11.IV" in out


def test_recommender(capsys):
    out = run_cli(capsys, "recommender")
    assert "2.9 h" in out


def test_portfolio(capsys):
    out = run_cli(capsys, "portfolio")
    assert "15.23" in out


def test_schedule(capsys):
    out = run_cli(capsys, "schedule", "-b", "8")
    assert "cycles/MAC: 24" in out


def test_serving(capsys):
    out = run_cli(capsys, "serving", "-b", "32")
    assert "bottleneck" in out


def test_demo(capsys):
    out = run_cli(capsys, "demo", "--seed", "3")
    assert "privately computed" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_sweep(capsys):
    out = run_cli(capsys, "sweep")
    assert "MAXelerator" in out and "64" in out


def test_serve(capsys):
    out = run_cli(
        capsys,
        "serve",
        "--clients", "2",
        "--requests", "1",
        "--workers", "2",
        "--pool", "2",
        "--rounds", "2",
    )
    assert "served 2 requests" in out
    assert "pool hit rate" in out
    assert "serving telemetry" in out
    assert "request.latency" in out
