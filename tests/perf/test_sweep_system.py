"""Sweep utility unit tests (the bench covers the figure itself)."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.sweep import SweepPoint, format_sweep, throughput_sweep


class TestSweep:
    def test_default_covers_4_to_64(self):
        points = throughput_sweep()
        widths = [p.bitwidth for p in points]
        assert widths[0] == 4 and widths[-1] == 64
        assert all(b % 2 == 0 for b in widths)

    def test_published_points_on_curve(self):
        by_b = {p.bitwidth: p for p in throughput_sweep([8, 16, 32])}
        assert by_b[8].maxelerator == pytest.approx(1.04e6, rel=0.01)
        assert by_b[16].tinygarble == pytest.approx(6.25e3, rel=0.01)
        assert by_b[32].overlay == pytest.approx(126, rel=0.03)

    def test_speedups(self):
        point = SweepPoint(8, 100.0, 2.0, 0.5)
        assert point.speedup_vs_software == 50
        assert point.speedup_vs_overlay == 200

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            throughput_sweep([1])

    def test_format_renders(self):
        text = format_sweep(throughput_sweep([8, 32]))
        assert "MAXelerator" in text
        assert text.count("\n") >= 3
