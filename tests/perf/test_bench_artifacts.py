"""The committed ``BENCH_garble.json`` artifact: shape and acceptance.

The vector-garbling bench commits its output at the repository root so
the perf trajectory is reviewable in diffs.  These tests pin the
artifact's contract: it must exist, parse, carry the full
schema/metadata/metrics/derived shape (validated by the bench's own
``structural_errors``, so the bench and the tests cannot drift apart),
and record the tentpole's acceptance numbers — vectorized >= 3x
sequential tables/s at an effective AES batch >= 64 AND gates.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARTIFACT = REPO_ROOT / "BENCH_garble.json"


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_vector_garble", REPO_ROOT / "benchmarks" / "bench_vector_garble.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module()


@pytest.fixture(scope="module")
def doc():
    assert ARTIFACT.exists(), (
        "BENCH_garble.json is missing — regenerate it with "
        "`python benchmarks/bench_vector_garble.py`"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_structurally_valid(self, bench, doc):
        assert bench.structural_errors(doc) == []

    def test_schema_and_provenance(self, bench, doc):
        assert doc["schema_version"] == bench.SCHEMA_VERSION
        assert doc["artifact"] == "BENCH_garble.json"
        assert doc["generated_by"] == "benchmarks/bench_vector_garble.py"
        # git_rev is a short hex rev (or the explicit "unknown" fallback)
        rev = doc["git_rev"]
        assert rev == "unknown" or (
            4 <= len(rev) <= 40 and all(c in "0123456789abcdef" for c in rev)
        )
        assert isinstance(doc["seed"], int)

    def test_config_records_the_run_parameters(self, bench, doc):
        config = doc["config"]
        assert set(bench.CONFIG_KEYS) <= set(config)
        assert config["bitwidth"] >= 2
        assert config["rounds"] >= 1
        assert config["runs"] >= 1
        assert isinstance(config["smoke"], bool)

    def test_metrics_cover_both_modes_with_units_in_keys(self, bench, doc):
        assert set(doc["metrics"]) == {"sequential", "vectorized"}
        for mode, entry in doc["metrics"].items():
            assert set(entry) == set(bench.METRIC_KEYS), mode
            for key, value in entry.items():
                assert isinstance(value, (int, float)) and value >= 0, (mode, key)

    def test_sequential_mode_is_the_four_calls_per_gate_reference(self, doc):
        assert doc["metrics"]["sequential"]["aes_invocations_per_gate"] == 4.0

    def test_check_mode_accepts_the_committed_artifact(self, bench, doc):
        """The CI bench-smoke gate: a fresh run's shape must match the
        committed artifact's (stale artifacts fail here first)."""
        errors = bench.check_artifact(ARTIFACT, doc)
        assert errors == []


class TestAcceptanceNumbers:
    def test_committed_run_is_not_a_smoke_run(self, doc):
        assert doc["config"]["smoke"] is False, (
            "the committed artifact must come from a full run, not --smoke"
        )

    def test_vectorized_speedup_at_least_3x(self, doc):
        assert doc["derived"]["speedup_tables_per_s"] >= 3.0

    def test_effective_batch_at_least_64_gates_per_aes_call(self, doc):
        assert doc["derived"]["effective_batch_per_aes_call"] >= 64.0

    def test_vectorized_amortizes_aes_below_one_call_per_gate(self, doc):
        assert doc["metrics"]["vectorized"]["aes_invocations_per_gate"] < 1.0
