"""The committed bench artifacts: shape and acceptance.

Each benchmark commits its output at the repository root so the perf
trajectory is reviewable in diffs.  These tests pin the artifacts'
contracts: they must exist, parse, carry the full
schema/metadata/metrics/derived shape (validated by each bench's own
``structural_errors``, so the bench and the tests cannot drift apart),
and record their acceptance numbers — for ``BENCH_garble.json``,
vectorized >= 3x sequential tables/s at an effective AES batch >= 64
AND gates; for ``BENCH_backends.json``, HE completing every workload
in one round trip at fewer bytes than GC.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARTIFACT = REPO_ROOT / "BENCH_garble.json"
BACKENDS_ARTIFACT = REPO_ROOT / "BENCH_backends.json"
RING_ARTIFACT = REPO_ROOT / "BENCH_ring.json"
FLEET_ARTIFACT = REPO_ROOT / "BENCH_fleet.json"
SLO_ARTIFACT = REPO_ROOT / "BENCH_slo.json"


def _load_bench_module(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def bench():
    return _load_bench_module("bench_vector_garble")


@pytest.fixture(scope="module")
def doc():
    assert ARTIFACT.exists(), (
        "BENCH_garble.json is missing — regenerate it with "
        "`python benchmarks/bench_vector_garble.py`"
    )
    return json.loads(ARTIFACT.read_text())


class TestArtifactShape:
    def test_structurally_valid(self, bench, doc):
        assert bench.structural_errors(doc) == []

    def test_schema_and_provenance(self, bench, doc):
        assert doc["schema_version"] == bench.SCHEMA_VERSION
        assert doc["artifact"] == "BENCH_garble.json"
        assert doc["generated_by"] == "benchmarks/bench_vector_garble.py"
        # git_rev is a short hex rev (or the explicit "unknown" fallback)
        rev = doc["git_rev"]
        assert rev == "unknown" or (
            4 <= len(rev) <= 40 and all(c in "0123456789abcdef" for c in rev)
        )
        assert isinstance(doc["seed"], int)

    def test_config_records_the_run_parameters(self, bench, doc):
        config = doc["config"]
        assert set(bench.CONFIG_KEYS) <= set(config)
        assert config["bitwidth"] >= 2
        assert config["rounds"] >= 1
        assert config["runs"] >= 1
        assert isinstance(config["smoke"], bool)

    def test_metrics_cover_both_modes_with_units_in_keys(self, bench, doc):
        assert set(doc["metrics"]) == {"sequential", "vectorized"}
        for mode, entry in doc["metrics"].items():
            assert set(entry) == set(bench.METRIC_KEYS), mode
            for key, value in entry.items():
                assert isinstance(value, (int, float)) and value >= 0, (mode, key)

    def test_sequential_mode_is_the_four_calls_per_gate_reference(self, doc):
        assert doc["metrics"]["sequential"]["aes_invocations_per_gate"] == 4.0

    def test_check_mode_accepts_the_committed_artifact(self, bench, doc):
        """The CI bench-smoke gate: a fresh run's shape must match the
        committed artifact's (stale artifacts fail here first)."""
        errors = bench.check_artifact(ARTIFACT, doc)
        assert errors == []


class TestAcceptanceNumbers:
    def test_committed_run_is_not_a_smoke_run(self, doc):
        assert doc["config"]["smoke"] is False, (
            "the committed artifact must come from a full run, not --smoke"
        )

    def test_vectorized_speedup_at_least_3x(self, doc):
        assert doc["derived"]["speedup_tables_per_s"] >= 3.0

    def test_effective_batch_at_least_64_gates_per_aes_call(self, doc):
        assert doc["derived"]["effective_batch_per_aes_call"] >= 64.0

    def test_vectorized_amortizes_aes_below_one_call_per_gate(self, doc):
        assert doc["metrics"]["vectorized"]["aes_invocations_per_gate"] < 1.0


# ----------------------------------------------------------------------
# BENCH_backends.json — the GC-vs-HE comparison artifact
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def backends_bench():
    return _load_bench_module("bench_backends")


@pytest.fixture(scope="module")
def backends_doc():
    assert BACKENDS_ARTIFACT.exists(), (
        "BENCH_backends.json is missing — regenerate it with "
        "`python benchmarks/bench_backends.py`"
    )
    return json.loads(BACKENDS_ARTIFACT.read_text())


class TestBackendsArtifactShape:
    def test_structurally_valid(self, backends_bench, backends_doc):
        assert backends_bench.structural_errors(backends_doc) == []

    def test_schema_and_provenance(self, backends_bench, backends_doc):
        assert backends_doc["schema_version"] == backends_bench.SCHEMA_VERSION
        assert backends_doc["artifact"] == "BENCH_backends.json"
        assert backends_doc["generated_by"] == "benchmarks/bench_backends.py"
        rev = backends_doc["git_rev"]
        assert rev == "unknown" or (
            4 <= len(rev) <= 40 and all(c in "0123456789abcdef" for c in rev)
        )
        assert isinstance(backends_doc["seed"], int)

    def test_every_workload_covers_both_backends(self, backends_bench,
                                                 backends_doc):
        assert backends_doc["metrics"], "metrics must name at least one workload"
        for workload, entry in backends_doc["metrics"].items():
            assert set(entry) == {"gc", "he"}, workload
            for backend, m in entry.items():
                assert set(m) == set(backends_bench.METRIC_KEYS), (workload, backend)

    def test_config_names_the_workload_shapes(self, backends_doc):
        workloads = backends_doc["config"]["workloads"]
        assert set(workloads) == set(backends_doc["metrics"])
        for shape in workloads.values():
            rows, cols = shape
            assert rows >= 1 and cols >= 1

    def test_check_mode_accepts_the_committed_artifact(self, backends_bench,
                                                       backends_doc):
        errors = backends_bench.check_artifact(BACKENDS_ARTIFACT, backends_doc)
        assert errors == []


class TestBackendsAcceptanceNumbers:
    def test_committed_run_is_not_a_smoke_run(self, backends_doc):
        assert backends_doc["config"]["smoke"] is False, (
            "the committed artifact must come from a full run, not --smoke"
        )

    def test_he_is_single_round_trip(self, backends_doc):
        assert backends_doc["derived"]["he_round_trips_per_query"] == 1.0
        for workload, entry in backends_doc["metrics"].items():
            assert entry["he"]["round_trips_per_query"] == 1.0, workload
            assert entry["gc"]["round_trips_per_query"] > 1.0, workload

    def test_he_moves_fewer_bytes_on_every_workload(self, backends_doc):
        for workload, entry in backends_doc["metrics"].items():
            assert (
                entry["he"]["bytes_per_query"] < entry["gc"]["bytes_per_query"]
            ), workload
        assert backends_doc["derived"]["mean_bytes_ratio_gc_over_he"] > 1.0


# ----------------------------------------------------------------------
# BENCH_ring.json — the multi-tenant fairness/utilization artifact
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ring_bench():
    return _load_bench_module("bench_ring")


@pytest.fixture(scope="module")
def ring_doc():
    assert RING_ARTIFACT.exists(), (
        "BENCH_ring.json is missing — regenerate it with "
        "`python benchmarks/bench_ring.py`"
    )
    return json.loads(RING_ARTIFACT.read_text())


class TestRingArtifactShape:
    def test_structurally_valid(self, ring_bench, ring_doc):
        assert ring_bench.structural_errors(ring_doc) == []

    def test_schema_and_provenance(self, ring_bench, ring_doc):
        assert ring_doc["schema_version"] == ring_bench.SCHEMA_VERSION
        assert ring_doc["artifact"] == "BENCH_ring.json"
        assert ring_doc["generated_by"] == "benchmarks/bench_ring.py"
        rev = ring_doc["git_rev"]
        assert rev == "unknown" or (
            4 <= len(rev) <= 40 and all(c in "0123456789abcdef" for c in rev)
        )
        assert isinstance(ring_doc["seed"], int)

    def test_metrics_cover_both_scenarios_with_per_tenant_p99(
        self, ring_bench, ring_doc
    ):
        assert set(ring_doc["metrics"]) == set(ring_bench.SCENARIOS)
        for scenario, entry in ring_doc["metrics"].items():
            assert set(ring_bench.METRIC_KEYS) <= set(entry), scenario
            per_tenant = entry[ring_bench.PER_TENANT_KEY]
            assert len(per_tenant) == ring_doc["config"]["n_tenants"], scenario

    def test_check_mode_accepts_the_committed_artifact(self, ring_bench,
                                                       ring_doc):
        errors = ring_bench.check_artifact(RING_ARTIFACT, ring_doc)
        assert errors == []


class TestRingAcceptanceNumbers:
    """The PR 8 acceptance gate: 8 tenants on 4 cores at saturation."""

    def test_committed_run_is_not_a_smoke_run(self, ring_doc):
        assert ring_doc["config"]["smoke"] is False, (
            "the committed artifact must come from a full run, not --smoke"
        )

    def test_acceptance_configuration(self, ring_doc):
        assert ring_doc["config"]["n_tenants"] == 8
        assert ring_doc["config"]["n_cores"] == 4

    def test_saturated_utilization_at_least_090(self, ring_doc):
        assert ring_doc["metrics"]["saturated"]["utilization"] >= 0.90

    def test_saturated_jain_at_least_09(self, ring_doc):
        assert ring_doc["metrics"]["saturated"]["jain"] >= 0.9

    def test_mixed_weights_stay_fair_weight_normalized(self, ring_doc):
        assert ring_doc["metrics"]["mixed"]["jain_weighted"] >= 0.9

    def test_cobatching_saves_aes_work(self, ring_doc):
        derived = ring_doc["derived"]
        assert derived["cobatch_runs_per_batch"] > 1.0
        assert derived["cobatch_aes_savings"] > 0.0


# ----------------------------------------------------------------------
# BENCH_fleet.json — the process-fleet resilience artifact
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_bench():
    return _load_bench_module("bench_fleet")


@pytest.fixture(scope="module")
def fleet_doc():
    assert FLEET_ARTIFACT.exists(), (
        "BENCH_fleet.json is missing — regenerate it with "
        "`python benchmarks/bench_fleet.py`"
    )
    return json.loads(FLEET_ARTIFACT.read_text())


class TestFleetArtifactShape:
    def test_structurally_valid(self, fleet_bench, fleet_doc):
        assert fleet_bench.structural_errors(fleet_doc) == []

    def test_schema_and_provenance(self, fleet_bench, fleet_doc):
        assert fleet_doc["schema_version"] == fleet_bench.SCHEMA_VERSION
        assert fleet_doc["artifact"] == "BENCH_fleet.json"
        assert fleet_doc["generated_by"] == "benchmarks/bench_fleet.py"
        rev = fleet_doc["git_rev"]
        assert rev == "unknown" or (
            4 <= len(rev) <= 40 and all(c in "0123456789abcdef" for c in rev)
        )
        assert isinstance(fleet_doc["seed"], int)

    def test_metrics_cover_all_three_scenarios(self, fleet_bench, fleet_doc):
        assert set(fleet_doc["metrics"]) == set(fleet_bench.SCENARIOS)
        for scenario, entry in fleet_doc["metrics"].items():
            assert set(fleet_bench.METRIC_KEYS) <= set(entry), scenario
            assert entry["sessions"] == (
                fleet_doc["config"]["sessions_per_scenario"]
            ), scenario

    def test_check_mode_accepts_the_committed_artifact(self, fleet_bench,
                                                       fleet_doc):
        errors = fleet_bench.check_artifact(FLEET_ARTIFACT, fleet_doc)
        assert errors == []


class TestFleetAcceptanceNumbers:
    """The PR 9 acceptance gate: N = 4 real processes, every faulted
    session recovering to the bit-identical result.  Wall-clock numbers
    are machine-dependent, so the thresholds bind the machine-independent
    half (fractions, process count, positivity)."""

    def test_committed_run_is_not_a_smoke_run(self, fleet_doc):
        assert fleet_doc["config"]["smoke"] is False, (
            "the committed artifact must come from a full run, not --smoke"
        )

    def test_acceptance_configuration_is_four_processes(self, fleet_doc):
        assert fleet_doc["config"]["members"] == 4
        assert fleet_doc["config"]["rounds"] >= 2

    def test_every_scenario_is_bit_exact_and_recovered(self, fleet_doc):
        for scenario, entry in fleet_doc["metrics"].items():
            assert entry["bit_exact_fraction"] == 1.0, scenario
            assert entry["recovered_fraction"] == 1.0, scenario

    def test_throughput_and_fault_costs_are_positive(self, fleet_doc):
        derived = fleet_doc["derived"]
        assert derived["steady_sessions_per_s"] > 0.0
        assert derived["resume_latency_p99_s"] > 0.0
        assert derived["handoff_cost_p50_s"] > 0.0
        assert derived["handoff_cost_p99_s"] >= derived["handoff_cost_p50_s"]

    def test_steady_sessions_pay_no_fault_cost(self, fleet_doc):
        steady = fleet_doc["metrics"]["steady"]
        assert steady["fault_to_result_p50_s"] == 0.0
        assert steady["fault_to_result_p99_s"] == 0.0

    def test_handoff_costs_at_least_the_lease_ttl(self, fleet_doc):
        """A SIGKILL handoff cannot beat the lease clock: the adopter
        must wait out the leaked lease before stealing it."""
        assert fleet_doc["derived"]["handoff_cost_p50_s"] >= (
            fleet_doc["config"]["lease_ttl_s"]
        )


# ----------------------------------------------------------------------
# BENCH_slo.json — the SLO-knee artifact of the adaptive control loop
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def slo_bench():
    return _load_bench_module("bench_slo_knee")


@pytest.fixture(scope="module")
def slo_doc():
    assert SLO_ARTIFACT.exists(), (
        "BENCH_slo.json is missing — regenerate it with "
        "`python benchmarks/bench_slo_knee.py`"
    )
    return json.loads(SLO_ARTIFACT.read_text())


class TestSloArtifactShape:
    def test_structurally_valid(self, slo_bench, slo_doc):
        assert slo_bench.structural_errors(slo_doc) == []

    def test_schema_and_provenance(self, slo_bench, slo_doc):
        assert slo_doc["schema_version"] == slo_bench.SCHEMA_VERSION
        assert slo_doc["artifact"] == "BENCH_slo.json"
        assert slo_doc["generated_by"] == "benchmarks/bench_slo_knee.py"
        rev = slo_doc["git_rev"]
        assert rev == "unknown" or (
            4 <= len(rev) <= 40 and all(c in "0123456789abcdef" for c in rev)
        )
        assert isinstance(slo_doc["seed"], int)

    def test_ramp_covers_the_configured_rate_range(self, slo_bench, slo_doc):
        ramp = slo_doc["metrics"]["ramp"]
        config = slo_doc["config"]
        assert ramp[0]["rate_qps"] == config["rate_start_qps"]
        assert ramp[-1]["rate_qps"] <= config["rate_stop_qps"]
        rates = [entry["rate_qps"] for entry in ramp]
        assert rates == sorted(rates)
        for entry in ramp:
            assert set(entry) == set(slo_bench.LEVEL_KEYS)

    def test_check_mode_accepts_the_committed_artifact(self, slo_bench,
                                                       slo_doc):
        errors = slo_bench.check_artifact(SLO_ARTIFACT, slo_doc)
        assert errors == []


class TestSloAcceptanceNumbers:
    """The PR 10 acceptance gate: the controller absorbs load up to a
    measured knee and sheds beyond it.  The ramp is bit-deterministic
    (the controller is a pure function of its sample trace), so the
    thresholds bind the simulated half; the real-latency calibration in
    ``derived`` is machine-dependent context and only needs positivity."""

    def test_committed_run_is_not_a_smoke_run(self, slo_doc):
        assert slo_doc["config"]["smoke"] is False, (
            "the committed artifact must come from a full run, not --smoke"
        )

    def test_knee_exists_inside_the_ramp(self, slo_doc):
        knee = slo_doc["metrics"]["knee"]
        config = slo_doc["config"]
        assert config["rate_start_qps"] <= knee["knee_qps"] < config["rate_stop_qps"]
        assert knee["p99_ms_at_knee"] <= config["p99_target_ms"]

    def test_knee_reaches_the_model_capacity(self, slo_doc):
        """The controller must not leave throughput on the table: the
        knee has to land within one ramp step of the worker pool's raw
        capacity (max_workers / service_time)."""
        config = slo_doc["config"]
        capacity = config["max_workers"] * 1000.0 / config["service_time_ms"]
        assert slo_doc["metrics"]["knee"]["knee_qps"] >= (
            capacity - config["rate_step_qps"]
        )

    def test_every_below_knee_level_is_shed_free(self, slo_doc):
        knee_qps = slo_doc["metrics"]["knee"]["knee_qps"]
        for entry in slo_doc["metrics"]["ramp"]:
            if entry["rate_qps"] <= knee_qps:
                assert entry["sustainable"], entry
                assert entry["shed"] == 0, entry
                assert entry["shed_probability"] == 0.0, entry

    def test_past_knee_levels_engage_shedding(self, slo_doc):
        knee = slo_doc["metrics"]["knee"]
        assert knee["first_shed_qps"] > knee["knee_qps"]
        hot = [
            entry for entry in slo_doc["metrics"]["ramp"]
            if entry["rate_qps"] >= knee["first_shed_qps"]
        ]
        assert hot, "the ramp never crossed the knee"
        for entry in hot:
            assert not entry["sustainable"], entry
            assert entry["shed_probability"] > 0.0, entry

    def test_workers_scale_with_the_ramp(self, slo_doc):
        """The knee must come from adaptation, not a static pool: the
        ramp has to show intermediate worker counts between min and max."""
        config = slo_doc["config"]
        workers_seen = {entry["workers"] for entry in slo_doc["metrics"]["ramp"]}
        assert min(workers_seen) <= config["min_workers"] + 1
        assert max(workers_seen) == config["max_workers"]
        assert len(workers_seen) >= 3

    def test_calibration_is_positive(self, slo_doc):
        derived = slo_doc["derived"]
        assert derived["measured_service_p50_ms"] > 0.0
        assert derived["measured_service_p99_ms"] >= (
            derived["measured_service_p50_ms"]
        )
        assert derived["capacity_model_qps"] > 0.0
