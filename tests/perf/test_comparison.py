"""Table 2 regeneration tests: every row and the headline ratios."""

import pytest

from repro.perf.comparison import PAPER_RATIOS, Table2
from repro.perf.timing import PerfRow, dot_product_time_s, matmul_time_s

PAPER_TABLE2 = {
    # framework -> b -> (cycles/MAC, time us, throughput, cores, thr/core)
    "tinygarble": {
        8: (1.44e5, 42.29, 2.36e4, 1, 2.36e4),
        16: (5.45e5, 160.35, 6.24e3, 1, 6.24e3),
        32: (2.24e6, 657.65, 1.52e3, 1, 1.52e3),
    },
    "overlay": {
        8: (4.40e3, 22.0, 4.55e4, 43, 1.06e3),
        16: (1.20e4, 60.0, 1.67e4, 43, 3.88e2),
        32: (3.60e4, 180.0, 5.56e3, 43, 1.29e2),
    },
    "maxelerator": {
        8: (24, 0.12, 8.33e6, 8, 1.04e6),
        16: (48, 0.24, 4.17e6, 14, 2.98e5),
        32: (96, 0.48, 2.08e6, 24, 8.68e4),
    },
}


@pytest.fixture(scope="module")
def table():
    return Table2.build()


class TestTable2Rows:
    @pytest.mark.parametrize("framework", ["tinygarble", "overlay", "maxelerator"])
    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_every_cell_within_tolerance(self, table, framework, b):
        cycles, time_us, thr, cores, thr_core = PAPER_TABLE2[framework][b]
        row = table.row(framework, b)
        tol = 0.07  # worst model deviation (TinyGarble b=32) is ~6%
        assert row.cycles_per_mac == pytest.approx(cycles, rel=tol)
        assert row.time_per_mac_us == pytest.approx(time_us, rel=tol)
        assert row.macs_per_second == pytest.approx(thr, rel=tol)
        assert row.n_cores == cores
        assert row.macs_per_second_per_core == pytest.approx(thr_core, rel=tol)

    @pytest.mark.parametrize("framework", ["tinygarble", "overlay"])
    @pytest.mark.parametrize("b", [8, 16, 32])
    def test_headline_ratios(self, table, framework, b):
        # 44/48/57 and 985/768/672: who wins and by what factor
        model = table.speedup_per_core(framework, b)
        paper = PAPER_RATIOS[framework][b]
        assert model == pytest.approx(paper, rel=0.07)

    def test_max_speedup_near_57(self, table):
        assert 50 <= table.max_speedup_vs_software() <= 57

    def test_winner_is_always_maxelerator(self, table):
        for b in (8, 16, 32):
            max_thr = table.row("maxelerator", b).macs_per_second_per_core
            for fw in ("tinygarble", "overlay"):
                assert max_thr > table.row(fw, b).macs_per_second_per_core

    def test_format_renders_all_sections(self, table):
        text = table.format()
        assert "TinyGarble" in text and "Overlay" in text and "MAXelerator" in text
        assert "985x" in text


class TestPerfRowHelpers:
    def test_dot_product_and_matmul_time(self):
        row = PerfRow("x", 8, 24, 1e-6, 2)
        assert dot_product_time_s(row, 100) == pytest.approx(1e-4)
        assert matmul_time_s(row, 2, 3, 4) == pytest.approx(24e-6)

    def test_throughput_ratio(self):
        slow = PerfRow("slow", 8, 0, 1e-3, 1)
        fast = PerfRow("fast", 8, 0, 1e-6, 10)
        assert slow.throughput_ratio_vs(fast) == pytest.approx(100.0)
