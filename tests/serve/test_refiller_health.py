"""A dying refiller must not fail silently: it sets a health flag the
serving layer reports (satellite of the fault-injection PR).

Before this PR, an exception in the refill loop killed the daemon
thread and every subsequent request quietly degraded to on-demand
garbling — correct results, silently worse latency, no signal.
"""

import time

import numpy as np
import pytest

from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.serve import PoolRefiller, ServingConfig, ServingServer
from repro.telemetry import MetricsRegistry


@pytest.fixture
def server():
    return CloudServer(
        np.array([[0.5, -0.25], [1.0, 0.75]]),
        Q8_4,
        pool_size=1,
        seed=0,
        auto_refill=False,
        telemetry=MetricsRegistry(),
    )


def _wait_for(predicate, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestRefillerHealthFlag:
    def test_healthy_while_running(self, server):
        with PoolRefiller(server, poll_interval_s=0.01) as refiller:
            assert refiller.healthy
            assert refiller.last_error is None
            assert _wait_for(lambda: server.pool_level == server.pool_size)

    def test_crash_sets_the_flag_and_counter(self, server, monkeypatch):
        refiller = PoolRefiller(server, poll_interval_s=0.01)

        def explode():
            raise RuntimeError("garbling backend fell over")

        monkeypatch.setattr(server, "refill_pool", explode)
        refiller.start()
        try:
            assert _wait_for(lambda: not refiller.healthy)
            assert isinstance(refiller.last_error, RuntimeError)
            assert not refiller.running  # the loop died, loudly flagged
            counters = server.telemetry.snapshot()["counters"]
            assert counters["refill.crashes"] == 1
        finally:
            refiller.stop()


class TestServingHealthReport:
    def test_healthy_server_reports_healthy(self, server):
        config = ServingConfig(workers=1, queue_depth=2, refill=True,
                               refill_poll_s=0.01)
        with ServingServer(server, config) as serving:
            assert _wait_for(lambda: serving.health()["healthy"])
            health = serving.health()
            assert health["workers_alive"] == 1
            assert health["refiller_configured"]
            assert health["refiller_running"]
            assert health["refiller_healthy"]
            assert health["refiller_error"] is None

    def test_dead_refiller_flips_overall_health(self, server, monkeypatch):
        config = ServingConfig(workers=1, queue_depth=2, refill=True,
                               refill_poll_s=0.01)
        serving = ServingServer(server, config)

        def explode():
            raise RuntimeError("accelerator disappeared")

        monkeypatch.setattr(server, "refill_pool", explode)
        serving.start()
        try:
            assert _wait_for(lambda: not serving.health()["healthy"])
            health = serving.health()
            assert health["workers_alive"] == 1  # workers are fine
            assert not health["refiller_healthy"]
            assert not health["refiller_running"]
            assert "accelerator disappeared" in health["refiller_error"]
            # and requests still work — degraded on-demand, not broken
            assert serving.query(0, [0.5, 0.5], timeout=30.0) == pytest.approx(
                float(server.model[0] @ np.array([0.5, 0.5])), abs=1e-9
            )
        finally:
            serving.stop()

    def test_unconfigured_refiller_does_not_gate_health(self, server):
        config = ServingConfig(workers=1, queue_depth=2, refill=False)
        with ServingServer(server, config) as serving:
            health = serving.health()
            assert health["healthy"]
            assert not health["refiller_configured"]
            assert not health["refiller_running"]

    def test_stopped_server_is_unhealthy(self, server):
        config = ServingConfig(workers=1, queue_depth=2, refill=False)
        serving = ServingServer(server, config)
        assert not serving.health()["healthy"]  # never started
        serving.start()
        serving.stop()
        assert not serving.health()["healthy"]
