"""Property layer for the SLO controller: the four stability claims.

The :class:`~repro.serve.control.SLOController` is designed so that its
safety is *structural* — a pure function of (state, sample trace) with a
seeded shed stream — which makes every invariant below checkable by
hypothesis over arbitrary traces rather than hand-picked scenarios:

1. **Bounded knobs** — workers never leave ``[min_workers,
   max_workers]``, batch cap never leaves ``[min_batch, max_batch]``,
   shed probability never leaves ``[0, max_shed]``, for any trace.
2. **No flapping** — each knob moves at most once per
   ``cooldown_ticks`` window: consecutive changes of the same knob are
   always at least the cooldown apart.
3. **Convergence to zero shed** — under any sustained below-knee load,
   shed probability monotonically decays to exactly ``0.0`` and the
   retry-after hint returns to its floor.
4. **Bit-for-bit determinism** — the same (seed, trace, admission
   sequence) produces identical decision tuples and identical shed
   draws, run to run.

Counterexamples hypothesis ever finds get pinned as explicit
regressions in :class:`TestPinnedRegressions` so they re-run forever
even without shrinking.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.serve import LoadSample, SLOConfig, SLOController
from repro.serve.control import KNOBS
from repro.telemetry import MetricsRegistry

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

def configs() -> st.SearchStrategy:
    """Valid SLOConfigs with varied bounds, bands, and cooldowns."""

    def build(draw_tuple):
        (min_w, span_w, min_b, span_b, cooldown,
         low_p, high_extra, q_low, q_span, shed_step, max_shed) = draw_tuple
        return SLOConfig(
            p99_target_ms=50.0,
            min_workers=min_w,
            max_workers=min_w + span_w,
            min_batch=min_b,
            max_batch=min_b + span_b,
            cooldown_ticks=cooldown,
            low_pressure=low_p,
            high_pressure=low_p + high_extra,
            queue_low=q_low,
            queue_high=min(1.0, q_low + q_span),
            shed_step=shed_step,
            max_shed=max_shed,
        )

    return st.tuples(
        st.integers(min_value=1, max_value=4),       # min_workers
        st.integers(min_value=0, max_value=8),       # worker span
        st.integers(min_value=1, max_value=4),       # min_batch
        st.integers(min_value=0, max_value=8),       # batch span
        st.integers(min_value=1, max_value=6),       # cooldown_ticks
        st.floats(min_value=0.1, max_value=0.8),     # low_pressure
        st.floats(min_value=0.1, max_value=1.0),     # high - low gap
        st.floats(min_value=0.0, max_value=0.4),     # queue_low
        st.floats(min_value=0.1, max_value=0.9),     # queue span
        st.floats(min_value=0.05, max_value=0.5),    # shed_step
        st.floats(min_value=0.25, max_value=1.0),    # max_shed
    ).map(build)


def samples() -> st.SearchStrategy:
    """Arbitrary load observations, including the no-completions case
    (p99_ms == 0.0 means latency unknown this window)."""
    return st.builds(
        LoadSample,
        queue_depth=st.integers(min_value=0, max_value=64),
        queue_capacity=st.integers(min_value=1, max_value=64),
        inflight=st.integers(min_value=0, max_value=16),
        workers=st.integers(min_value=1, max_value=16),
        p50_ms=st.floats(min_value=0.0, max_value=500.0),
        p99_ms=st.floats(min_value=0.0, max_value=500.0),
    )


def traces(min_size=1, max_size=60) -> st.SearchStrategy:
    return st.lists(samples(), min_size=min_size, max_size=max_size)


def _idle(capacity: int = 16) -> LoadSample:
    """A clearly below-knee observation: empty queue, fast p99."""
    return LoadSample(
        queue_depth=0, queue_capacity=capacity, inflight=0, workers=1,
        p50_ms=1.0, p99_ms=1.0,
    )


def _saturated(capacity: int = 16) -> LoadSample:
    """A clearly past-knee observation: full queue, slow p99."""
    return LoadSample(
        queue_depth=capacity, queue_capacity=capacity, inflight=4,
        workers=1, p50_ms=400.0, p99_ms=400.0,
    )


# ---------------------------------------------------------------------------
# property 1: bounded knobs
# ---------------------------------------------------------------------------

class TestBoundedKnobs:
    @settings(max_examples=120, deadline=None)
    @given(config=configs(), trace=traces())
    def test_knobs_never_leave_their_bounds(self, config, trace):
        ctl = SLOController(config)
        for sample in trace:
            decision = ctl.tick(sample)
            assert config.min_workers <= decision.workers <= config.max_workers
            assert config.min_batch <= decision.batch_max <= config.max_batch
            assert 0.0 <= decision.shed_probability <= config.max_shed
            assert (
                config.retry_after_min_s
                <= decision.retry_after_s
                <= config.retry_after_max_s
            )
            # the decision mirrors the live operating point exactly
            op = ctl.operating_point
            assert (decision.workers, decision.batch_max) == (
                op.workers, op.batch_max
            )

    @settings(max_examples=60, deadline=None)
    @given(
        config=configs(),
        start_workers=st.integers(min_value=-5, max_value=32),
        start_batch=st.integers(min_value=-5, max_value=32),
    )
    def test_out_of_range_starts_are_clamped(
        self, config, start_workers, start_batch
    ):
        ctl = SLOController(config, workers=start_workers, batch_max=start_batch)
        op = ctl.operating_point
        assert config.min_workers <= op.workers <= config.max_workers
        assert config.min_batch <= op.batch_max <= config.max_batch


# ---------------------------------------------------------------------------
# property 2: no flapping — one move per knob per cooldown window
# ---------------------------------------------------------------------------

class TestNoFlap:
    @settings(max_examples=120, deadline=None)
    @given(config=configs(), trace=traces(max_size=80))
    def test_each_knob_moves_at_most_once_per_cooldown(self, config, trace):
        ctl = SLOController(config)
        last_moved: dict = {}
        for sample in trace:
            decision = ctl.tick(sample)
            # slew limit: a single tick moves at most one knob
            assert len(decision.changed) <= 1
            for knob in decision.changed:
                assert knob in KNOBS
                prev = last_moved.get(knob)
                if prev is not None:
                    assert decision.tick - prev >= config.cooldown_ticks, (
                        f"{knob} flapped: moved at tick {prev} and again at "
                        f"{decision.tick} (cooldown {config.cooldown_ticks})"
                    )
                last_moved[knob] = decision.tick

    def test_cooldown_holds_are_counted(self):
        tm = MetricsRegistry()
        config = SLOConfig(max_workers=8, cooldown_ticks=4)
        ctl = SLOController(config, telemetry=tm)
        for _ in range(4):
            ctl.tick(_saturated())
        counters = tm.snapshot()["counters"]
        assert counters["controller.scale_up"] == 1
        assert counters["controller.cooldown_holds"] == 3


# ---------------------------------------------------------------------------
# property 3: convergence to zero shed below the knee
# ---------------------------------------------------------------------------

class TestConvergence:
    @settings(max_examples=80, deadline=None)
    @given(config=configs(), hot_ticks=st.integers(min_value=1, max_value=40))
    def test_below_knee_load_converges_to_zero_shed(self, config, hot_ticks):
        """Any overload history, then sustained idle: shed decays to
        exactly zero and the retry-after hint returns to its floor."""
        ctl = SLOController(config)
        for _ in range(hot_ticks):
            ctl.tick(_saturated())
        # worst case: shed at max, one decay step per cooldown window
        steps = int(config.max_shed / config.shed_step) + 2
        budget = (steps + 1) * (config.cooldown_ticks + 1)
        sheds = []
        for _ in range(budget):
            decision = ctl.tick(_idle())
            sheds.append(decision.shed_probability)
        assert sheds[-1] == 0.0
        assert ctl.operating_point.retry_after_s == config.retry_after_min_s
        # and the decay is monotone: relaxing never raises shed
        for before, after in zip(sheds, sheds[1:]):
            assert after <= before
        # with shed at zero the controller never sheds a request
        assert not any(ctl.should_shed("anyone") for _ in range(32))

    @settings(max_examples=80, deadline=None)
    @given(config=configs(), trace=traces())
    def test_dead_band_holds_everything(self, config, trace):
        """A mid-band sample (neither overloaded nor underloaded) never
        moves any knob, from any state the trace drove the loop into."""
        ctl = SLOController(config)
        for sample in trace:
            ctl.tick(sample)
        mid_frac = (config.queue_low + config.queue_high) / 2.0
        capacity = 1000
        mid = LoadSample(
            queue_depth=min(
                capacity - 1, max(1, int(mid_frac * capacity) + 1)
            ),
            queue_capacity=capacity,
            p50_ms=0.0,
            p99_ms=0.0,  # latency unknown: only queue signals drive
        )
        # mid-band on the queue with unknown latency is a hold...
        if config.queue_low < mid.queue_depth / capacity < config.queue_high:
            before = ctl.operating_point.to_dict()
            decision = ctl.tick(mid)
            assert decision.changed == ()
            after = ctl.operating_point.to_dict()
            before["tick"] += 1
            assert after == before


# ---------------------------------------------------------------------------
# property 4: bit-for-bit determinism
# ---------------------------------------------------------------------------

def _run(config, trace, seed, draws_per_tick=3):
    """One full replay: decisions plus interleaved shed draws."""
    ctl = SLOController(config, seed=seed)
    out = []
    for i, sample in enumerate(trace):
        d = ctl.tick(sample)
        shed_bits = tuple(
            ctl.should_shed(f"tenant-{j}") for j in range(draws_per_tick)
        )
        out.append((d.tick, d.workers, d.batch_max, d.shed_probability,
                    d.retry_after_s, d.changed, shed_bits))
    out.append(tuple(sorted(ctl.operating_point.to_dict().items(),
                            key=lambda kv: kv[0])))
    return out


class TestDeterminism:
    @settings(max_examples=80, deadline=None)
    @given(
        config=configs(),
        trace=traces(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_same_seed_and_trace_replay_identically(self, config, trace, seed):
        assert _run(config, trace, seed) == _run(config, trace, seed)

    @settings(max_examples=40, deadline=None)
    @given(trace=traces(min_size=5, max_size=30))
    def test_distinct_seeds_shed_distinct_requests(self, trace):
        """The shed stream actually depends on the seed: force shed to
        max and compare long draw sequences under two seeds."""
        config = SLOConfig(max_workers=1, min_batch=1, max_batch=1,
                           cooldown_ticks=1, shed_step=0.5, max_shed=0.5)

        def draws(seed):
            ctl = SLOController(config, seed=seed)
            ctl.tick(_saturated())  # workers pinned, batch pinned -> shed up
            assert ctl.operating_point.shed_probability == 0.5
            return tuple(ctl.should_shed() for _ in range(256))

        a, b = draws(1), draws(2)
        assert any(a)  # at p=0.5 over 256 draws, some must shed...
        assert not all(a)  # ...and some must pass
        assert a != b

    def test_draw_stream_is_counter_indexed_not_stateful(self):
        """Restoring the operating point (draws counter included)
        resumes the exact same shed stream mid-flight."""
        config = SLOConfig(max_workers=1, max_batch=1, cooldown_ticks=1,
                           shed_step=0.5, max_shed=0.5)
        ctl = SLOController(config, seed=7)
        ctl.tick(_saturated())
        full = [ctl.should_shed() for _ in range(64)]

        ctl2 = SLOController(config, seed=7)
        ctl2.tick(_saturated())
        head = [ctl2.should_shed() for _ in range(20)]
        clone = SLOController(config, seed=7)
        clone.restore(ctl2.operating_point)
        tail = [clone.should_shed() for _ in range(44)]
        assert head + tail == full


# ---------------------------------------------------------------------------
# pinned regressions — explicit replays of hypothesis counterexamples
# ---------------------------------------------------------------------------

class TestPinnedRegressions:
    def test_shed_decay_rounds_exactly_to_zero(self):
        """Pinned: with shed_step=0.3 and max_shed=0.9, three decays
        must land on exactly 0.0, not 1e-17 float dust (the round(...)
        in the controller is what makes convergence *exact*)."""
        config = SLOConfig(max_workers=1, max_batch=1, cooldown_ticks=1,
                           shed_step=0.3, max_shed=0.9)
        ctl = SLOController(config)
        for _ in range(3):
            ctl.tick(_saturated())
        assert ctl.operating_point.shed_probability == pytest.approx(0.9)
        for _ in range(3):
            ctl.tick(_idle())
        assert ctl.operating_point.shed_probability == 0.0

    def test_zero_capacity_sample_does_not_divide_by_zero(self):
        """Pinned: a sample with queue_capacity=0 (a stopped server's
        snapshot) must not crash the tick; capacity floors at 1."""
        ctl = SLOController(SLOConfig())
        decision = ctl.tick(LoadSample(queue_depth=0, queue_capacity=0))
        assert decision.tick == 1

    def test_degenerate_single_point_bounds_hold_forever(self):
        """Pinned: min==max on every knob plus max_shed hit means the
        ladder tops out — further overload ticks change nothing and
        never report phantom moves."""
        config = SLOConfig(min_workers=2, max_workers=2, min_batch=3,
                           max_batch=3, cooldown_ticks=1, shed_step=1.0,
                           max_shed=1.0)
        ctl = SLOController(config)
        first = ctl.tick(_saturated())
        assert first.changed == ("shed",)
        for _ in range(10):
            decision = ctl.tick(_saturated())
            assert decision.changed == ()
            assert (decision.workers, decision.batch_max) == (2, 3)
            assert decision.shed_probability == 1.0

    def test_unknown_latency_alone_never_escalates(self):
        """Pinned: p99_ms == 0.0 (no completions) with a mid queue is a
        hold, not an overload — an idle-but-warm server must not creep
        its knobs on missing data."""
        config = SLOConfig(queue_low=0.25, queue_high=0.75)
        ctl = SLOController(config)
        for _ in range(12):
            decision = ctl.tick(
                LoadSample(queue_depth=8, queue_capacity=16, p99_ms=0.0)
            )
            assert decision.changed == ()

    def test_restore_reclamps_against_narrower_successor_bounds(self):
        """Pinned: a successor configured with fewer max workers must
        clamp an inherited wider operating point, not run outside its
        own envelope."""
        wide = SLOController(SLOConfig(max_workers=8, cooldown_ticks=1))
        for _ in range(7):
            wide.tick(_saturated())
        assert wide.operating_point.workers == 8
        narrow = SLOController(SLOConfig(max_workers=3))
        narrow.restore(wide.operating_point)
        assert narrow.operating_point.workers == 3
        assert narrow.operating_point.tick == wide.operating_point.tick

    def test_invalid_configs_are_rejected(self):
        for bad in (
            dict(p99_target_ms=0.0),
            dict(min_workers=0),
            dict(max_workers=1, min_workers=2),
            dict(min_batch=0),
            dict(max_batch=1, min_batch=2),
            dict(cooldown_ticks=0),
            dict(low_pressure=0.9, high_pressure=0.5),
            dict(queue_low=0.8, queue_high=0.4),
            dict(shed_step=0.0),
            dict(max_shed=1.5),
            dict(retry_after_min_s=0.0),
            dict(classes=(("tenant", "platinum"),)),
            dict(classes=(("", "gold"),)),
            dict(classes=("not-a-pair",)),
        ):
            with pytest.raises(ConfigurationError):
                SLOConfig(**bad).validate()
