"""Concurrency stress: many clients, one shared server, real GC sessions.

The invariants under test are the serving layer's whole contract:

* every concurrent result equals the plaintext dot product (concurrency
  changes scheduling, never any session's transcript);
* every pooled run is consumed by exactly one request, and every
  garbling is fresh (label reuse across sessions would break GC
  security);
* the shared :class:`ServerStats` counters are exact under races;
* with the background refiller, sustained load keeps the pool warm
  (hit rate >= 0.9) instead of degrading to on-demand garbling.
"""

import threading

import numpy as np
import pytest

from repro.fixedpoint import Q8_4
from repro.host import CloudServer, ServerStats
from repro.serve import ServingConfig, ServingServer

MODEL = np.array([[0.5, -1.0], [1.5, 0.25], [-0.75, 2.0]])
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 2


@pytest.fixture(scope="module")
def stress_run():
    """One shared concurrent run; every test inspects its outcome."""
    server = CloudServer(MODEL, Q8_4, pool_size=4, seed=11)
    consumed = []
    consumed_lock = threading.Lock()
    original_take = server._take_run

    def spying_take():
        run = original_take()
        with consumed_lock:
            consumed.append(run)  # keep the runs alive so ids stay unique
        return run

    server._take_run = spying_take

    config = ServingConfig(workers=4, queue_depth=64, request_timeout_s=120.0)
    results = []
    results_lock = threading.Lock()
    errors = []

    def client_thread(cid):
        rng = np.random.default_rng(500 + cid)
        try:
            for _ in range(REQUESTS_PER_CLIENT):
                row = int(rng.integers(0, MODEL.shape[0]))
                # on the Q8.4 grid -> the GC result is bit-exact
                x = np.round(rng.uniform(-1.5, 1.5, size=MODEL.shape[1]) * 16) / 16
                got = serving.query(row, x)
                with results_lock:
                    results.append((row, x, got))
        except BaseException as exc:  # surfaced in the correctness test
            errors.append(exc)

    with ServingServer(server, config) as serving:
        threads = [
            threading.Thread(target=client_thread, args=(c,)) for c in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    return {
        "server": server,
        "consumed": consumed,
        "results": results,
        "errors": errors,
    }


class TestConcurrentCorrectness:
    def test_no_client_errored(self, stress_run):
        assert stress_run["errors"] == []
        assert len(stress_run["results"]) == N_CLIENTS * REQUESTS_PER_CLIENT

    def test_all_results_match_plaintext(self, stress_run):
        for row, x, got in stress_run["results"]:
            assert got == pytest.approx(MODEL[row] @ x, abs=1e-9), (
                f"row {row}, x={x}: concurrent result diverged from plaintext"
            )


class TestFreshLabelInvariant:
    def test_each_run_consumed_exactly_once(self, stress_run):
        consumed = stress_run["consumed"]
        assert len(consumed) == N_CLIENTS * REQUESTS_PER_CLIENT
        assert len({id(run) for run in consumed}) == len(consumed)

    def test_every_consumed_run_has_fresh_labels(self, stress_run):
        # distinct first tables across all served runs: a repeat would
        # mean two sessions shared garbled material
        first_tables = [run.stream[0].table for run in stress_run["consumed"]]
        assert len(set(first_tables)) == len(first_tables)

    def test_distinct_free_xor_offsets(self, stress_run):
        offsets = [run.offset for run in stress_run["consumed"]]
        assert len(set(offsets)) == len(offsets)


class TestStatsUnderConcurrency:
    def test_counters_exact_after_stress(self, stress_run):
        stats = stress_run["server"].stats
        total = N_CLIENTS * REQUESTS_PER_CLIENT
        assert stats.requests_served == total
        assert stats.pool_hits + stats.pool_misses == total
        tables_per_run = stress_run["consumed"][0].total_tables
        assert stats.tables_streamed == total * tables_per_run

    def test_telemetry_counters_agree_with_stats(self, stress_run):
        server = stress_run["server"]
        snap = server.telemetry.snapshot()["counters"]
        assert snap["serve.completed"] == N_CLIENTS * REQUESTS_PER_CLIENT
        assert snap.get("pool.hits", 0) == server.stats.pool_hits
        assert snap.get("pool.misses", 0) == server.stats.pool_misses

    def test_bump_is_race_free(self):
        stats = ServerStats()

        def hammer():
            for _ in range(5000):
                stats.bump("requests_served")
                stats.bump("tables_streamed", 3)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.requests_served == 8 * 5000
        assert stats.tables_streamed == 8 * 5000 * 3

    def test_bump_unknown_counter_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ServerStats().bump("nonexistent")


class TestSustainedLoadHitRate:
    def test_refiller_keeps_pool_warm(self):
        """Acceptance: hit rate >= 0.9 under sustained load with refiller."""
        server = CloudServer(MODEL, Q8_4, pool_size=4, seed=31)
        config = ServingConfig(workers=1, queue_depth=8, refill=True)
        with ServingServer(server, config) as serving:
            rng = np.random.default_rng(7)
            for i in range(10):
                row = i % MODEL.shape[0]
                x = np.round(rng.uniform(-1, 1, size=MODEL.shape[1]) * 16) / 16
                got = serving.query(row, x)
                assert got == pytest.approx(MODEL[row] @ x, abs=1e-9)
        assert server.stats.pool_hit_rate >= 0.9
        snap = server.telemetry.snapshot()["counters"]
        assert snap.get("refill.runs", 0) > 0
