"""The shared explicit > configured > env > default precedence helper."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.config import (
    BACKEND_ENV,
    GARBLE_MODE_ENV,
    ServingConfig,
    resolve_backend,
    resolve_choice,
    resolve_garble_mode,
)

ALLOWED = ("alpha", "beta")


def resolve(explicit=None, configured=None, default=None):
    return resolve_choice(
        explicit, configured, "REPRO_TEST_CHOICE", ALLOWED,
        explicit_name="explicit test knob",
        configured_name="TestConfig.knob",
        default=default,
    )


class TestPrecedenceOrders:
    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "beta")
        assert resolve("alpha", "beta") == "alpha"

    def test_configured_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "beta")
        assert resolve(None, "alpha") == "alpha"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "beta")
        assert resolve(default="alpha") == "beta"

    def test_default_when_all_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_CHOICE", raising=False)
        assert resolve() is None
        assert resolve(default="alpha") == "alpha"

    def test_empty_string_falls_through(self, monkeypatch):
        """'' means unset at every level, like an empty env var."""
        monkeypatch.setenv("REPRO_TEST_CHOICE", "")
        assert resolve("", "") is None
        assert resolve("", "alpha") == "alpha"


class TestValidation:
    def test_invalid_winner_raises_with_its_source_named(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "junk")
        with pytest.raises(ConfigurationError, match="REPRO_TEST_CHOICE"):
            resolve()
        with pytest.raises(ConfigurationError, match="explicit test knob"):
            resolve("junk")
        with pytest.raises(ConfigurationError, match="TestConfig.knob"):
            resolve(None, "junk")

    def test_losing_source_is_never_validated(self, monkeypatch):
        """An explicit override must shadow a broken environment."""
        monkeypatch.setenv("REPRO_TEST_CHOICE", "garbage-value")
        assert resolve("alpha") == "alpha"
        assert resolve(None, "beta") == "beta"

    def test_default_is_not_validated(self, monkeypatch):
        # the default is the caller's own fallback, not user input
        monkeypatch.delenv("REPRO_TEST_CHOICE", raising=False)
        assert resolve(default="not-in-allowed") == "not-in-allowed"


class TestBackendKnob:
    def test_default_is_gc(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "gc"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "he")
        assert resolve_backend() == "he"

    def test_config_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "he")
        assert resolve_backend(configured="gc") == "gc"

    def test_explicit_overrides_config(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gc")
        assert resolve_backend("he", "gc") == "he"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "paillier")
        with pytest.raises(ConfigurationError, match="REPRO_BACKEND"):
            resolve_backend()

    def test_serving_config_validates_backend(self):
        assert ServingConfig(backend="he").validate().backend == "he"
        assert ServingConfig().validate().backend is None
        with pytest.raises(ConfigurationError, match="backend"):
            ServingConfig(backend="paillier").validate()


class TestGarbleModeKnob:
    def test_uses_the_shared_helper_semantics(self, monkeypatch):
        monkeypatch.setenv(GARBLE_MODE_ENV, "vectorized")
        assert resolve_garble_mode() == "vectorized"
        assert resolve_garble_mode("sequential", None) == "sequential"
        monkeypatch.delenv(GARBLE_MODE_ENV, raising=False)
        assert resolve_garble_mode() is None
