"""Poison-request isolation: an untyped exception inside a request must
fail *that request* typed and leave its worker alive and serving."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.serve import PendingRequest, ServingConfig, ServingServer
from repro.telemetry import MetricsRegistry


class _Poison(PendingRequest):
    retryable = False

    def __init__(self, exc: BaseException):
        super().__init__(0, None, deadline=float("inf"))
        self._exc = exc

    def _execute(self, client):
        raise self._exc


@pytest.fixture
def serving():
    server = CloudServer(
        np.array([[0.5, -0.25], [1.0, 0.75]]),
        Q8_4,
        pool_size=1,
        seed=0,
        telemetry=MetricsRegistry(),
    )
    config = ServingConfig(workers=1, queue_depth=4, refill=False,
                           request_timeout_s=30.0)
    with ServingServer(server, config) as s:
        yield s


class TestPoisonIsolation:
    def test_poison_fails_typed_not_raw(self, serving):
        req = serving._enqueue(_Poison(RuntimeError("kaboom")), block=True)
        with pytest.raises(ServingError, match="poison request isolated"):
            req.wait(timeout=30.0)
        # the original exception rides along as the cause for debugging
        assert isinstance(req._error.__cause__, RuntimeError)

    def test_worker_survives_and_keeps_serving(self, serving):
        req = serving._enqueue(_Poison(ValueError("bad state")), block=True)
        with pytest.raises(ServingError):
            req.wait(timeout=30.0)
        health = serving.health()
        assert health["workers_alive"] == health["workers_expected"] == 1
        expected = float(serving.server.model[1] @ np.array([0.25, 0.5]))
        assert serving.query(1, [0.25, 0.5], timeout=30.0) == pytest.approx(
            expected, abs=1e-9
        )

    def test_poison_counter_increments(self, serving):
        for exc in (RuntimeError("a"), KeyError("b"), ZeroDivisionError()):
            req = serving._enqueue(_Poison(exc), block=True)
            with pytest.raises(ServingError):
                req.wait(timeout=30.0)
        counters = serving.telemetry.snapshot()["counters"]
        assert counters["serve.poisoned"] == 3
        assert counters["serve.failed"] == 3

    def test_poison_is_not_retried(self, serving):
        req = serving._enqueue(_Poison(RuntimeError("once only")), block=True)
        with pytest.raises(ServingError):
            req.wait(timeout=30.0)
        assert req.attempts == 1
        assert "serve.retries" not in serving.telemetry.snapshot()["counters"]
