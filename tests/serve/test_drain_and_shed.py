"""Graceful drain, overload shedding, and the configurable reaper.

Acceptance criteria under test:

* SIGTERM (or ``drain()``) lets an in-flight session finish its current
  round, checkpoints it, and the client completes the query against a
  successor gateway sharing the store — without re-garbling;
* a saturated/draining gateway answers ``net.retry_after`` and a v3
  client succeeds after honouring the backoff hint;
* ``ServingConfig.reaper_timeout_s`` / ``REPRO_REAPER_TIMEOUT_S`` feed
  the half-open-session reaper, visible as ``gateway.sessions.reaped``.
"""

import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, OverloadedError, ServingError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.net import GCGateway, RemoteAnalyticsClient
from repro.net.endpoint import SocketEndpoint
from repro.recover import BackoffPolicy, JsonlSessionStore
from repro.serve import ServingConfig, resolve_reaper_timeout
from repro.serve.config import DEFAULT_REAPER_TIMEOUT_S, REAPER_TIMEOUT_ENV
from repro.telemetry import MetricsRegistry

MODEL = np.array([
    [0.5, -1.0, 0.25, 0.75, -0.5, 1.0, 0.125, -0.25],
    [1.0, 1.0, -1.5, 0.5, 0.75, -0.75, 2.0, 0.25],
])
X = np.array([0.5, -0.25, 1.0, 0.75, 0.125, -0.5, 0.25, 1.0])
RECV_TIMEOUT = 20.0


def fresh_server():
    return CloudServer(
        MODEL, Q8_4, pool_size=0, seed=13, auto_refill=False,
        telemetry=MetricsRegistry(),
    )


def make_gateway(server, store=None, **cfg_kwargs):
    cfg_kwargs.setdefault("workers", 2)
    cfg_kwargs.setdefault("queue_depth", 8)
    cfg_kwargs.setdefault("refill", False)
    cfg_kwargs.setdefault("recv_timeout_s", RECV_TIMEOUT)
    cfg_kwargs.setdefault("drain_timeout_s", 10.0)
    gw = GCGateway(server, config=ServingConfig(**cfg_kwargs), store=store)
    gw.serving.start()
    return gw


def client_for(target, **kwargs):
    """``target`` is a one-element list so tests can swap gateways."""

    def dial():
        ours, theirs = socket.socketpair()
        target[0].adopt(theirs)
        return SocketEndpoint("client", ours, recv_timeout_s=RECV_TIMEOUT)

    kwargs.setdefault("backoff", BackoffPolicy(base_s=0.01, cap_s=0.1, seed=3))
    return RemoteAnalyticsClient(dial=dial, **kwargs)


class TestReaperConfig:
    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv(REAPER_TIMEOUT_ENV, raising=False)
        assert resolve_reaper_timeout() == DEFAULT_REAPER_TIMEOUT_S
        monkeypatch.setenv(REAPER_TIMEOUT_ENV, "3.5")
        assert resolve_reaper_timeout() == 3.5
        assert resolve_reaper_timeout(configured=2.0) == 2.0
        assert resolve_reaper_timeout(explicit=1.0, configured=2.0) == 1.0

    def test_bad_env_values_fail_typed(self, monkeypatch):
        monkeypatch.setenv(REAPER_TIMEOUT_ENV, "soon")
        with pytest.raises(ConfigurationError, match="number of seconds"):
            resolve_reaper_timeout()
        monkeypatch.setenv(REAPER_TIMEOUT_ENV, "-1")
        with pytest.raises(ConfigurationError, match="positive"):
            resolve_reaper_timeout()

    def test_config_reaper_timeout_reaches_the_gateway(self):
        server = fresh_server()
        gw = GCGateway(
            server, config=ServingConfig(reaper_timeout_s=0.75)
        )
        try:
            assert gw.handshake_timeout_s == 0.75
        finally:
            gw.stop()

    def test_env_reaper_timeout_reaches_the_gateway(self, monkeypatch):
        monkeypatch.setenv(REAPER_TIMEOUT_ENV, "0.5")
        server = fresh_server()
        gw = GCGateway(server, config=ServingConfig())
        try:
            assert gw.handshake_timeout_s == 0.5
        finally:
            gw.stop()

    def test_half_open_session_is_reaped_and_counted(self):
        server = fresh_server()
        gw = GCGateway(
            server,
            config=ServingConfig(
                reaper_timeout_s=0.2, recv_timeout_s=RECV_TIMEOUT
            ),
            reap_interval_s=0.05,
        )
        gw.serving.start()
        try:
            ours, theirs = socket.socketpair()
            thread = gw.adopt(theirs)  # never say hello
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert server.telemetry.counter("gateway.sessions.reaped").value == 1
            # the legacy counter name stays pinned alongside the new one
            assert server.telemetry.counter("gateway.reaped").value == 1
            ours.close()
        finally:
            gw.stop()


class TestShedding:
    def test_draining_gateway_sheds_v3_with_retry_after(self):
        server = fresh_server()
        gw = make_gateway(server, retry_after_s=0.02)
        try:
            target = [gw]
            with client_for(
                target,
                telemetry=server.telemetry,
                backoff=BackoffPolicy(
                    base_s=0.005, cap_s=0.02, max_attempts=3, seed=3
                ),
            ) as client:
                gw._draining.set()
                with pytest.raises(OverloadedError, match="still shedding"):
                    client.query_row(0, X)
                assert server.telemetry.counter("gateway.shed").value >= 3
                assert server.telemetry.counter("client.shed").value >= 3
        finally:
            gw._draining.clear()
            gw.stop()

    def test_client_succeeds_after_backoff_when_shedding_clears(self):
        server = fresh_server()
        gw = make_gateway(server, retry_after_s=0.02)
        try:
            target = [gw]
            with client_for(target, telemetry=server.telemetry) as client:
                gw._draining.set()
                threading.Timer(0.1, gw._draining.clear).start()
                got = client.query_row(1, X)
                assert got == pytest.approx(float(MODEL[1] @ X), abs=1e-12)
                assert server.telemetry.counter("client.shed").value >= 1
        finally:
            gw.stop()

    def test_v2_client_gets_the_legacy_typed_overload_error(self):
        server = fresh_server()
        gw = make_gateway(server)
        try:
            ours, theirs = socket.socketpair()
            gw.adopt(theirs)
            import repro.net.handshake as hs
            saved = hs.PROTOCOL_VERSION
            hs.PROTOCOL_VERSION = 2
            try:
                client = RemoteAnalyticsClient.from_socket(
                    ours, recv_timeout_s=RECV_TIMEOUT
                )
            finally:
                hs.PROTOCOL_VERSION = saved
            gw._draining.set()
            with pytest.raises(ServingError, match="overloaded"):
                client.query_row(0, X)
            client.close()
        finally:
            gw._draining.clear()
            gw.stop()

    def test_queue_saturation_raises_typed_overload(self):
        """The serving layer's bounded queue refuses with OverloadedError
        (the admission-control primitive the gateway turns into
        net.retry_after)."""
        server = fresh_server()
        gw = make_gateway(server, workers=1, queue_depth=1)
        try:
            release = threading.Event()
            from repro.serve.server import PendingRequest

            class Blocker(PendingRequest):
                retryable = False

                def __init__(self):
                    super().__init__(0, None, time.monotonic() + 30.0)

                def _execute(self, server_, group):
                    release.wait(timeout=30.0)

            # one blocker occupies the worker, one fills the depth-1 queue
            gw.serving._enqueue(Blocker(), block=True)
            deadline = time.monotonic() + 5.0
            while not gw.serving._queue.empty():
                if time.monotonic() > deadline:
                    pytest.fail("worker never picked up the blocker")
                time.sleep(0.005)
            gw.serving._enqueue(Blocker(), block=True)
            with pytest.raises(OverloadedError):
                gw.serving._enqueue(Blocker(), block=False)
            release.set()
        finally:
            gw.stop()


class TestDrain:
    def test_drain_with_no_sessions_is_clean_and_fast(self):
        server = fresh_server()
        gw = make_gateway(server)
        try:
            t0 = time.monotonic()
            assert gw.drain(timeout_s=5.0) is True
            assert time.monotonic() - t0 < 5.0
            assert server.telemetry.counter("gateway.drains").value == 1
            assert server.telemetry.counter("gateway.drained").value == 1
        finally:
            gw.stop()

    def test_drain_checkpoints_and_successor_finishes_the_query(self, tmp_path):
        """The tentpole scenario: drain mid-query, client resumes against
        a successor gateway sharing the JSONL store, result is bit-exact,
        and no completed round was re-garbled."""
        server = fresh_server()
        store = JsonlSessionStore(tmp_path / "sessions.jsonl", ttl_s=60.0)
        gw1 = make_gateway(server, store=store)
        gw2 = make_gateway(server, store=store)
        target = [gw1]
        client = client_for(target, telemetry=server.telemetry)
        garbled0 = server.stats.runs_garbled
        result = {}

        def query():
            result["got"] = client.query_row(1, X)

        t = threading.Thread(target=query)
        t.start()
        try:
            # wait for the first round-boundary checkpoint, then drain
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                cps = [store.get(s) for s in store.session_ids()]
                if any(c and 1 <= c.next_round < c.rounds for c in cps):
                    break
                time.sleep(0.002)
            else:
                pytest.fail("no round-boundary checkpoint appeared")
            target[0] = gw2  # reconnects land on the successor
            clean = gw1.drain(timeout_s=10.0)
            t.join(timeout=30.0)
            assert not t.is_alive(), "query never finished after the drain"
            assert clean is True
            assert result["got"] == pytest.approx(
                float(MODEL[1] @ X), abs=1e-12
            )
            # exactly one garbling for the whole drained-and-resumed query
            assert server.stats.runs_garbled == garbled0 + 1
            assert (
                server.telemetry.counter("gateway.resumes.restart").value == 1
            )
            assert (
                server.telemetry.counter("gateway.sessions.drained").value >= 1
            )
            # the resumed query completed but the checkpoint is retained
            # until the client confirms (BYE) — a post-completion crash
            # could still need the tail re-served
            assert store.get(client.session_id) is not None
            sid = client.session_id
            client.close()  # idempotent; the finally-close is still safe
            deadline = time.monotonic() + 5.0
            while store.get(sid) is not None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert store.get(sid) is None, "BYE never deleted the checkpoint"
        finally:
            client.close()
            gw2.stop()
            gw1.stop()

    def test_sigterm_triggers_the_drain_path(self):
        server = fresh_server()
        gw = make_gateway(server)
        saved = signal.getsignal(signal.SIGTERM)
        try:
            gw.start()  # bind a real listener so drain has one to close
            gw.install_signal_handlers()
            signal.raise_signal(signal.SIGTERM)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if server.telemetry.counter("gateway.drained").value >= 1:
                    break
                time.sleep(0.01)
            assert server.telemetry.counter("gateway.drains").value == 1
            assert server.telemetry.counter("gateway.drained").value == 1
            assert gw.draining
        finally:
            signal.signal(signal.SIGTERM, saved)
            gw.stop()

    def test_drain_meets_its_deadline_against_an_idle_session(self):
        """An idle (handshaken, between-queries) session must not hold
        the drain for the full timeout."""
        server = fresh_server()
        gw = make_gateway(server)
        target = [gw]
        client = client_for(target)
        client.query_row(0, X)  # session now idle in its query loop
        t0 = time.monotonic()
        assert gw.drain(timeout_s=5.0) is True
        assert time.monotonic() - t0 < 5.0
        client.endpoint.disable_resume()
        client.close()
        gw.stop()
