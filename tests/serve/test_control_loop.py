"""The SLO control loop wired into the serving stack.

Covers the seams the property suite cannot: ``resolve_controller``
precedence, the ``ServingConfig`` slo knobs, live worker-pool
scale-up/scale-down through ``_apply_decision`` (retirement orders via
the queue sentinel), the admission shed gate, the controller-aware
``retry_after_s`` / ``resume_batch_cap`` properties, the expanded
``health()`` report with its per-path counters, and the operating-point
checkpoint/restore round trip through a gateway's session store.
"""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, OverloadedError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.net import GCGateway
from repro.recover import InMemorySessionStore, JsonlSessionStore
from repro.serve import (
    CONTROLLER_STATE_KEY,
    CONTROLLERS,
    OperatingPoint,
    ServingConfig,
    ServingServer,
    resolve_controller,
)
from repro.serve.config import CONTROLLER_ENV
from repro.telemetry import MetricsRegistry

MODEL = np.array([[0.5, -0.25], [1.0, 0.75]])


def fresh_server(**kwargs):
    kwargs.setdefault("pool_size", 0)
    kwargs.setdefault("auto_refill", False)
    return CloudServer(
        MODEL, Q8_4, seed=5, telemetry=MetricsRegistry(), **kwargs
    )


def slo_config(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_depth", 8)
    kwargs.setdefault("refill", False)
    kwargs.setdefault("controller", "slo")
    kwargs.setdefault("slo_min_workers", 1)
    kwargs.setdefault("slo_max_workers", 3)
    kwargs.setdefault("slo_cooldown_ticks", 1)
    # the background loop must not race the tests' manual control_tick
    kwargs.setdefault("slo_tick_s", 60.0)
    return ServingConfig(**kwargs)


def _wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestResolveController:
    def test_precedence_explicit_env_configured_default(self, monkeypatch):
        monkeypatch.delenv(CONTROLLER_ENV, raising=False)
        assert resolve_controller() == "static"
        assert resolve_controller(configured="slo") == "slo"
        monkeypatch.setenv(CONTROLLER_ENV, "slo")
        assert resolve_controller() == "slo"
        # explicit > ServingConfig.controller > env > default
        assert resolve_controller(configured="static") == "static"
        assert resolve_controller(explicit="static", configured="slo") == "static"

    def test_bad_values_fail_typed(self, monkeypatch):
        monkeypatch.setenv(CONTROLLER_ENV, "fuzzy")
        with pytest.raises(ConfigurationError, match="fuzzy"):
            resolve_controller()
        monkeypatch.delenv(CONTROLLER_ENV, raising=False)
        with pytest.raises(ConfigurationError):
            resolve_controller(configured="adaptive-ish")
        assert CONTROLLERS == ("static", "slo")

    def test_serving_config_validates_slo_knobs(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(controller="pid").validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(slo_p99_ms=0.0).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(slo_min_workers=0).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(slo_min_workers=4, slo_max_workers=2).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(slo_tick_s=0.0).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(slo_cooldown_ticks=0).validate()
        with pytest.raises(ConfigurationError):
            ServingConfig(slo_classes=("lonely",)).validate()

    def test_static_config_attaches_no_controller(self):
        serving = ServingServer(fresh_server(), ServingConfig(refill=False))
        assert serving.controller is None
        with pytest.raises(ConfigurationError, match="no controller"):
            serving.control_tick()


class TestWorkerScaling:
    def test_overload_ticks_grow_the_pool_to_max(self):
        server = fresh_server()
        with ServingServer(server, slo_config()) as serving:
            hist = serving.telemetry.histogram("request.latency")
            for tick in range(2):
                hist.record(1.0)  # 1000 ms >> the 50 ms target
                serving.control_tick()
            assert serving.controller.operating_point.workers == 3
            assert _wait_for(
                lambda: serving.health()["workers_alive"] == 3
            )
            counters = serving.telemetry.snapshot()["counters"]
            assert counters["controller.scale_up"] == 2
            assert counters["controller.ticks"] == 2

    def test_idle_ticks_retire_workers_down_to_min(self):
        server = fresh_server()
        with ServingServer(server, slo_config(workers=3)) as serving:
            assert serving.health()["workers_expected"] == 3
            # idle: no completions (latency unknown) and an empty queue
            for _ in range(2):
                serving.control_tick()
            assert serving.controller.operating_point.workers == 1
            # retirement orders drain through the queue sentinel
            assert _wait_for(
                lambda: serving.telemetry.counter(
                    "serve.workers_retired"
                ).value == 2
            )
            counters = serving.telemetry.snapshot()["counters"]
            assert counters["controller.scale_down"] == 2
            # the retired threads removed themselves from the roster
            assert serving.health()["workers_expected"] == 1
            # and a query still serves on the shrunken pool
            got = serving.query(0, [0.5, 0.5], timeout=30.0)
            assert got == pytest.approx(
                float(MODEL[0] @ np.array([0.5, 0.5])), abs=1e-9
            )

    def test_windowed_latency_reads_only_new_samples(self):
        """The tick consumes the histogram since the previous tick: a
        burst of slow requests must not poison later idle ticks."""
        server = fresh_server()
        with ServingServer(server, slo_config()) as serving:
            hist = serving.telemetry.histogram("request.latency")
            hist.record(1.0)
            serving.control_tick()  # overloaded: scale 1 -> 2
            assert serving.controller.operating_point.workers == 2
            # no new samples: the stale 1.0 s latency is out of window,
            # so this tick is underloaded and relaxes back down
            serving.control_tick()
            assert serving.controller.operating_point.workers == 1


class TestShedGate:
    def _saturate(self, serving):
        """Drive shed up: workers pinned, batch pinned, queue full."""
        hist = serving.telemetry.histogram("request.latency")
        hist.record(1.0)
        serving.control_tick()

    def test_admission_shed_rejects_with_live_retry_hint(self):
        config = slo_config(
            slo_min_workers=1, slo_max_workers=1, resume_batch_max=1,
            retry_after_s=0.05,
        )
        with ServingServer(fresh_server(), config) as serving:
            assert serving.retry_after_s == 0.05
            for _ in range(8):
                self._saturate(serving)
            op = serving.controller.operating_point
            assert op.shed_probability == 0.9  # 8 steps x 0.125, capped
            assert serving.retry_after_s > 0.05  # hint scaled with shed
            # seed 0, draw index 0 lands at ~0.015 < 0.9: deterministic
            with pytest.raises(OverloadedError, match="admission shed"):
                serving.submit(0, [0.5, 0.5], tenant="bronze-tenant")
            counters = serving.telemetry.snapshot()["counters"]
            assert counters["serve.shed"] >= 1

    def test_static_serving_never_consults_a_controller(self):
        config = ServingConfig(workers=1, queue_depth=4, refill=False,
                               retry_after_s=0.25)
        with ServingServer(fresh_server(), config) as serving:
            assert serving.retry_after_s == 0.25
            assert serving.resume_batch_cap is None
            req = serving.submit(0, [0.5, 0.5], tenant="anyone")
            assert req.wait(timeout=30.0) == pytest.approx(
                float(MODEL[0] @ np.array([0.5, 0.5])), abs=1e-9
            )

    def test_resume_batch_cap_tracks_the_operating_point(self):
        config = slo_config(
            slo_min_workers=1, slo_max_workers=1, resume_batch_max=4,
        )
        with ServingServer(fresh_server(), config) as serving:
            assert serving.resume_batch_cap == 4
            self._saturate(serving)  # workers pinned -> batch shrinks
            assert serving.resume_batch_cap == 3


class TestHealthPaths:
    """Each unhealthy (or degraded) path has a distinct counter, so a
    flapping fleet is diagnosable from telemetry alone."""

    def test_draining_path(self):
        server = fresh_server()
        serving = ServingServer(server, ServingConfig(refill=False))
        serving.start()
        serving.stop()
        health = serving.health()
        assert not health["healthy"]
        assert not health["accepting"]
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.health.draining"] >= 1
        assert "serve.health.dead_workers" not in counters
        assert "serve.health.refiller_down" not in counters

    def test_dead_worker_path(self):
        class _Corpse:
            @staticmethod
            def is_alive():
                return False

            @staticmethod
            def join(timeout=None):
                pass

        server = fresh_server()
        with ServingServer(server, ServingConfig(refill=False)) as serving:
            with serving._workers_lock:
                serving._workers.append(_Corpse())
            health = serving.health()
            assert not health["healthy"]
            assert health["workers_alive"] < health["workers_expected"]
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.health.dead_workers"] >= 1
        assert "serve.health.refiller_down" not in counters

    def test_refiller_down_path(self, monkeypatch):
        server = fresh_server(pool_size=1)
        config = ServingConfig(workers=1, queue_depth=2, refill=True,
                               refill_poll_s=0.01)
        serving = ServingServer(server, config)

        def explode():
            raise RuntimeError("bitstream loader wedged")

        monkeypatch.setattr(server, "refill_pool", explode)
        serving.start()
        try:
            assert _wait_for(lambda: not serving.health()["healthy"])
        finally:
            serving.stop()
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.health.refiller_down"] >= 1
        assert "serve.health.dead_workers" not in counters

    def test_pool_exhausted_is_degraded_not_unhealthy(self, monkeypatch):
        server = fresh_server(pool_size=1)
        config = ServingConfig(workers=1, queue_depth=2, refill=True,
                               refill_poll_s=0.01)
        # a refiller that runs fine but never lands a circuit: the pool
        # headroom is gone, yet on-demand garbling still serves
        monkeypatch.setattr(server, "refill_pool", lambda: None)
        with ServingServer(server, config) as serving:
            assert _wait_for(lambda: serving.health()["refiller_running"])
            # consume the one pre-garbled circuit; the no-op refiller
            # never replaces it, so the headroom is now gone
            serving.query(0, [0.5, 0.5], timeout=30.0)
            health = serving.health()
            assert health["healthy"]
            assert health["pool_level"] == 0
        counters = server.telemetry.snapshot()["counters"]
        assert counters["serve.health.pool_exhausted"] >= 1
        assert "serve.health.refiller_down" not in counters

    def test_health_reports_the_operating_point(self):
        with ServingServer(fresh_server(), slo_config()) as serving:
            health = serving.health()
            assert health["controller"]["workers"] == 1
            assert health["controller"]["shed_probability"] == 0.0
            assert health["queue_capacity"] == 8
        serving2 = ServingServer(fresh_server(), ServingConfig(refill=False))
        assert serving2.health()["controller"] is None


class TestOperatingPointCheckpoint:
    def _gateway(self, store, **cfg_kwargs):
        cfg_kwargs.setdefault("recv_timeout_s", 20.0)
        server = fresh_server()
        return GCGateway(server, config=slo_config(**cfg_kwargs), store=store)

    def test_drain_checkpoints_and_successor_restores(self):
        store = InMemorySessionStore()
        gw = self._gateway(store)
        gw.serving.start()
        hist = gw.serving.telemetry.histogram("request.latency")
        for _ in range(2):
            hist.record(1.0)
            gw.serving.control_tick()
        op_before = gw.serving.controller.operating_point.to_dict()
        assert op_before["workers"] == 3
        gw.drain(timeout_s=5.0)
        gw.serving.stop()
        assert store.get_meta(CONTROLLER_STATE_KEY) == op_before

        successor = self._gateway(store)
        op_after = successor.serving.controller.operating_point.to_dict()
        assert op_after == op_before
        counters = successor.serving.telemetry.snapshot()["counters"]
        assert counters["controller.restored"] == 1

    def test_restore_survives_a_process_restart(self, tmp_path):
        path = tmp_path / "sessions.jsonl"
        store = JsonlSessionStore(path)
        gw = self._gateway(store)
        gw.serving.start()
        gw.serving.control_tick()  # idle: nothing moves, tick advances
        gw.drain(timeout_s=5.0)
        gw.serving.stop()

        reopened = JsonlSessionStore(path)
        successor = self._gateway(reopened)
        assert successor.serving.controller.operating_point.tick == 1

    def test_garbage_checkpoint_is_rejected_not_fatal(self):
        store = InMemorySessionStore()
        store.put_meta(CONTROLLER_STATE_KEY, {"workers": "many"})
        gw = self._gateway(store)
        op = gw.serving.controller.operating_point
        assert op.tick == 0  # fresh start, the bad blob was ignored
        counters = gw.serving.telemetry.snapshot()["counters"]
        assert counters["controller.restore_rejected"] == 1

    def test_static_gateway_ignores_a_checkpoint(self):
        store = InMemorySessionStore()
        store.put_meta(
            CONTROLLER_STATE_KEY,
            OperatingPoint(workers=5, batch_max=2).to_dict(),
        )
        server = fresh_server()
        gw = GCGateway(
            server,
            config=ServingConfig(refill=False, recv_timeout_s=20.0),
            store=store,
        )
        assert gw.serving.controller is None
