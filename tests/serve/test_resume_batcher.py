"""ResumeBatcher: coalescing, admission control, error isolation."""

import queue
import threading
import time

import pytest

from repro.errors import OverloadedError, ServingError
from repro.serve import ResumeBatcher, ServingConfig
from repro.serve.batcher import BatchedResumeRequest, ResumeHandle


class FakeServing:
    """Just enough of ServingServer for the batcher: a bounded queue,
    an accepting flag, and the request timeout."""

    def __init__(self, depth=4, accepting=True):
        self.config = ServingConfig(refill=False)
        self._queue = queue.Queue(maxsize=depth)
        self._accepting = accepting
        self.enqueued = []

    def _enqueue(self, req, block):
        if not self._accepting:
            raise ServingError("serving layer is not running")
        try:
            self._queue.put_nowait(req)
        except queue.Full:
            raise OverloadedError("queue full") from None
        self.enqueued.append(req)
        return req


def checkpoint_stub(sid="s-b"):
    class _Cp:
        session_id = sid
        row_index = 0
    return _Cp()


class TestResumeBatcher:
    def test_max_batch_flushes_immediately(self):
        serving = FakeServing()
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=2)
        h1 = batcher.submit(checkpoint_stub("s-1"), None, None)
        assert serving.enqueued == []  # still inside the window
        h2 = batcher.submit(checkpoint_stub("s-2"), None, None)
        assert len(serving.enqueued) == 1
        req = serving.enqueued[0]
        assert isinstance(req, BatchedResumeRequest)
        assert req.entries == [h1, h2]

    def test_window_timer_flushes_a_partial_batch(self):
        serving = FakeServing()
        batcher = ResumeBatcher(serving, window_s=0.02, max_batch=8)
        batcher.submit(checkpoint_stub(), None, None)
        deadline = time.monotonic() + 2.0
        while not serving.enqueued and time.monotonic() < deadline:
            time.sleep(0.005)
        assert len(serving.enqueued) == 1
        assert len(serving.enqueued[0].entries) == 1

    def test_zero_window_flushes_every_submit(self):
        serving = FakeServing()
        batcher = ResumeBatcher(serving, window_s=0.0, max_batch=8)
        batcher.submit(checkpoint_stub("s-1"), None, None)
        batcher.submit(checkpoint_stub("s-2"), None, None)
        assert len(serving.enqueued) == 2

    def test_full_queue_sheds_at_submit_time(self):
        serving = FakeServing(depth=1)
        serving._queue.put_nowait(object())  # saturate
        batcher = ResumeBatcher(serving, window_s=0.0, max_batch=1)
        with pytest.raises(OverloadedError, match="batched admission shed"):
            batcher.submit(checkpoint_stub(), None, None)

    def test_stopped_serving_sheds_at_submit_time(self):
        serving = FakeServing(accepting=False)
        batcher = ResumeBatcher(serving, window_s=0.0, max_batch=1)
        with pytest.raises(OverloadedError):
            batcher.submit(checkpoint_stub(), None, None)

    def test_close_flushes_pending_and_refuses_new(self):
        serving = FakeServing()
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=8)
        batcher.submit(checkpoint_stub(), None, None)
        batcher.close()
        assert len(serving.enqueued) == 1
        with pytest.raises(ServingError, match="closed"):
            batcher.submit(checkpoint_stub(), None, None)

    def test_enqueue_race_fails_the_whole_batch_typed(self):
        """The submit-time pre-check can race a fill-up; every waiter
        must then see the typed shed instead of hanging."""
        serving = FakeServing(depth=1)
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=3)
        h1 = batcher.submit(checkpoint_stub("s-1"), None, None)
        h2 = batcher.submit(checkpoint_stub("s-2"), None, None)
        serving._queue.put_nowait(object())  # fills up before the flush
        batcher.close()  # forces the flush into the now-full queue
        for handle in (h1, h2):
            assert handle.done
            with pytest.raises(OverloadedError):
                handle.wait(timeout=0.1)

    def test_min_batch_size_validated(self):
        with pytest.raises(ServingError, match="at least one"):
            ResumeBatcher(FakeServing(), max_batch=0)


class TestResumeHandle:
    def test_wait_times_out_typed(self):
        handle = ResumeHandle(checkpoint_stub(), None, None)
        with pytest.raises(ServingError, match="timed out"):
            handle.wait(timeout=0.01)

    def test_wait_reraises_the_sessions_own_error(self):
        handle = ResumeHandle(checkpoint_stub(), None, None)
        handle._finish(ServingError("boom"))
        with pytest.raises(ServingError, match="boom"):
            handle.wait(timeout=0.1)

    def test_batch_isolates_a_failing_entry(self):
        """One entry whose stream dies must not take the batch down:
        the other entry still streams to completion."""

        class _Chan:
            """Counts sends; the 'broken' instance raises on first use."""

            def __init__(self, broken=False):
                self.broken = broken
                self.sent = []
                self.send_seq = 0
                self.recv_seq = 0

            def send(self, tag, payload):
                if self.broken:
                    raise ServingError("wire gone")
                self.send_seq += 1
                self.sent.append(tag)

            def send_u128_list(self, tag, values):
                self.send(tag, values)

        from repro.recover import RoundMaterial, SessionCheckpoint

        def cp(sid):
            return SessionCheckpoint(
                session_id=sid, row_index=0, rounds=1, next_round=0,
                materials=[RoundMaterial(0, b"\x00" * 8, [1], [], [])],
                output_permute_bits=[0],
            )

        good_chan, bad_chan = _Chan(), _Chan(broken=True)
        good = ResumeHandle(cp("s-good"), good_chan, None)
        bad = ResumeHandle(cp("s-bad"), bad_chan, None)
        good.start_gate.set()
        bad.start_gate.set()

        class _Client:
            class server:
                telemetry = None

        req = BatchedResumeRequest([bad, good], deadline=time.monotonic() + 5.0)
        assert req._execute(_Client()) is True
        with pytest.raises(ServingError, match="wire gone"):
            bad.wait(timeout=0.1)
        assert good.wait(timeout=0.1) is True
        assert good.rounds_streamed == 1
        assert "seq.output_map" in good_chan.sent
