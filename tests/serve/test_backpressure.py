"""Session-manager semantics: backpressure, timeouts, retries, shutdown.

These tests replace the GC session with a controllable stub (the real
protocol is exercised in ``test_serving_stress``) so queueing behaviour
can be pinned deterministically.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, GCProtocolError, ServingError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.serve import ServingConfig, ServingServer

MODEL = np.array([[1.0, 0.0], [0.0, 1.0]])


@pytest.fixture
def server():
    # pool_size=0 and no refiller: these tests never run real GC
    return CloudServer(MODEL, Q8_4, pool_size=0, seed=5, auto_refill=False)


class StubClient:
    """Drop-in for AnalyticsClient: controllable latency and failures."""

    started = threading.Event()
    release = threading.Event()
    failures: list = []

    def __init__(self, server, recv_timeout_s=None):
        self.server = server
        self.recv_timeout_s = recv_timeout_s

    def query_row(self, row_index, x_values):
        StubClient.started.set()
        if not StubClient.release.wait(timeout=10.0):
            raise GCProtocolError("stub was never released")
        if StubClient.failures:
            raise StubClient.failures.pop(0)
        return 42.0


@pytest.fixture
def stubbed(monkeypatch):
    StubClient.started = threading.Event()
    StubClient.release = threading.Event()
    StubClient.failures = []
    monkeypatch.setattr("repro.serve.server.AnalyticsClient", StubClient)
    return StubClient


class TestBackpressure:
    def test_full_queue_rejects_nonblocking_submit(self, server, stubbed):
        config = ServingConfig(workers=1, queue_depth=1, refill=False)
        with ServingServer(server, config) as serving:
            first = serving.submit(0, [1.0, 0.0])  # occupies the worker
            assert stubbed.started.wait(timeout=5.0)
            serving.submit(0, [1.0, 0.0])  # fills the queue's one slot
            with pytest.raises(ServingError, match="backpressure"):
                serving.submit(0, [1.0, 0.0], block=False)
            assert serving.telemetry.counter("serve.rejected").value == 1
            stubbed.release.set()
            assert first.wait(timeout=5.0) == 42.0

    def test_submit_requires_running_server(self, server, stubbed):
        serving = ServingServer(server, ServingConfig(refill=False))
        with pytest.raises(ServingError):
            serving.submit(0, [1.0, 0.0])

    def test_queue_drained_on_stop(self, server, stubbed):
        config = ServingConfig(workers=1, queue_depth=8, refill=False)
        serving = ServingServer(server, config).start()
        stubbed.release.set()
        reqs = [serving.submit(0, [1.0, 0.0]) for _ in range(5)]
        serving.stop()
        assert all(r.done for r in reqs)
        assert all(r.wait(timeout=0.1) == 42.0 for r in reqs)


class TestTimeouts:
    def test_waiter_timeout_raises_typed_error(self, server, stubbed):
        config = ServingConfig(workers=1, queue_depth=4, refill=False)
        with ServingServer(server, config) as serving:
            with pytest.raises(ServingError, match="timed out"):
                serving.query(0, [1.0, 0.0], timeout=0.2)
            assert serving.telemetry.counter("serve.timeouts").value >= 1
            stubbed.release.set()

    def test_stale_request_dropped_at_dequeue(self, server, stubbed):
        config = ServingConfig(
            workers=1, queue_depth=4, request_timeout_s=0.2, refill=False
        )
        with ServingServer(server, config) as serving:
            blocker = serving.submit(0, [1.0, 0.0])  # holds the worker
            assert stubbed.started.wait(timeout=5.0)
            stale = serving.submit(1, [0.0, 1.0])
            time.sleep(0.3)  # let the stale request's deadline lapse
            stubbed.release.set()
            assert blocker.wait(timeout=5.0) == 42.0
            with pytest.raises(ServingError, match="deadline"):
                stale.wait(timeout=5.0)

    def test_cancelled_request_not_executed(self, server, stubbed):
        config = ServingConfig(workers=1, queue_depth=4, refill=False)
        with ServingServer(server, config) as serving:
            blocker = serving.submit(0, [1.0, 0.0])
            assert stubbed.started.wait(timeout=5.0)
            victim = serving.submit(1, [0.0, 1.0])
            victim.cancel()
            stubbed.release.set()
            assert blocker.wait(timeout=5.0) == 42.0
            with pytest.raises(ServingError, match="cancelled"):
                victim.wait(timeout=5.0)


class TestRetries:
    def test_transient_protocol_error_is_retried(self, server, stubbed):
        stubbed.release.set()
        stubbed.failures = [GCProtocolError("transient corruption")]
        config = ServingConfig(workers=1, max_retries=1, refill=False)
        with ServingServer(server, config) as serving:
            req = serving.submit(0, [1.0, 0.0])
            assert req.wait(timeout=5.0) == 42.0
            assert req.attempts == 2
            assert serving.telemetry.counter("serve.retries").value == 1

    def test_retry_budget_exhausted_surfaces_error(self, server, stubbed):
        stubbed.release.set()
        stubbed.failures = [GCProtocolError("one"), GCProtocolError("two")]
        config = ServingConfig(workers=1, max_retries=1, refill=False)
        with ServingServer(server, config) as serving:
            req = serving.submit(0, [1.0, 0.0])
            with pytest.raises(GCProtocolError, match="two"):
                req.wait(timeout=5.0)
            assert serving.telemetry.counter("serve.failed").value == 1

    def test_client_errors_never_retried(self, server, stubbed):
        stubbed.release.set()
        stubbed.failures = [ConfigurationError("no such row")]
        config = ServingConfig(workers=1, max_retries=3, refill=False)
        with ServingServer(server, config) as serving:
            req = serving.submit(0, [1.0, 0.0])
            with pytest.raises(ConfigurationError):
                req.wait(timeout=5.0)
            assert req.attempts == 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": 0},
            {"request_timeout_s": 0},
            {"max_retries": -1},
            {"refill_poll_s": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs).validate()

    def test_validation_runs_at_construction(self, server):
        with pytest.raises(ConfigurationError):
            ServingServer(server, ServingConfig(workers=0))
