"""Cross-tenant batching and tenant-credit admission: the regression
tests pinning PR 8's two serving-layer claims.

1. Two tenants whose queries share a circuit fingerprint garble in ONE
   batched AES invocation (one ``gc.aes_batch_calls`` increment per
   topological stage, regardless of batch size); distinct fingerprints
   never co-batch.
2. The ``TenantScheduler`` bounds every tenant — including a
   mass-adoption burst through the :class:`ResumeBatcher` — so no
   tenant can starve the others of admission.
"""

import queue
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, OverloadedError, ServingError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.serve import (
    GarbleStation,
    ResumeBatcher,
    ServingConfig,
    ServingServer,
    TenantScheduler,
)
from repro.telemetry import MetricsRegistry

MODEL = np.array([[1.5, -0.5], [0.25, 2.0]])


def _vector_server(**kwargs):
    return CloudServer(
        MODEL, Q8_4, pool_size=0, seed=7, auto_refill=False,
        garble_mode="vectorized", **kwargs,
    )


def _take_in_threads(station, accel, keys):
    """Run one station.take per key on concurrent threads."""
    results = {}
    errors = []

    def taker(idx, key):
        try:
            results[idx] = station.take(accel, 2, key)
        except BaseException as exc:  # noqa: BLE001 — surfaced in the test
            errors.append(exc)

    threads = [
        threading.Thread(target=taker, args=(i, k)) for i, k in enumerate(keys)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert not errors, errors
    return results


class TestGarbleStation:
    def test_same_fingerprint_cobatches_one_aes_invocation(self):
        """Two takers, one fingerprint: a single ``garble_vectorized``
        pass — the AES batch counter rises exactly as much as ONE run's
        garbling would, and both takers get distinct fresh-label runs."""
        accel = _vector_server().accelerator

        solo = MetricsRegistry()
        accel.garble_vectorized(2, 1, telemetry=solo)
        per_run_batches = solo.counter("gc.aes_batch_calls").value
        assert per_run_batches > 0

        tm = MetricsRegistry()
        station = GarbleStation(window_s=10.0, max_batch=2, telemetry=tm)
        runs = _take_in_threads(station, accel, ["fp-same", "fp-same"])
        assert len(runs) == 2
        assert runs[0] is not runs[1]
        assert tm.counter("station.batches").value == 1
        assert tm.counter("station.batched_runs").value == 2
        assert tm.counter("station.cobatched").value == 1
        # the whole point: batching two tenants did not double the AES work
        assert tm.counter("gc.aes_batch_calls").value == per_run_batches

    def test_distinct_fingerprints_never_cobatch(self):
        accel = _vector_server().accelerator
        tm = MetricsRegistry()
        station = GarbleStation(window_s=0.05, max_batch=2, telemetry=tm)
        runs = _take_in_threads(station, accel, ["fp-a", "fp-b"])
        assert len(runs) == 2
        assert tm.counter("station.batches").value == 2
        assert tm.counter("station.cobatched").value == 0

    def test_leader_error_propagates_to_every_rider(self):
        class _Broken:
            def garble_vectorized(self, rounds, n, telemetry=None):
                raise ServingError("injected garble failure")

        station = GarbleStation(window_s=10.0, max_batch=2)
        errors = []

        def taker():
            try:
                station.take(_Broken(), 2, "fp")
            except ServingError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=taker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert len(errors) == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GarbleStation(window_s=-0.1)
        with pytest.raises(ConfigurationError):
            GarbleStation(max_batch=0)


class TestServingCobatch:
    def test_two_tenants_share_one_garble_through_the_server(self):
        """End to end: ring-scheduled serving on the vectorized path,
        two tenants' pool-missing queries meet in the garble station and
        still return their own correct MAC results."""
        server = _vector_server()
        tm = server.telemetry
        config = ServingConfig(
            workers=2, queue_depth=8, refill=False, scheduler="ring",
        )
        with ServingServer(server, config) as serving:
            # swap in a patient station so the co-ride is deterministic
            station = GarbleStation(window_s=5.0, max_batch=2, telemetry=tm)
            serving.station = station
            server.attach_garble_station(station)
            xa, xb = [0.5, 0.25], [-0.75, 1.0]
            ra = serving.submit(0, xa, tenant="alice")
            rb = serving.submit(1, xb, tenant="bob")
            assert ra.wait(timeout=30.0) == pytest.approx(
                float(MODEL[0] @ np.array(xa)), abs=0.1
            )
            assert rb.wait(timeout=30.0) == pytest.approx(
                float(MODEL[1] @ np.array(xb)), abs=0.1
            )
        assert tm.counter("station.cobatched").value >= 1
        assert server.stats.runs_garbled == 2  # one garbled run each


class TestTenantScheduler:
    def test_inflight_bound_sheds_typed_with_the_tenant_named(self):
        sched = TenantScheduler(credit_cap=4, max_inflight=1)
        assert sched.admit("a") == "a"
        with pytest.raises(OverloadedError, match="tenant a is at its in-flight"):
            sched.admit("a")
        sched.complete("a")
        assert sched.admit("a") == "a"

    def test_blank_tenant_pools_into_default(self):
        sched = TenantScheduler()
        assert sched.admit("") == "default"
        sched.complete("")
        snap = sched.snapshot()
        assert snap["tenants"]["default"]["admitted"] == 1

    def test_credits_exhaust_and_refill_on_completion(self):
        sched = TenantScheduler(credit_cap=2, max_inflight=8)
        sched.admit("a")
        sched.admit("a")
        with pytest.raises(OverloadedError, match="out of admission credits"):
            sched.admit("a")
        sched.complete("a")  # mints one credit back through the WRR
        assert sched.admit("a") == "a"
        sched.check_invariants()

    def test_release_refunds_a_raced_admission(self):
        sched = TenantScheduler(credit_cap=2, max_inflight=2)
        sched.admit("a")
        sched.release("a")
        snap = sched.snapshot()
        assert snap["tenants"]["a"]["credits"] == 2
        assert snap["tenants"]["a"]["inflight"] == 0
        sched.check_invariants()

    def test_weighted_refill_favors_the_heavy_tenant(self):
        sched = TenantScheduler(
            weights=(("heavy", 3.0), ("light", 1.0)),
            credit_cap=2, max_inflight=2,
        )
        # drain both, then mint four credits via four completions
        for t in ("heavy", "light"):
            sched.admit(t)
            sched.admit(t)
        for _ in range(2):
            sched.complete("heavy")
            sched.complete("light")
        snap = sched.snapshot()["tenants"]
        assert snap["heavy"]["credits"] >= snap["light"]["credits"]
        sched.check_invariants()

    def test_one_tenant_cannot_block_another(self):
        sched = TenantScheduler(credit_cap=1, max_inflight=1)
        sched.admit("greedy")
        with pytest.raises(OverloadedError):
            sched.admit("greedy")
        assert sched.admit("patient") == "patient"

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TenantScheduler(credit_cap=0)
        with pytest.raises(ConfigurationError):
            TenantScheduler(max_inflight=0)
        with pytest.raises(ConfigurationError):
            TenantScheduler(weights=(("a", -1.0),))
        with pytest.raises(ConfigurationError):
            TenantScheduler(weights=(("", 1.0),))


class FakeServing:
    """Just enough of ServingServer for the batcher, with a live
    :class:`TenantScheduler` attached (the PR 8 adoption seam).

    Deliberately has NO ``resume_batch_cap`` attribute: batcher code
    must ``getattr``-guard the controller seam, not assume it."""

    def __init__(self, depth=64, credit_cap=2, max_inflight=2):
        self.config = ServingConfig(refill=False, queue_depth=depth)
        self.scheduler = TenantScheduler(
            credit_cap=credit_cap, max_inflight=max_inflight
        )
        self._queue = queue.Queue(maxsize=depth)
        self._accepting = True
        self.enqueued = []

    def _enqueue(self, req, block):
        try:
            self._queue.put_nowait(req)
        except queue.Full:
            raise OverloadedError("queue full") from None
        self.enqueued.append(req)
        return req


def checkpoint_stub(sid="s-b", tenant=""):
    class _Cp:
        session_id = sid
    _Cp.tenant = tenant
    _Cp.row_index = 0
    return _Cp()


class TestAdoptionFairness:
    """The latent ResumeBatcher unfairness, fixed: adoption rides the
    same tenant credits as live admission, so a mass-adoption burst for
    one tenant cannot starve the others."""

    def test_adoption_burst_is_credit_bounded(self):
        serving = FakeServing(credit_cap=2, max_inflight=2)
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=64)
        admitted, shed = 0, 0
        for i in range(10):
            try:
                batcher.submit(checkpoint_stub(f"s-{i}", tenant="burster"), None, None)
                admitted += 1
            except OverloadedError:
                shed += 1
        assert admitted == 2  # exactly the in-flight bound
        assert shed == 8
        serving.scheduler.check_invariants()

    def test_live_tenant_admits_through_the_burst(self):
        serving = FakeServing(credit_cap=2, max_inflight=2)
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=64)
        for i in range(10):
            try:
                batcher.submit(checkpoint_stub(f"s-{i}", tenant="burster"), None, None)
            except OverloadedError:
                pass
        # the burster is pinned at its bound; a live tenant still admits
        assert serving.scheduler.admit("live") == "live"

    def test_adoption_completion_returns_the_credit(self):
        serving = FakeServing(credit_cap=2, max_inflight=2)
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=2)
        h1 = batcher.submit(checkpoint_stub("s-1", tenant="t"), None, None)
        h2 = batcher.submit(checkpoint_stub("s-2", tenant="t"), None, None)
        for h in (h1, h2):
            h._finish(ServingError("session ended"))
        snap = serving.scheduler.snapshot()["tenants"]["t"]
        assert snap["inflight"] == 0
        assert snap["credits"] == 2
        serving.scheduler.check_invariants()

    def test_finish_is_idempotent_on_the_ledger(self):
        serving = FakeServing(credit_cap=2, max_inflight=2)
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=64)
        h = batcher.submit(checkpoint_stub("s-1", tenant="t"), None, None)
        h._finish(None)
        h._finish(ServingError("late duplicate"))  # must not double-credit
        snap = serving.scheduler.snapshot()["tenants"]["t"]
        assert snap["inflight"] == 0
        serving.scheduler.check_invariants()


class TestAdoptionBatchHeadroom:
    """The PR 10 batcher fix: adoption batches used to be sized from
    static config even when the serving queue was nearly full, landing
    a full-size batch exactly when the fleet had no room for it.
    ``effective_max_batch`` now caps by live queue headroom (and by the
    SLO controller's adoption ceiling, when one is attached)."""

    def test_static_config_sizing_without_controller_or_pressure(self):
        serving = FakeServing(depth=64, credit_cap=64, max_inflight=64)
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=4)
        # FakeServing has no resume_batch_cap: the getattr guard holds
        assert batcher.effective_max_batch() == 4

    def test_saturated_queue_shrinks_the_batch_to_headroom(self):
        serving = FakeServing(depth=4, credit_cap=64, max_inflight=64)
        for _ in range(2):
            serving._queue.put_nowait(object())  # live traffic: 2 of 4
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=4)
        assert batcher.effective_max_batch() == 2
        # the flush trigger honours the shrunken cap: two submissions
        # flush immediately instead of waiting to accumulate four
        batcher.submit(checkpoint_stub("s-1", tenant="t1"), None, None)
        assert not serving.enqueued
        batcher.submit(checkpoint_stub("s-2", tenant="t2"), None, None)
        assert len(serving.enqueued) == 1
        assert len(serving.enqueued[0].entries) == 2

    def test_controller_cap_bounds_the_batch(self):
        serving = FakeServing(depth=64, credit_cap=64, max_inflight=64)
        serving.resume_batch_cap = 2  # what an SLO controller exposes
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=8)
        assert batcher.effective_max_batch() == 2
        serving.resume_batch_cap = 1
        assert batcher.effective_max_batch() == 1
        batcher.submit(checkpoint_stub("s-1", tenant="t1"), None, None)
        assert len(serving.enqueued) == 1
        assert len(serving.enqueued[0].entries) == 1

    def test_headroom_floor_is_one(self):
        """One free slot left: the batch shrinks to 1, it does not
        wedge at 0 (the submit pre-check already sheds a full queue)."""
        serving = FakeServing(depth=4, credit_cap=64, max_inflight=64)
        for _ in range(3):
            serving._queue.put_nowait(object())
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=4)
        assert batcher.effective_max_batch() == 1

    def test_full_queue_still_sheds_typed_at_submit(self):
        serving = FakeServing(depth=2, credit_cap=64, max_inflight=64)
        for _ in range(2):
            serving._queue.put_nowait(object())
        batcher = ResumeBatcher(serving, window_s=60.0, max_batch=4)
        with pytest.raises(OverloadedError, match="batched admission shed"):
            batcher.submit(checkpoint_stub("s-1", tenant="t"), None, None)
