"""Cross-module integration tests: the whole system end to end."""

import numpy as np
import pytest

from repro import (
    MAXelerator,
    PrivateMatVec,
    Q8_4,
    Q16_8,
    Table2,
    TinyGarbleModel,
    build_scheduled_mac,
    schedule_rounds,
)
from repro.accel.fsm import AcceleratorFSM
from repro.accel.maxelerator import MaxSequentialGarbler
from repro.bits import from_bits, to_bits
from repro.crypto.ot import TOY_GROUP
from repro.gc.channel import local_channel, run_two_party
from repro.gc.sequential_gc import SequentialEvaluator


class TestCrossBackendEquality:
    def test_both_backends_agree_bit_exactly(self):
        rng = np.random.default_rng(31)
        a = rng.uniform(-3, 3, size=(2, 3)).round(2)
        x = rng.uniform(-3, 3, size=3).round(2)
        res_hw = PrivateMatVec(a, Q16_8, backend="maxelerator", seed=1).run_with_client(x)
        res_sw = PrivateMatVec(a, Q16_8, backend="tinygarble", seed=1).run_with_client(x)
        np.testing.assert_array_equal(res_hw.result, res_sw.result)

    def test_backends_agree_with_plaintext_quantised(self):
        a = np.array([[0.25, -0.5, 1.75]])
        x = np.array([2.0, 3.0, -1.25])
        pm = PrivateMatVec(a, Q8_4, backend="maxelerator", seed=2)
        assert pm.run_with_client(x).result[0] == pm.expected(x)[0]


class TestSixteenBitSystem:
    def test_full_16bit_dot_product_on_accelerator(self):
        acc = MAXelerator(16, seed=5)
        g_chan, e_chan = local_channel()
        garbler = MaxSequentialGarbler(acc, g_chan, TOY_GROUP)
        client = SequentialEvaluator(acc.circuit.circuit, e_chan, TOY_GROUP)
        a_vec = [-30000, 12345, 77]
        x_vec = [2, -3, 999]
        _, e_rep = run_two_party(
            lambda: garbler.run([to_bits(a, 16) for a in a_vec]),
            lambda: client.run([to_bits(x, 16) for x in x_vec]),
        )
        assert from_bits(e_rep.output_bits, signed=True) == sum(
            a * x for a, x in zip(a_vec, x_vec)
        )
        # timing metadata from the run is consistent with Table 2
        run = garbler.last_run
        assert run.schedule.steady_state_cycles_per_mac == 48


class TestAccountingConsistency:
    def test_bytes_tables_hashes_line_up(self):
        acc = MAXelerator(8, seed=6)
        run = acc.garble(3)
        n_ands = sum(1 for g in acc.circuit.netlist.gates if not g.is_free)
        assert run.total_tables == 3 * n_ands
        # 4 AES activations per table across all engines
        aes = sum(c.engine.stats.aes_activations for c in run.cores)
        assert aes == 4 * run.total_tables
        # PCIe bytes = 32 per table
        assert acc.transfer_report(run).total_bytes == 32 * run.total_tables

    def test_schedule_and_fsm_agree_on_cycles(self):
        smc = build_scheduled_mac(8)
        schedule = schedule_rounds(smc, 4)
        run = AcceleratorFSM(smc, seed=7).garble_rounds(4, schedule)
        assert run.total_cycles == schedule.total_cycles
        assert {(s.cycle, s.core) for s in run.stream} == {
            (op.cycle, op.core) for op in schedule.ops
        }

    def test_table2_consistent_with_models(self):
        table = Table2.build()
        tg = TinyGarbleModel(8)
        assert table.row("tinygarble", 8).time_per_mac_s == tg.time_per_mac_s
        acc = MAXelerator(8)
        assert table.row("maxelerator", 8).cycles_per_mac == acc.timing.cycles_per_mac


class TestDeterminism:
    def test_seeded_runs_are_reproducible(self):
        a = np.array([[1.0, -1.0]])
        x = np.array([0.5, 0.25])
        r1 = PrivateMatVec(a, Q8_4, seed=42).run_with_client(x)
        r2 = PrivateMatVec(a, Q8_4, seed=42).run_with_client(x)
        np.testing.assert_array_equal(r1.result, r2.result)

    def test_different_seeds_give_fresh_tables_same_result(self):
        acc1 = MAXelerator(8, seed=1)
        acc2 = MAXelerator(8, seed=2)
        run1, run2 = acc1.garble(1), acc2.garble(1)
        assert run1.stream[0].table != run2.stream[0].table
        assert run1.total_tables == run2.total_tables

    def test_repeated_garblings_never_reuse_labels(self):
        # regression: even under a fixed seed, each garble() must use
        # fresh labels (label reuse across garblings breaks GC security)
        acc = MAXelerator(8, seed=42)
        run1, run2 = acc.garble(1), acc.garble(1)
        assert run1.stream[0].table != run2.stream[0].table
        assert run1.offset != run2.offset
