"""Garble/evaluate round-trip correctness and GC invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.builder import NetlistBuilder
from repro.circuits.gates import GateType
from repro.circuits import library as lib
from repro.circuits.mac import accumulator_width, build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.crypto.labels import LabelFactory, LabelPair, color
from repro.errors import GCProtocolError
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.tables import GarbledTable, deserialize_tables, serialize_tables


def gc_run(net, g_bits, e_bits, const_known=True):
    """Garble, pick active labels, evaluate, decode."""
    gc = Garbler(net).garble()
    labels = {}
    for w, b in zip(net.garbler_inputs, g_bits):
        labels[w] = gc.wire_pairs[w].select(b)
    for w, b in zip(net.evaluator_inputs, e_bits):
        labels[w] = gc.wire_pairs[w].select(b)
    for w, b in net.constants.items():
        labels[w] = gc.wire_pairs[w].select(b)
    result = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
    return result, gc


def single_gate_netlist(gtype):
    b = NetlistBuilder(f"g_{gtype.label}")
    if gtype.arity == 2:
        a, x = b.garbler_input_bus(1)[0], b.evaluator_input_bus(1)[0]
        b.set_outputs([b._emit(gtype, a, x)])
    else:
        a = b.garbler_input_bus(1)[0]
        b.set_outputs([b._emit(gtype, a)])
    return b.build()


class TestSingleGates:
    @pytest.mark.parametrize(
        "gtype",
        [
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.ANDNOT,
            GateType.NOTAND,
            GateType.ORNOT,
            GateType.NOTOR,
            GateType.XOR,
            GateType.XNOR,
        ],
    )
    def test_all_two_input_gates_all_inputs(self, gtype):
        net = single_gate_netlist(gtype)
        for a in (0, 1):
            for x in (0, 1):
                result, _ = gc_run(net, [a], [x])
                assert result.output_bits == [gtype.eval(a, x)], (gtype, a, x)

    @pytest.mark.parametrize("gtype", [GateType.NOT, GateType.BUF])
    def test_unary_gates(self, gtype):
        net = single_gate_netlist(gtype)
        for a in (0, 1):
            result, _ = gc_run(net, [a], [])
            assert result.output_bits == [gtype.eval(a)]


class TestFreeXorInvariants:
    def test_xor_produces_no_tables(self):
        b = NetlistBuilder("xors")
        g = b.garbler_input_bus(4)
        e = b.evaluator_input_bus(4)
        outs = [b.XOR(gi, ei) for gi, ei in zip(g, e)]
        outs.append(b.NOT(outs[0]))
        b.set_outputs(outs)
        net = b.build()
        gc = Garbler(net).garble()
        assert gc.tables == []
        assert gc.hash_calls == 0

    def test_and_costs_exactly_four_garbler_hashes(self):
        net = single_gate_netlist(GateType.AND)
        gc = Garbler(net).garble()
        assert gc.hash_calls == 4
        assert len(gc.tables) == 1

    def test_and_costs_exactly_two_evaluator_hashes(self):
        net = single_gate_netlist(GateType.AND)
        result, _ = gc_run(net, [1], [1])
        assert result.hash_calls == 2

    def test_table_bytes_invariant(self):
        # 32 bytes per AND-class gate, nothing else
        net = build_mac_netlist(8)
        gc = Garbler(net).garble()
        payload = serialize_tables(gc.tables)
        assert len(payload) == 32 * net.stats().n_nonfree

    def test_all_wire_pairs_share_offset(self):
        net = build_mac_netlist(8)
        gc = Garbler(net).garble()
        for pair in gc.wire_pairs.values():
            assert pair.one ^ pair.zero == gc.offset
            assert color(pair.zero) != color(pair.one)


class TestArithmeticRoundTrips:
    @given(a=st.integers(-100, 100), x=st.integers(-100, 100))
    @settings(max_examples=10, deadline=None)
    def test_signed_tree_multiplier(self, a, x):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        result, _ = gc_run(net, to_bits(a, 8), to_bits(x, 8))
        assert from_bits(result.output_bits, signed=True) == a * x

    def test_serial_multiplier(self):
        net = build_multiplier_netlist(8, kind="serial", signed=False)
        result, _ = gc_run(net, to_bits(201, 8), to_bits(173, 8))
        assert from_bits(result.output_bits) == 201 * 173

    @given(
        a=st.integers(-100, 100),
        x=st.integers(-100, 100),
        acc=st.integers(-1000, 1000),
    )
    @settings(max_examples=8, deadline=None)
    def test_mac(self, a, x, acc):
        aw = accumulator_width(8)
        net = build_mac_netlist(8, aw)
        result, _ = gc_run(net, to_bits(a, 8) + to_bits(acc, aw), to_bits(x, 8))
        assert from_bits(result.output_bits, signed=True) == acc + a * x

    def test_comparator(self):
        b = NetlistBuilder("cmp")
        g = b.garbler_input_bus(8)
        e = b.evaluator_input_bus(8)
        b.set_outputs([lib.less_than(b, g, e, signed=True)])
        net = b.build()
        for a, x in [(-5, 3), (3, -5), (7, 7), (-128, 127)]:
            result, _ = gc_run(net, to_bits(a, 8), to_bits(x, 8))
            assert result.output_bits == [int(a < x)]


class TestGarblerDecode:
    def test_garbler_decodes_returned_labels(self):
        net = build_multiplier_netlist(4, signed=False)
        result, gc = gc_run(net, to_bits(9, 4), to_bits(11, 4))
        assert from_bits(gc.decode(result.output_labels)) == 99


class TestSequentialStatePresets:
    def test_preset_pairs_flow_through(self):
        net = build_mac_netlist(4, 12)
        factory = LabelFactory()
        garbler = Garbler(net, factory=factory)
        first = garbler.garble()
        preset = {net.garbler_inputs[0]: first.output_pairs[0]}
        second = garbler.garble(preset_pairs=preset, tweak_offset=len(net.gates))
        assert second.wire_pairs[net.garbler_inputs[0]] == first.output_pairs[0]

    def test_foreign_offset_preset_rejected(self):
        net = build_mac_netlist(4, 12)
        garbler = Garbler(net)
        other = LabelFactory()  # different R
        bad = {net.garbler_inputs[0]: other.fresh_pair()}
        with pytest.raises(GCProtocolError):
            garbler.garble(preset_pairs=bad)

    def test_distinct_tweak_offsets_change_tables(self):
        net = single_gate_netlist(GateType.AND)
        factory = LabelFactory(source=random.Random(5))
        t0 = Garbler(net, factory=LabelFactory(source=random.Random(5))).garble(
            tweak_offset=0
        )
        t1 = Garbler(net, factory=LabelFactory(source=random.Random(5))).garble(
            tweak_offset=100
        )
        # same labels, different tweaks -> different ciphertexts
        assert (t0.tables[0].t_g, t0.tables[0].t_e) != (t1.tables[0].t_g, t1.tables[0].t_e)


class TestEvaluatorErrors:
    def test_missing_labels_detected(self):
        net = build_multiplier_netlist(4, signed=False)
        gc = Garbler(net).garble()
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(gc.tables, {})

    def test_wrong_table_count_detected(self):
        net = build_multiplier_netlist(4, signed=False)
        result, gc = gc_run(net, to_bits(1, 4), to_bits(1, 4))
        labels = {
            w: gc.wire_pairs[w].zero for w in net.input_wires + list(net.constants)
        }
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(gc.tables[:-1], labels)

    def test_out_of_order_tables_detected(self):
        net = build_multiplier_netlist(4, signed=False)
        gc = Garbler(net).garble()
        labels = {
            w: gc.wire_pairs[w].zero for w in net.input_wires + list(net.constants)
        }
        shuffled = list(reversed(gc.tables))
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(shuffled, labels)

    def test_output_map_length_checked(self):
        net = single_gate_netlist(GateType.AND)
        gc = Garbler(net).garble()
        labels = {w: gc.wire_pairs[w].zero for w in net.input_wires}
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(gc.tables, labels, output_permute_bits=[0, 1])


class TestTableSerialization:
    def test_round_trip(self):
        tables = [GarbledTable(i, i * 7919, i * 104729) for i in range(5)]
        payload = serialize_tables(tables)
        back = deserialize_tables(payload, [t.gate_index for t in tables])
        assert back == tables

    def test_bad_sizes_raise(self):
        with pytest.raises(GCProtocolError):
            GarbledTable.from_bytes(0, b"x" * 31)
        with pytest.raises(GCProtocolError):
            deserialize_tables(b"x" * 33, [0])


class TestSecurityHygiene:
    def test_evaluator_never_sees_both_labels(self):
        # the set of labels visible to the evaluator along the run must
        # never contain both labels of any wire
        net = build_mac_netlist(4, 12)
        g_bits = to_bits(3, 4) + to_bits(100, 12)
        e_bits = to_bits(-2, 4)
        gc = Garbler(net).garble()
        labels = {}
        for w, b in zip(net.garbler_inputs, g_bits):
            labels[w] = gc.wire_pairs[w].select(b)
        for w, b in zip(net.evaluator_inputs, e_bits):
            labels[w] = gc.wire_pairs[w].select(b)
        for w, b in net.constants.items():
            labels[w] = gc.wire_pairs[w].select(b)
        result = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
        seen = set(labels.values()) | set(result.output_labels)
        for pair in gc.wire_pairs.values():
            assert not ({pair.zero, pair.one} <= seen), "evaluator saw both labels"

    def test_permute_bits_roughly_uniform(self):
        net = build_mac_netlist(8)
        gc = Garbler(net).garble()
        bits = [p.permute_bit for p in gc.wire_pairs.values()]
        frac = sum(bits) / len(bits)
        assert 0.35 < frac < 0.65
