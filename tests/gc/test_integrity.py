"""The end-to-end integrity trailer: CRC32 over (sequence, tag, body).

Honest-but-curious GC never authenticates tables, so a flipped bit or a
replayed frame between the endpoint hooks used to produce *wrong MAC
labels*, not an exception.  These tests pin the trailer mechanics
directly at the EndpointBase layer.
"""

import pytest

from repro.errors import GCProtocolError, IntegrityError
from repro.gc.channel import (
    INTEGRITY_TRAILER_BYTES,
    Endpoint,
    local_channel,
    message_checksum,
)


class TestMessageChecksum:
    def test_depends_on_every_input(self):
        base = message_checksum("tag", b"body", seq=0)
        assert message_checksum("tag", b"body!", seq=0) != base
        assert message_checksum("tag!", b"body", seq=0) != base
        assert message_checksum("tag", b"body", seq=1) != base

    def test_is_trailer_sized_and_deterministic(self):
        a = message_checksum("seq.tables", b"\x00" * 100, seq=42)
        b = message_checksum("seq.tables", b"\x00" * 100, seq=42)
        assert a == b
        assert len(a) == INTEGRITY_TRAILER_BYTES


class TestWireDamageDetection:
    def test_clean_traffic_passes(self):
        g, e = local_channel()
        for i in range(5):
            g.send("t.n", bytes([i]) * 8)
            assert e.recv("t.n") == bytes([i]) * 8

    def test_corruption_below_the_trailer_is_caught(self):
        g, e = local_channel()
        original = Endpoint._send_message

        def corrupting(self, tag, payload):
            damaged = bytearray(payload)
            damaged[0] ^= 0x01  # single flipped bit on the "wire"
            original(self, tag, bytes(damaged))

        g._send_message = corrupting.__get__(g)
        g.send("t.data", b"sensitive labels")
        with pytest.raises(IntegrityError, match="integrity"):
            e.recv("t.data")

    def test_truncation_below_the_trailer_is_caught(self):
        g, e = local_channel()
        original = Endpoint._send_message

        def truncating(self, tag, payload):
            original(self, tag, payload[:-2])

        g._send_message = truncating.__get__(g)
        g.send("t.data", b"cut short in transit")
        with pytest.raises(IntegrityError):
            e.recv("t.data")

    def test_replayed_frame_fails_the_sequence_check(self):
        g, e = local_channel()
        g.send("t.msg", b"legitimate")
        # replay the exact frame bytes (trailer and all) a second time
        tag, data = e._inbox.get(timeout=1.0)
        e._inbox.put((tag, data))
        e._inbox.put((tag, data))
        assert e.recv("t.msg") == b"legitimate"
        with pytest.raises(IntegrityError, match="out of order"):
            e.recv("t.msg")

    def test_recv_any_also_verifies(self):
        g, e = local_channel()
        original = Endpoint._send_message

        def corrupting(self, tag, payload):
            original(self, tag, payload[:-1] + bytes([payload[-1] ^ 0xFF]))

        g._send_message = corrupting.__get__(g)
        g.send("t.a", b"x")
        with pytest.raises(IntegrityError):
            e.recv_any(("t.a", "t.b"))

    def test_integrity_is_checked_before_the_tag(self):
        """A damaged frame must fail integrity even if its tag happens
        not to match — the bytes are untrustworthy, period."""
        g, e = local_channel()
        original = Endpoint._send_message

        def corrupting(self, tag, payload):
            original(self, tag, b"\x00" + payload[1:])

        g._send_message = corrupting.__get__(g)
        g.send("t.unexpected", b"\xff" * 16)
        with pytest.raises(IntegrityError):
            e.recv("t.something_else")

    def test_accounting_sees_payload_not_trailer(self):
        g, e = local_channel()
        g.send("t.sized", b"12345678")
        assert g.sent.payload_bytes == 8
        assert g.sent.by_tag["t.sized"] == 8
        assert e.recv("t.sized") == b"12345678"

    def test_sequences_are_per_direction(self):
        g, e = local_channel()
        for _ in range(3):
            g.send("t.down", b"d")
            assert e.recv("t.down") == b"d"
        # the reverse direction starts its own sequence at zero
        e.send("t.up", b"u")
        assert g.recv("t.up") == b"u"

    def test_tag_mismatch_is_still_a_protocol_error(self):
        g, e = local_channel()
        g.send("t.actual", b"x")
        with pytest.raises(GCProtocolError, match="expected message"):
            e.recv("t.expected")
