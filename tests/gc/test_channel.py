"""Channel semantics: tags, blocking, accounting, helpers."""

import threading
import time

import pytest

from repro.errors import GCProtocolError
from repro.gc.channel import TrafficStats, local_channel, run_two_party


class TestBasics:
    def test_send_recv_round_trip(self):
        a, b = local_channel()
        a.send("x", b"payload")
        assert b.recv("x") == b"payload"

    def test_tag_mismatch_detected(self):
        a, b = local_channel()
        a.send("x", b"payload")
        with pytest.raises(GCProtocolError):
            b.recv("y")

    def test_fifo_order(self):
        a, b = local_channel()
        a.send("m", b"1")
        a.send("m", b"2")
        assert b.recv("m") == b"1"
        assert b.recv("m") == b"2"

    def test_non_bytes_rejected(self):
        a, _ = local_channel()
        with pytest.raises(GCProtocolError):
            a.send("x", "a string")

    def test_empty_recv_times_out(self):
        _, b = local_channel()
        with pytest.raises(GCProtocolError):
            b.recv("x", timeout=0.05)

    def test_duplex(self):
        a, b = local_channel()
        a.send("ping", b"1")
        b.send("pong", b"2")
        assert b.recv("ping") == b"1"
        assert a.recv("pong") == b"2"

    def test_pending_counts(self):
        a, b = local_channel()
        assert b.pending == 0
        a.send("x", b"")
        assert b.pending == 1


class TestBlocking:
    def test_recv_blocks_until_peer_sends(self):
        a, b = local_channel()
        result = []

        def late_sender():
            time.sleep(0.05)
            a.send("slow", b"data")

        t = threading.Thread(target=late_sender)
        t.start()
        result.append(b.recv("slow", timeout=2.0))
        t.join()
        assert result == [b"data"]

    def test_run_two_party_returns_both_results(self):
        a, b = local_channel()

        def left():
            a.send("q", b"hello")
            return a.recv("r")

        def right():
            msg = b.recv("q")
            b.send("r", msg.upper())
            return msg

        left_out, right_out = run_two_party(left, right)
        assert left_out == b"HELLO"
        assert right_out == b"hello"

    def test_run_two_party_propagates_right_exception(self):
        a, b = local_channel()

        def left():
            return a.recv("never", timeout=0.5)

        def right():
            raise ValueError("boom")

        with pytest.raises((ValueError, GCProtocolError)):
            run_two_party(left, right)

    def test_run_two_party_surfaces_both_failures(self):
        """Deadlock post-mortems: the left error carries the right one."""

        def left():
            raise GCProtocolError("left timed out")

        def right():
            raise ValueError("right exploded first")

        with pytest.raises(GCProtocolError) as exc_info:
            run_two_party(left, right)
        message = str(exc_info.value)
        assert "left timed out" in message
        assert "right exploded first" in message
        assert "ValueError" in message
        # the chained cause is the actual right-side exception object
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_run_two_party_single_failure_unwrapped(self):
        def left():
            return "ok"

        def right():
            raise ValueError("only failure")

        with pytest.raises(ValueError, match="only failure"):
            run_two_party(left, right)


class TestAccounting:
    def test_bytes_and_messages_counted(self):
        a, b = local_channel()
        a.send("t1", b"12345")
        a.send("t2", b"abc")
        assert a.sent.messages == 2
        assert a.sent.payload_bytes == 8
        assert a.sent.by_tag == {"t1": 5, "t2": 3}

    def test_stats_record_direct(self):
        stats = TrafficStats()
        stats.record("x", 10)
        stats.record("x", 5)
        assert stats.by_tag["x"] == 15


class TestServingErrorPaths:
    """Wire-level failures must surface as typed errors, never hangs.

    These drive the *real* sequential evaluator against hand-crafted
    garbler messages: truncated table payloads, out-of-order tags, and
    a silent peer all raise ``GCProtocolError`` with the evaluator's
    state intact enough to report, instead of corrupting or deadlocking.
    """

    @staticmethod
    def _evaluator(chan):
        from repro.accel.tree_mac import build_scheduled_mac
        from repro.gc.sequential_gc import SequentialEvaluator

        circuit = build_scheduled_mac(4).circuit
        n_in = len(circuit.netlist.evaluator_inputs)
        return SequentialEvaluator(circuit, chan), [[0] * n_in]

    def test_truncated_tables_payload_raises_typed_error(self):
        g_chan, e_chan = local_channel()
        evaluator, rounds = self._evaluator(e_chan)
        g_chan.send("seq.rounds", (1).to_bytes(4, "big"))
        g_chan.send("seq.ot_mode", b"per_round")
        g_chan.send("seq.tables", b"\x00" * 31)  # not a whole table
        with pytest.raises(GCProtocolError, match="table bytes"):
            evaluator.run(rounds)

    def test_out_of_order_tags_raise_typed_error(self):
        g_chan, e_chan = local_channel()
        evaluator, rounds = self._evaluator(e_chan)
        g_chan.send("seq.rounds", (1).to_bytes(4, "big"))
        # garbler skips ot_mode and jumps straight to tables
        g_chan.send("seq.tables", b"\x00" * 64)
        with pytest.raises(GCProtocolError, match="seq.ot_mode"):
            evaluator.run(rounds)

    def test_unknown_ot_mode_rejected(self):
        g_chan, e_chan = local_channel()
        evaluator, rounds = self._evaluator(e_chan)
        g_chan.send("seq.rounds", (1).to_bytes(4, "big"))
        g_chan.send("seq.ot_mode", b"telepathy")
        with pytest.raises(GCProtocolError, match="ot_mode"):
            evaluator.run(rounds)

    def test_round_count_mismatch_rejected(self):
        g_chan, e_chan = local_channel()
        evaluator, rounds = self._evaluator(e_chan)
        g_chan.send("seq.rounds", (7).to_bytes(4, "big"))
        with pytest.raises(GCProtocolError, match="rounds"):
            evaluator.run(rounds)

    def test_silent_garbler_times_out_not_hangs(self):
        import repro.gc.channel as channel_mod

        _, e_chan = local_channel()
        evaluator, rounds = self._evaluator(e_chan)
        original = channel_mod.RECV_TIMEOUT_S
        channel_mod.RECV_TIMEOUT_S = 0.1
        try:
            with pytest.raises(GCProtocolError, match="timed out"):
                evaluator.run(rounds)
        finally:
            channel_mod.RECV_TIMEOUT_S = original

    def test_ragged_label_payload_raises_typed_error(self):
        g_chan, e_chan = local_channel()
        evaluator, rounds = self._evaluator(e_chan)
        net = evaluator.circuit.netlist
        n_tables = sum(1 for g in net.gates if not g.is_free)
        g_chan.send("seq.rounds", (1).to_bytes(4, "big"))
        g_chan.send("seq.ot_mode", b"per_round")
        g_chan.send("seq.tables", b"\x00" * (32 * n_tables))
        g_chan.send("seq.garbler_labels", b"\x01" * 15)  # not 16-aligned
        with pytest.raises(GCProtocolError, match="16-byte"):
            evaluator.run(rounds)


class TestChannelTelemetry:
    def test_sends_land_in_shared_counters(self):
        from repro.telemetry import MetricsRegistry

        reg = MetricsRegistry()
        a, b = local_channel(telemetry=reg)
        a.send("x", b"12345")
        b.send("y", b"abc")
        assert reg.counter("channel.messages").value == 2
        assert reg.counter("channel.bytes").value == 8

    def test_per_tag_byte_counters(self):
        from repro.telemetry import MetricsRegistry, traffic_by_tag

        reg = MetricsRegistry()
        a, _ = local_channel(telemetry=reg)
        a.send("seq.tables", b"12345")
        a.send("seq.tables", b"678")
        a.send("ot.base.A", b"ab")
        assert reg.counter("channel.bytes.seq.tables").value == 8
        assert reg.counter("channel.bytes.ot.base.A").value == 2
        assert traffic_by_tag(reg.snapshot()) == {"seq.tables": 8, "ot.base.A": 2}

    def test_uninstrumented_channel_unaffected(self):
        a, _ = local_channel()
        assert a.telemetry is None
        a.send("x", b"1")
        assert a.sent.payload_bytes == 1


class TestU128Helpers:
    def test_round_trip(self):
        a, b = local_channel()
        values = [0, 1, (1 << 128) - 1]
        a.send_u128_list("labels", values)
        assert b.recv_u128_list("labels") == values

    def test_ragged_payload_rejected(self):
        a, b = local_channel()
        a.send("labels", b"x" * 17)
        with pytest.raises(GCProtocolError):
            b.recv_u128_list("labels")


class TestRecvTimeoutConfiguration:
    """The REPRO_RECV_TIMEOUT_S / per-endpoint / explicit precedence chain."""

    def test_env_var_governs_default(self, monkeypatch):
        from repro.gc.channel import resolve_recv_timeout

        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "12.5")
        assert resolve_recv_timeout() == 12.5

    def test_explicit_beats_everything(self, monkeypatch):
        from repro.gc.channel import resolve_recv_timeout

        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "12.5")
        assert resolve_recv_timeout(3.0, 7.0) == 3.0

    def test_endpoint_config_beats_env(self, monkeypatch):
        from repro.gc.channel import resolve_recv_timeout

        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "12.5")
        assert resolve_recv_timeout(None, 7.0) == 7.0

    def test_module_global_is_final_fallback(self, monkeypatch):
        import repro.gc.channel as channel_mod

        monkeypatch.delenv("REPRO_RECV_TIMEOUT_S", raising=False)
        monkeypatch.setattr(channel_mod, "RECV_TIMEOUT_S", 42.0)
        assert channel_mod.resolve_recv_timeout() == 42.0

    def test_bad_env_value_typed(self, monkeypatch):
        from repro.errors import ConfigurationError
        from repro.gc.channel import resolve_recv_timeout

        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "soon")
        with pytest.raises(ConfigurationError, match="REPRO_RECV_TIMEOUT_S"):
            resolve_recv_timeout()
        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "-1")
        with pytest.raises(ConfigurationError, match="positive"):
            resolve_recv_timeout()

    def test_env_var_times_out_blocked_recv(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "0.05")
        _, b = local_channel()
        start = time.perf_counter()
        with pytest.raises(GCProtocolError, match="timed out"):
            b.recv("never")
        assert time.perf_counter() - start < 5.0

    def test_channel_recv_timeout_parameter(self):
        _, b = local_channel(recv_timeout_s=0.05)
        with pytest.raises(GCProtocolError, match="timed out"):
            b.recv("never")

    def test_serving_config_rejects_bad_recv_timeout(self):
        from repro.errors import ConfigurationError
        from repro.serve import ServingConfig

        with pytest.raises(ConfigurationError, match="receive timeout"):
            ServingConfig(recv_timeout_s=0.0).validate()
        assert ServingConfig(recv_timeout_s=5.0).validate().recv_timeout_s == 5.0
