"""OT scheduling modes (Section 3): per-round vs upfront extension."""

import pytest

from repro.accel.maxelerator import MAXelerator, MaxSequentialGarbler
from repro.bits import from_bits, to_bits
from repro.circuits.mac import accumulator_width, build_sequential_mac
from repro.crypto.ot import TOY_GROUP
from repro.errors import GCProtocolError
from repro.gc.channel import local_channel, run_two_party
from repro.gc.sequential_gc import (
    SequentialEvaluator,
    SequentialGarbler,
    run_sequential,
)


@pytest.fixture(scope="module")
def seq8():
    return build_sequential_mac(8, accumulator_width(8, 8))


A_VEC = [3, -5, 7, 100]
X_VEC = [2, 2, -3, 50]
EXPECT = sum(a * x for a, x in zip(A_VEC, X_VEC))


def rounds(vec):
    return [to_bits(v, 8) for v in vec]


class TestSoftwareOtModes:
    @pytest.mark.parametrize("mode", ["per_round", "upfront"])
    def test_both_modes_compute_the_dot_product(self, seq8, mode):
        _, e_rep = run_sequential(
            seq8, rounds(A_VEC), rounds(X_VEC), group=TOY_GROUP, ot_mode=mode
        )
        assert from_bits(e_rep.output_bits, signed=True) == EXPECT

    def test_upfront_mode_needs_more_client_memory(self, seq8):
        _, per_round = run_sequential(
            seq8, rounds(A_VEC), rounds(X_VEC), group=TOY_GROUP, ot_mode="per_round"
        )
        _, upfront = run_sequential(
            seq8, rounds(A_VEC), rounds(X_VEC), group=TOY_GROUP, ot_mode="upfront"
        )
        # the paper's trade-off: all labels at once = rounds x the memory
        assert upfront.peak_input_label_bytes == 4 * per_round.peak_input_label_bytes

    def test_upfront_uses_ot_extension_for_many_rounds(self, seq8):
        # 4 rounds x 8 bits = 32 choices with the toy case; force the
        # extension by checking the traffic tag on a larger run
        g_chan, e_chan = local_channel()
        garbler = SequentialGarbler(seq8, g_chan, TOY_GROUP)
        evaluator = SequentialEvaluator(seq8, e_chan, TOY_GROUP)
        n = 20  # 20 * 8 = 160 > 128 -> IKNP extension
        a = rounds([1] * n)
        x = rounds([1] * n)
        run_two_party(
            lambda: garbler.run(a, ot_mode="upfront"),
            lambda: evaluator.run(x),
        )
        assert "ot.ext.u" in e_chan.sent.by_tag

    def test_bad_mode_rejected(self, seq8):
        g_chan, _ = local_channel()
        garbler = SequentialGarbler(seq8, g_chan, TOY_GROUP)
        with pytest.raises(GCProtocolError):
            garbler.run(rounds(A_VEC), ot_mode="sometimes")


class TestAcceleratorOtModes:
    @pytest.mark.parametrize("mode", ["per_round", "upfront"])
    def test_accelerator_supports_both_modes(self, mode):
        acc = MAXelerator(8, seed=17)
        g_chan, e_chan = local_channel()
        garbler = MaxSequentialGarbler(acc, g_chan, TOY_GROUP)
        client = SequentialEvaluator(acc.circuit.circuit, e_chan, TOY_GROUP)
        _, e_rep = run_two_party(
            lambda: garbler.run(rounds(A_VEC), ot_mode=mode),
            lambda: client.run(rounds(X_VEC)),
        )
        assert from_bits(e_rep.output_bits, signed=True) == EXPECT

    def test_accelerator_rejects_bad_mode(self):
        acc = MAXelerator(8, seed=18)
        g_chan, _ = local_channel()
        garbler = MaxSequentialGarbler(acc, g_chan, TOY_GROUP)
        with pytest.raises(GCProtocolError):
            garbler.run(rounds(A_VEC), ot_mode="never")
