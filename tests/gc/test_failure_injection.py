"""Failure injection: tampering, corruption, and protocol misuse.

Honest-but-curious GC does not authenticate tables, so corruption shows
up as *wrong labels*, not exceptions; these tests pin down exactly how
each failure class manifests so integrators know what to expect.
"""

import random

import pytest

from repro.bits import from_bits, to_bits
from repro.circuits.mac import build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.crypto.labels import LabelPair
from repro.errors import CryptoError, GCProtocolError
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.tables import GarbledTable


def setup_net(width=4):
    net = build_multiplier_netlist(width, signed=False)
    gc = Garbler(net).garble()
    labels = {}
    for w, bit in zip(net.garbler_inputs, to_bits(3, width)):
        labels[w] = gc.wire_pairs[w].select(bit)
    for w, bit in zip(net.evaluator_inputs, to_bits(5, width)):
        labels[w] = gc.wire_pairs[w].select(bit)
    for w, bit in net.constants.items():
        labels[w] = gc.wire_pairs[w].select(bit)
    return net, gc, labels


class TestTableCorruption:
    @staticmethod
    def _corrupt_all(tables):
        # a single flipped half-gate ciphertext is only *used* when the
        # evaluator's colour bit selects it, so corrupt both halves of
        # every table to make the damage deterministic
        return [
            GarbledTable(t.gate_index, t.t_g ^ 0xFF00FF, t.t_e ^ 0xFF00FF)
            for t in tables
        ]

    def test_flipped_table_bits_corrupt_output_labels(self):
        net, gc, labels = setup_net()
        result = Evaluator(net).evaluate(self._corrupt_all(gc.tables), labels)
        clean = Evaluator(net).evaluate(gc.tables, labels)
        assert result.output_labels != clean.output_labels

    def test_garbler_decode_rejects_corrupted_labels(self):
        # the garbler-side decode map *does* detect garbage labels
        net, gc, labels = setup_net()
        result = Evaluator(net).evaluate(self._corrupt_all(gc.tables), labels)
        with pytest.raises(CryptoError):
            gc.decode(result.output_labels)

    def test_swapped_tables_detected_by_index_check(self):
        net, gc, labels = setup_net()
        tampered = list(gc.tables)
        tampered[0], tampered[1] = tampered[1], tampered[0]
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(tampered, labels)


class TestLabelMisuse:
    def test_wrong_wire_label_corrupts_output(self):
        net, gc, labels = setup_net()
        w = net.evaluator_inputs[0]
        bad = dict(labels)
        bad[w] = labels[w] ^ 0xDEADBEEF
        clean = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
        dirty = Evaluator(net).evaluate(gc.tables, bad, gc.output_permute_bits)
        assert dirty.output_labels != clean.output_labels

    def test_stale_labels_from_previous_garbling_fail(self):
        # fresh labels every round (the paper's security requirement):
        # labels from garbling #1 are useless against garbling #2
        net = build_mac_netlist(4, 12)
        gc1 = Garbler(net).garble()
        gc2 = Garbler(net).garble()
        stale = {
            w: gc1.wire_pairs[w].zero
            for w in net.input_wires + list(net.constants)
        }
        result = Evaluator(net).evaluate(gc2.tables, stale)
        with pytest.raises(CryptoError):
            gc2.decode(result.output_labels)


class TestProtocolMisuse:
    def test_evaluating_with_wrong_tweak_offset_detected(self):
        net, gc, labels = setup_net()
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(gc.tables, labels, tweak_offset=999)

    def test_label_pair_with_foreign_offset_rejected(self):
        net = build_mac_netlist(4, 12)
        garbler = Garbler(net)
        foreign = LabelPair(12345, (1 << 127) | 1)
        with pytest.raises(GCProtocolError):
            garbler.garble(preset_pairs={net.garbler_inputs[0]: foreign})

    def test_bit_flip_in_output_map_flips_decoded_bit(self):
        net, gc, labels = setup_net()
        clean_map = gc.output_permute_bits
        flipped = [clean_map[0] ^ 1] + clean_map[1:]
        clean = Evaluator(net).evaluate(gc.tables, labels, clean_map)
        dirty = Evaluator(net).evaluate(gc.tables, labels, flipped)
        assert dirty.output_bits[0] == clean.output_bits[0] ^ 1
        assert dirty.output_bits[1:] == clean.output_bits[1:]


class TestRobustnessOfCleanPath:
    def test_many_independent_garblings_all_decode(self):
        net = build_multiplier_netlist(4, signed=False)
        rng = random.Random(9)
        for _ in range(5):
            a, x = rng.randrange(16), rng.randrange(16)
            gc = Garbler(net).garble()
            labels = {}
            for w, bit in zip(net.garbler_inputs, to_bits(a, 4)):
                labels[w] = gc.wire_pairs[w].select(bit)
            for w, bit in zip(net.evaluator_inputs, to_bits(x, 4)):
                labels[w] = gc.wire_pairs[w].select(bit)
            for w, bit in net.constants.items():
                labels[w] = gc.wire_pairs[w].select(bit)
            result = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
            assert from_bits(result.output_bits) == a * x
