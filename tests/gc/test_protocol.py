"""End-to-end two-party protocol tests (channel + OT + GC)."""

import pytest

from repro.bits import from_bits, to_bits
from repro.circuits.builder import NetlistBuilder
from repro.circuits import library as lib
from repro.circuits.mac import accumulator_width, build_mac_netlist, build_sequential_mac
from repro.circuits.multipliers import build_multiplier_netlist
from repro.crypto.ot import TOY_GROUP
from repro.errors import GCProtocolError
from repro.gc.channel import local_channel, run_two_party
from repro.gc.protocol import EvaluatorParty, GarblerParty, run_protocol
from repro.gc.sequential_gc import run_sequential


class TestRunProtocol:
    def test_multiplier_evaluator_learns(self):
        net = build_multiplier_netlist(8, signed=True)
        g_rep, e_rep = run_protocol(net, to_bits(-77, 8), to_bits(45, 8), group=TOY_GROUP)
        assert g_rep.output_bits is None
        assert from_bits(e_rep.output_bits, signed=True) == -77 * 45

    def test_reveal_garbler(self):
        net = build_multiplier_netlist(4, signed=False)
        g_rep, e_rep = run_protocol(
            net, to_bits(9, 4), to_bits(13, 4), reveal="garbler", group=TOY_GROUP
        )
        assert e_rep.output_bits is None
        assert from_bits(g_rep.output_bits) == 117

    def test_reveal_both(self):
        net = build_multiplier_netlist(4, signed=False)
        g_rep, e_rep = run_protocol(
            net, to_bits(5, 4), to_bits(6, 4), reveal="both", group=TOY_GROUP
        )
        assert from_bits(g_rep.output_bits) == 30
        assert from_bits(e_rep.output_bits) == 30

    def test_bad_reveal_mode(self):
        net = build_multiplier_netlist(4)
        with pytest.raises(GCProtocolError):
            run_protocol(net, to_bits(1, 4), to_bits(1, 4), reveal="nobody")

    def test_mac_protocol(self):
        aw = accumulator_width(8)
        net = build_mac_netlist(8, aw)
        g_bits = to_bits(-3, 8) + to_bits(500, aw)
        _, e_rep = run_protocol(net, g_bits, to_bits(99, 8), group=TOY_GROUP)
        assert from_bits(e_rep.output_bits, signed=True) == 500 - 3 * 99

    def test_traffic_accounting(self):
        net = build_multiplier_netlist(8, signed=True)
        g_rep, e_rep = run_protocol(net, to_bits(1, 8), to_bits(1, 8), group=TOY_GROUP)
        assert g_rep.bytes_by_tag["gc.tables"] == 32 * g_rep.n_tables
        # garbler input labels: 8 bits * 16 bytes
        assert g_rep.bytes_by_tag["gc.garbler_labels"] == 8 * 16
        assert g_rep.bytes_sent > e_rep.bytes_sent  # tables dominate

    def test_wrong_input_width_raises(self):
        net = build_multiplier_netlist(4)
        g_chan, e_chan = local_channel()
        garbler = GarblerParty(net, g_chan, TOY_GROUP)
        with pytest.raises(GCProtocolError):
            garbler.run([0, 1])  # needs 4 bits

    def test_evaluator_wrong_width_raises(self):
        net = build_multiplier_netlist(4)
        _, e_chan = local_channel()
        evaluator = EvaluatorParty(net, e_chan, TOY_GROUP)
        with pytest.raises(GCProtocolError):
            evaluator.run([0])

    def test_garbler_only_inputs_no_ot(self):
        # circuits without evaluator inputs skip OT entirely
        b = NetlistBuilder("gonly")
        g = b.garbler_input_bus(8)
        b.set_outputs(lib.negate(b, g))
        net = b.build()
        g_rep, e_rep = run_protocol(net, to_bits(42, 8), [], group=TOY_GROUP)
        assert from_bits(e_rep.output_bits, signed=True) == -42
        assert all(not t.startswith("ot.") for t in g_rep.bytes_by_tag)


class TestSequentialProtocol:
    def test_dot_product_over_rounds(self):
        seq = build_sequential_mac(8, accumulator_width(8, 8))
        a_vec = [3, -5, 7, 100]
        x_vec = [2, 2, -3, 50]
        g_rounds = [to_bits(a, 8) for a in a_vec]
        e_rounds = [to_bits(x, 8) for x in x_vec]
        g_rep, e_rep = run_sequential(seq, g_rounds, e_rounds, group=TOY_GROUP)
        expect = sum(a * x for a, x in zip(a_vec, x_vec))
        assert from_bits(e_rep.output_bits, signed=True) == expect
        assert g_rep.rounds == 4

    def test_initial_state_carried(self):
        aw = accumulator_width(4, 4)
        seq = build_sequential_mac(4, aw)
        seq.initial_state = to_bits(7, aw)
        g_rep, e_rep = run_sequential(
            seq, [to_bits(2, 4)], [to_bits(3, 4)], reveal="both", group=TOY_GROUP
        )
        assert from_bits(e_rep.output_bits, signed=True) == 13
        assert from_bits(g_rep.output_bits, signed=True) == 13

    def test_fresh_tables_every_round(self):
        # security: each round's table bytes must differ (fresh labels)
        seq = build_sequential_mac(4, accumulator_width(4, 2))
        g_chan, e_chan = local_channel()
        tables_seen = []

        from repro.gc.sequential_gc import SequentialEvaluator, SequentialGarbler

        garbler = SequentialGarbler(seq, g_chan, TOY_GROUP)
        evaluator = SequentialEvaluator(seq, e_chan, TOY_GROUP)

        original_send = g_chan.send

        def spy_send(tag, payload):
            if tag == "seq.tables":
                tables_seen.append(payload)
            original_send(tag, payload)

        g_chan.send = spy_send
        rounds_g = [to_bits(1, 4), to_bits(1, 4)]
        rounds_e = [to_bits(1, 4), to_bits(1, 4)]
        run_two_party(
            lambda: garbler.run(rounds_g),
            lambda: evaluator.run(rounds_e),
        )
        assert len(tables_seen) == 2
        assert tables_seen[0] != tables_seen[1]

    def test_round_count_mismatch_detected(self):
        seq = build_sequential_mac(4)
        with pytest.raises(GCProtocolError):
            run_sequential(seq, [to_bits(1, 4)], [], group=TOY_GROUP)

    def test_zero_rounds_rejected(self):
        seq = build_sequential_mac(4)
        with pytest.raises(GCProtocolError):
            run_sequential(seq, [], [], group=TOY_GROUP)
