"""Classic garbling schemes (4-row p&p, GRR3) — the Section 2.2 lineage."""

import pytest
from hypothesis import given, settings

from repro.bits import from_bits, to_bits
from repro.circuits.multipliers import build_multiplier_netlist
from repro.errors import GCProtocolError
from repro.gc.classic import ClassicEvaluator, ClassicGarbler
from repro.gc.garble import Garbler

from tests.gc.test_random_circuits import netlist_with_inputs


def classic_run(net, scheme, g_bits, e_bits):
    gc = ClassicGarbler(net, scheme=scheme).garble()
    assignments = {}
    for w, b in zip(net.garbler_inputs, g_bits):
        assignments[w] = b
    for w, b in zip(net.evaluator_inputs, e_bits):
        assignments[w] = b
    for w, b in net.constants.items():
        assignments[w] = b
    labels = gc.select_labels(assignments)
    return ClassicEvaluator(net, scheme=scheme).evaluate(
        gc.gates, labels, gc.output_permute_bits
    )


class TestCorrectness:
    @pytest.mark.parametrize("scheme", ["p&p", "grr3"])
    def test_multiplier(self, scheme):
        net = build_multiplier_netlist(6, kind="tree", signed=False)
        out = classic_run(net, scheme, to_bits(51, 6), to_bits(37, 6))
        assert from_bits(out) == 51 * 37

    @pytest.mark.parametrize("scheme", ["p&p", "grr3"])
    @given(netlist_with_inputs())
    @settings(max_examples=25, deadline=None)
    def test_random_circuits(self, scheme, case):
        net, g_bits, e_bits = case
        assert classic_run(net, scheme, g_bits, e_bits) == net.evaluate_plain(
            g_bits, e_bits
        )

    def test_unknown_scheme_rejected(self):
        net = build_multiplier_netlist(4, signed=False)
        with pytest.raises(GCProtocolError):
            ClassicGarbler(net, scheme="grr2")
        with pytest.raises(GCProtocolError):
            ClassicEvaluator(net, scheme="yao1986")


class TestSizeProgression:
    def test_optimisation_lineage_shrinks_tables(self):
        # Section 2.2's story measured end to end: 4-row p&p over all
        # gates > GRR3 (3 rows, XOR free) > half gates (2 rows)
        net = build_multiplier_netlist(8, kind="tree", signed=False)
        pnp = ClassicGarbler(net, scheme="p&p").garble().table_bytes
        grr3 = ClassicGarbler(net, scheme="grr3").garble().table_bytes
        half = sum(len(t.to_bytes()) for t in Garbler(net).garble().tables)
        assert pnp > grr3 > half

    def test_pnp_garbles_every_gate(self):
        net = build_multiplier_netlist(4, signed=False)
        gc = ClassicGarbler(net, scheme="p&p").garble()
        # every 2-input gate (XORs included) costs 4 ciphertexts
        two_input = sum(1 for g in net.gates if g.gtype.arity == 2)
        assert gc.table_bytes == 4 * 16 * two_input

    def test_grr3_costs_three_rows_per_nonfree(self):
        net = build_multiplier_netlist(4, signed=False)
        gc = ClassicGarbler(net, scheme="grr3").garble()
        assert gc.table_bytes == 3 * 16 * net.stats().n_nonfree

    def test_half_gates_ratio_on_real_circuit(self):
        net = build_multiplier_netlist(8, kind="tree", signed=False)
        grr3 = ClassicGarbler(net, scheme="grr3").garble().table_bytes
        half = sum(len(t.to_bytes()) for t in Garbler(net).garble().tables)
        assert half / grr3 == pytest.approx(2 / 3, rel=0.01)
