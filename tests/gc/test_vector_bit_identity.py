"""Vector garbling is bit-identical to the sequential reference.

The differential suite for ``repro.gc.vector_garble``: the sequential
:class:`~repro.gc.garble.Garbler` stays in the tree as the oracle, and
every property here drives both paths from identically-seeded label
factories and demands byte-for-byte agreement — tables, wire pairs,
decode (permute) bits, serialised payloads — across random circuits,
preset/tweak configurations, multi-session batches and chained MAC
rounds.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.division import build_divider_netlist
from repro.circuits.mac import build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.crypto.labels import LabelFactory
from repro.errors import GCProtocolError
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler
from repro.gc.tables import serialize_tables
from repro.gc.vector_garble import VectorGarbler, garble_mac_runs
from repro.telemetry import MetricsRegistry

from tests.gc.test_random_circuits import netlist_with_inputs, random_netlists


def scalar_garble(net, seed, tweak_offset=0, preset=None):
    factory = LabelFactory(source=random.Random(seed))
    if preset is not None:
        preset = preset(factory)
    return Garbler(net, factory=factory).garble(
        preset_pairs=preset, tweak_offset=tweak_offset
    )


def vector_garble(net, seeds, tweak_offset=0, preset=None):
    factories = [LabelFactory(source=random.Random(s)) for s in seeds]
    presets = None
    if preset is not None:
        presets = [preset(f) for f in factories]
    return VectorGarbler(net).garble(
        factories, preset_pairs=presets, tweak_offset=tweak_offset
    )


def assert_identical(scalar, vectorized):
    """Full bit-identity between a GarbledCircuit and a session's view."""
    assert scalar.tables == vectorized.tables
    assert scalar.wire_pairs == vectorized.wire_pairs
    assert scalar.offset == vectorized.offset
    assert scalar.hash_calls == vectorized.hash_calls
    assert scalar.output_permute_bits == vectorized.output_permute_bits


class TestFixedCircuits:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_mac_netlist(8),
            lambda: build_multiplier_netlist(8, kind="serial", signed=True),
            lambda: build_divider_netlist(8),
        ],
        ids=["mac", "serial-mul", "divider"],
    )
    def test_single_session_matches_sequential(self, builder):
        net = builder()
        scalar = scalar_garble(net, seed=1)
        batch = vector_garble(net, seeds=[1])
        assert_identical(scalar, batch.to_garbled_circuit(0))

    def test_payload_bytes_match_serialized_tables(self):
        net = build_mac_netlist(8)
        scalar = scalar_garble(net, seed=3)
        batch = vector_garble(net, seeds=[3])
        assert bytes(batch.tables_payload(0)) == serialize_tables(scalar.tables)

    def test_tweak_offset_respected(self):
        net = build_mac_netlist(8)
        scalar = scalar_garble(net, seed=1, tweak_offset=1000)
        batch = vector_garble(net, seeds=[1], tweak_offset=1000)
        assert_identical(scalar, batch.to_garbled_circuit(0))

    def test_needs_at_least_one_session(self):
        with pytest.raises(GCProtocolError):
            vector_garble(build_mac_netlist(4), seeds=[])

    def test_foreign_preset_offset_rejected(self):
        net = build_mac_netlist(4)
        foreign = LabelFactory(source=random.Random(999))
        pair = foreign.fresh_pair()
        factory = LabelFactory(source=random.Random(1))
        with pytest.raises(GCProtocolError):
            VectorGarbler(net).garble(
                [factory], preset_pairs=[{net.garbler_inputs[0]: pair}]
            )


class TestOnRandomCircuits:
    @given(netlist_with_inputs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_vector_equals_sequential(self, case, seed):
        net, _g, _e = case
        scalar = scalar_garble(net, seed)
        batch = vector_garble(net, seeds=[seed])
        assert_identical(scalar, batch.to_garbled_circuit(0))
        assert bytes(batch.tables_payload(0)) == serialize_tables(scalar.tables)

    @given(netlist_with_inputs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_vector_tables_decode_to_plaintext(self, case, seed):
        """Evaluating the *vectorised* tables with the scalar evaluator
        yields the plaintext result under the vectorised decode bits."""
        net, g_bits, e_bits = case
        batch = vector_garble(net, seeds=[seed])
        gc = batch.to_garbled_circuit(0)
        labels = {}
        for w, bit in zip(net.garbler_inputs, g_bits):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in zip(net.evaluator_inputs, e_bits):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in net.constants.items():
            labels[w] = gc.wire_pairs[w].select(bit)
        result = Evaluator(net).evaluate(
            gc.tables, labels, gc.output_permute_bits
        )
        assert result.output_bits == net.evaluate_plain(g_bits, e_bits)


@st.composite
def preset_cases(draw):
    """A random netlist plus a preset/tweak configuration (the sequential
    state carry-over shape, as in ``test_batch_garble.preset_cases``)."""
    net = draw(random_netlists())
    seed = draw(st.integers(0, 2**32 - 1))
    tweak_offset = draw(st.sampled_from([0, 1, 137, len(net.gates), 10_000]))
    n_preset = draw(st.integers(0, len(net.garbler_inputs)))
    return net, seed, tweak_offset, n_preset


class TestPresetAndTweakProperty:
    @given(preset_cases())
    @settings(max_examples=60, deadline=None)
    def test_vector_equals_sequential_under_presets(self, case):
        net, seed, tweak_offset, n_preset = case

        def preset(factory):
            return {w: factory.fresh_pair() for w in net.garbler_inputs[:n_preset]}

        scalar = scalar_garble(net, seed, tweak_offset, preset)
        batch = vector_garble(net, seeds=[seed], tweak_offset=tweak_offset,
                              preset=preset)
        assert_identical(scalar, batch.to_garbled_circuit(0))


class TestMultiSession:
    @given(random_netlists(), st.lists(st.integers(0, 2**32 - 1),
                                       min_size=2, max_size=5, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_each_session_matches_its_own_sequential_run(self, net, seeds):
        """One batched garbling of S sessions == S independent sequential
        garblings: the session axis adds throughput, never cross-talk."""
        batch = vector_garble(net, seeds=seeds)
        for s, seed in enumerate(seeds):
            assert_identical(scalar_garble(net, seed), batch.to_garbled_circuit(s))

    def test_one_aes_batch_call_per_stage_regardless_of_sessions(self):
        net = build_mac_netlist(8)
        for n_sessions in (1, 3, 7):
            tm = MetricsRegistry()
            factories = [
                LabelFactory(source=random.Random(s)) for s in range(n_sessions)
            ]
            vg = VectorGarbler(net)
            vg.garble(factories, telemetry=tm)
            assert tm.counter("gc.aes_batch_calls").value == vg.plan.n_stages


class TestChainedMacRounds:
    """``garble_mac_runs`` vs the sequential round chain (state feedback
    presets + per-round tweak offsets), per session and per round."""

    def _sequential_chain(self, circuit, n_rounds, seed):
        net = circuit.netlist
        garbler = Garbler(net, factory=LabelFactory(source=random.Random(seed)))
        gcs, state_pairs = [], None
        for r in range(n_rounds):
            preset = None
            if state_pairs is not None:
                preset = dict(zip(net.state_inputs, state_pairs))
            gc = garbler.garble(
                preset_pairs=preset, tweak_offset=r * len(net.gates)
            )
            state_pairs = [gc.output_pairs[i] for i in circuit.state_feedback]
            gcs.append(gc)
        return gcs

    @pytest.mark.parametrize("bitwidth,n_rounds", [(4, 3), (8, 2)])
    def test_chained_rounds_bit_identical(self, bitwidth, n_rounds):
        from repro.accel.tree_mac import build_scheduled_mac

        scheduled = build_scheduled_mac(bitwidth)
        seeds = [13, 977]
        factories = [LabelFactory(source=random.Random(s)) for s in seeds]
        runs = garble_mac_runs(scheduled, n_rounds, factories)
        for run, seed in zip(runs, seeds):
            chain = self._sequential_chain(scheduled.circuit, n_rounds, seed)
            assert run.output_permute_bits == chain[-1].output_permute_bits
            for r, gc in enumerate(chain):
                assert run.tables_for_round(r) == gc.tables
                assert bytes(run.tables_payload(r)) == serialize_tables(gc.tables)
                labels = run.rounds[r]
                net = scheduled.circuit.netlist
                assert labels.garbler_pairs == [
                    gc.wire_pairs[w] for w in net.garbler_inputs
                ]
                assert labels.evaluator_pairs == [
                    gc.wire_pairs[w] for w in net.evaluator_inputs
                ]
                assert labels.state_pairs == [
                    gc.wire_pairs[w] for w in net.state_inputs
                ]
                assert labels.output_pairs == gc.output_pairs

    def test_rejects_zero_rounds(self):
        from repro.accel.tree_mac import build_scheduled_mac

        with pytest.raises(GCProtocolError):
            garble_mac_runs(build_scheduled_mac(4), 0, [LabelFactory()])


class TestEndToEndMac:
    def test_vectorized_run_evaluates_a_full_mac(self):
        """Drive the evaluator round-by-round over a vectorised run and
        check the accumulated plaintext dot product."""
        from repro.accel.tree_mac import build_scheduled_mac

        scheduled = build_scheduled_mac(8)
        net = scheduled.circuit.netlist
        factory = LabelFactory(source=random.Random(29))
        (run,) = garble_mac_runs(scheduled, 3, [factory])
        weights, xs = [3, -5, 7], [2, 4, -6]
        feedback = scheduled.circuit.state_feedback
        state_labels = None
        result = None
        for r in range(3):
            rl = run.rounds[r]
            labels = {}
            for w, pair, bit in zip(
                net.garbler_inputs, rl.garbler_pairs, to_bits(weights[r], 8)
            ):
                labels[w] = pair.select(bit)
            for w, pair, bit in zip(
                net.evaluator_inputs, rl.evaluator_pairs, to_bits(xs[r], 8)
            ):
                labels[w] = pair.select(bit)
            for w, bit in net.constants.items():
                labels[w] = rl.const_pairs[w].select(bit)
            if state_labels is None:
                state_labels = [pair.select(0) for pair in rl.state_pairs]
            for w, lab in zip(net.state_inputs, state_labels):
                labels[w] = lab
            result = Evaluator(net).evaluate(
                run.tables_for_round(r),
                labels,
                output_permute_bits=[p.permute_bit for p in rl.output_pairs],
                tweak_offset=r * len(net.gates),
            )
            state_labels = result.labels_for_state(feedback)
        acc_bits = [result.output_bits[i] for i in feedback]
        expected = sum(w * x for w, x in zip(weights, xs))
        assert from_bits(acc_bits, signed=True) == expected
