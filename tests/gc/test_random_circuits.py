"""Property test: garble-evaluate == plaintext on *random* netlists.

Hypothesis builds arbitrary DAG circuits over the full gate alphabet;
the garbled execution must agree with the plaintext reference on every
generated circuit and input. This covers gate-type corner cases and
wiring shapes the arithmetic library never produces.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import Gate, GateType
from repro.circuits.netlist import Netlist
from repro.circuits.optimize import optimize
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler

TWO_INPUT = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.ANDNOT,
    GateType.NOTAND,
    GateType.ORNOT,
    GateType.NOTOR,
    GateType.XOR,
    GateType.XNOR,
]
ONE_INPUT = [GateType.NOT, GateType.BUF]


@st.composite
def random_netlists(draw):
    n_g = draw(st.integers(1, 4))
    n_e = draw(st.integers(1, 4))
    n_gates = draw(st.integers(1, 25))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(seed)

    net = Netlist(name=f"rand{seed}")
    net.n_wires = n_g + n_e
    net.garbler_inputs = list(range(n_g))
    net.evaluator_inputs = list(range(n_g, n_g + n_e))
    live = list(range(n_g + n_e))
    for i in range(n_gates):
        if rng.random() < 0.2:
            gtype = rng.choice(ONE_INPUT)
            ins = (rng.choice(live),)
        else:
            gtype = rng.choice(TWO_INPUT)
            ins = (rng.choice(live), rng.choice(live))
        out = net.n_wires
        net.n_wires += 1
        net.gates.append(Gate(i, gtype, ins, out))
        live.append(out)
    n_outputs = rng.randint(1, min(4, len(live)))
    net.outputs = rng.sample(live, n_outputs)
    return net


@st.composite
def netlist_with_inputs(draw):
    net = draw(random_netlists())
    g_bits = [draw(st.integers(0, 1)) for _ in net.garbler_inputs]
    e_bits = [draw(st.integers(0, 1)) for _ in net.evaluator_inputs]
    return net, g_bits, e_bits


def garbled_output(net, g_bits, e_bits):
    gc = Garbler(net).garble()
    labels = {}
    for w, bit in zip(net.garbler_inputs, g_bits):
        labels[w] = gc.wire_pairs[w].select(bit)
    for w, bit in zip(net.evaluator_inputs, e_bits):
        labels[w] = gc.wire_pairs[w].select(bit)
    result = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
    return result.output_bits


@given(netlist_with_inputs())
@settings(max_examples=60, deadline=None)
def test_garbled_equals_plaintext_on_random_circuits(case):
    net, g_bits, e_bits = case
    net.validate()
    assert garbled_output(net, g_bits, e_bits) == net.evaluate_plain(g_bits, e_bits)


@given(netlist_with_inputs())
@settings(max_examples=40, deadline=None)
def test_optimizer_preserves_semantics_on_random_circuits(case):
    net, g_bits, e_bits = case
    opt, _ = optimize(net)
    assert opt.evaluate_plain(g_bits, e_bits) == net.evaluate_plain(g_bits, e_bits)


@given(netlist_with_inputs())
@settings(max_examples=25, deadline=None)
def test_optimized_random_circuits_still_garble(case):
    net, g_bits, e_bits = case
    opt, _ = optimize(net)
    assert garbled_output(opt, g_bits, e_bits) == net.evaluate_plain(g_bits, e_bits)
