"""run_two_party teardown semantics: a failing cleanup can never mask
the primary protocol failure (regression tests for this PR's fix).

The failure this guards against: a session dies with a protocol error,
then closing the socket endpoints raises too — and the caller sees only
the boring close error, losing the diagnosis.
"""

import pytest

from repro.errors import GCProtocolError, WireError
from repro.gc.channel import run_two_party


def _boom_left():
    raise GCProtocolError("primary protocol failure")


def _ok():
    return "fine"


class TestCleanupCannotMask:
    def test_cleanup_failure_rides_along_with_primary(self):
        def bad_cleanup():
            raise OSError("close() failed")

        with pytest.raises(GCProtocolError) as excinfo:
            run_two_party(_boom_left, _ok, cleanup=bad_cleanup)
        # the primary diagnosis leads...
        assert "primary protocol failure" in str(excinfo.value)
        # ...the teardown failure is appended, not substituted
        assert "teardown also failed" in str(excinfo.value)
        assert "OSError" in str(excinfo.value)
        # and chained as the cause for full-traceback debugging
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_right_side_primary_survives_bad_cleanup(self):
        def boom_right():
            raise WireError("peer exploded")

        def bad_cleanup():
            raise RuntimeError("cleanup also broke")

        with pytest.raises(WireError) as excinfo:
            run_two_party(_ok, boom_right, cleanup=bad_cleanup)
        assert "peer exploded" in str(excinfo.value)
        assert "teardown also failed" in str(excinfo.value)

    def test_both_sides_fail_plus_cleanup(self):
        def boom_right():
            raise WireError("right died")

        def bad_cleanup():
            raise OSError("and close failed")

        with pytest.raises(GCProtocolError) as excinfo:
            run_two_party(_boom_left, boom_right, cleanup=bad_cleanup)
        message = str(excinfo.value)
        assert "primary protocol failure" in message
        assert "the other party also failed" in message
        assert "teardown also failed" in message


class TestCleanupAlone:
    def test_cleanup_only_failure_is_raised(self):
        def bad_cleanup():
            raise OSError("close failed on a clean session")

        with pytest.raises(OSError, match="close failed"):
            run_two_party(_ok, _ok, cleanup=bad_cleanup)

    def test_clean_session_with_clean_cleanup(self):
        ran = []
        left, right = run_two_party(
            lambda: "L", lambda: "R", cleanup=lambda: ran.append(True)
        )
        assert (left, right) == ("L", "R")
        assert ran == [True]

    def test_cleanup_runs_after_a_failure(self):
        ran = []
        with pytest.raises(GCProtocolError):
            run_two_party(_boom_left, _ok, cleanup=lambda: ran.append(True))
        assert ran == [True]

    def test_no_cleanup_still_works(self):
        assert run_two_party(lambda: 1, lambda: 2) == (1, 2)
