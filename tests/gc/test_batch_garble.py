"""Batched (level-order) garbling: bit-identical, faster, correct."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import from_bits, to_bits
from repro.circuits.division import build_divider_netlist
from repro.circuits.mac import build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.crypto.labels import LabelFactory
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler

from tests.gc.test_random_circuits import netlist_with_inputs, random_netlists


def twin_garble(net, seed=1, tweak_offset=0):
    """Garble the same netlist with both paths under identical labels."""
    scalar = Garbler(net, factory=LabelFactory(source=random.Random(seed))).garble(
        tweak_offset=tweak_offset
    )
    batched = Garbler(net, factory=LabelFactory(source=random.Random(seed))).garble(
        tweak_offset=tweak_offset, batch=True
    )
    return scalar, batched


class TestBitIdentical:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_mac_netlist(8),
            lambda: build_multiplier_netlist(8, kind="serial", signed=True),
            lambda: build_divider_netlist(8),
        ],
        ids=["mac", "serial-mul", "divider"],
    )
    def test_tables_and_pairs_match_scalar_path(self, builder):
        net = builder()
        scalar, batched = twin_garble(net)
        assert scalar.tables == batched.tables
        assert scalar.wire_pairs == batched.wire_pairs

    def test_tweak_offset_respected(self):
        net = build_mac_netlist(8)
        scalar, batched = twin_garble(net, tweak_offset=1000)
        assert scalar.tables == batched.tables

    def test_hash_call_count_identical(self):
        net = build_mac_netlist(8)
        scalar, batched = twin_garble(net)
        assert scalar.hash_calls == batched.hash_calls


class TestBatchedEvaluation:
    def test_batched_tables_evaluate_correctly(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble(batch=True)
        labels = {}
        for w, bit in zip(net.garbler_inputs, to_bits(-45, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in zip(net.evaluator_inputs, to_bits(77, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in net.constants.items():
            labels[w] = gc.wire_pairs[w].select(bit)
        result = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
        assert from_bits(result.output_bits, signed=True) == -45 * 77


class TestBatchedEvaluatorPath:
    def _labels(self, net, gc, a, x):
        labels = {}
        for w, bit in zip(net.garbler_inputs, to_bits(a, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in zip(net.evaluator_inputs, to_bits(x, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in net.constants.items():
            labels[w] = gc.wire_pairs[w].select(bit)
        return labels

    def test_batched_eval_equals_scalar_eval(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble()
        labels = self._labels(net, gc, -3, 99)
        scalar = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
        batched = Evaluator(net).evaluate(
            gc.tables, labels, gc.output_permute_bits, batch=True
        )
        assert scalar.output_labels == batched.output_labels
        assert scalar.output_bits == batched.output_bits
        assert scalar.hash_calls == batched.hash_calls

    def test_full_batch_pipeline(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble(batch=True)
        labels = self._labels(net, gc, -101, 42)
        result = Evaluator(net).evaluate(
            gc.tables, labels, gc.output_permute_bits, batch=True
        )
        assert from_bits(result.output_bits, signed=True) == -101 * 42

    def test_batched_eval_checks_table_order(self):
        from repro.errors import GCProtocolError

        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble()
        labels = self._labels(net, gc, 1, 1)
        shuffled = list(reversed(gc.tables))
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(shuffled, labels, batch=True)


class TestOnRandomCircuits:
    @given(netlist_with_inputs())
    @settings(max_examples=30, deadline=None)
    def test_random_circuits_batch_equals_scalar(self, case):
        net, _g, _e = case
        scalar, batched = twin_garble(net, seed=7)
        assert scalar.tables == batched.tables
        assert scalar.wire_pairs == batched.wire_pairs


@st.composite
def preset_cases(draw):
    """A random netlist plus a preset/tweak configuration.

    Preset pairs model the sequential-GC state carry-over: some input
    wires arrive with label pairs pinned by the previous round, and the
    round's gates are tweaked by a global offset.  Both garbling paths
    must agree bit-for-bit under every such configuration.
    """
    net = draw(random_netlists())
    seed = draw(st.integers(0, 2**32 - 1))
    tweak_offset = draw(st.sampled_from([0, 1, 137, len(net.gates), 10_000]))
    n_preset = draw(st.integers(0, len(net.garbler_inputs)))
    return net, seed, tweak_offset, n_preset


def garble_with_presets(net, seed, tweak_offset, n_preset, batch):
    """Garble with the first ``n_preset`` garbler inputs preset.

    The factory is seeded, so scalar and batched invocations draw
    identical presets and identical fresh pairs for the rest.
    """
    factory = LabelFactory(source=random.Random(seed))
    preset = {w: factory.fresh_pair() for w in net.garbler_inputs[:n_preset]}
    return Garbler(net, factory=factory).garble(
        preset_pairs=preset, tweak_offset=tweak_offset, batch=batch
    )


class TestPresetAndTweakProperty:
    @given(preset_cases())
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_scalar_under_presets_and_tweaks(self, case):
        net, seed, tweak_offset, n_preset = case
        scalar = garble_with_presets(net, seed, tweak_offset, n_preset, batch=False)
        batched = garble_with_presets(net, seed, tweak_offset, n_preset, batch=True)
        assert scalar.tables == batched.tables
        assert scalar.wire_pairs == batched.wire_pairs
        assert scalar.hash_calls == batched.hash_calls

    @given(netlist_with_inputs(), st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_batched_presets_still_evaluate_to_plaintext(self, case, seed):
        net, g_bits, e_bits = case
        n_preset = len(net.garbler_inputs)
        gc = garble_with_presets(net, seed, 42, n_preset, batch=True)
        labels = {}
        for w, bit in zip(net.garbler_inputs, g_bits):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in zip(net.evaluator_inputs, e_bits):
            labels[w] = gc.wire_pairs[w].select(bit)
        result = Evaluator(net).evaluate(
            gc.tables, labels, gc.output_permute_bits, tweak_offset=42
        )
        assert result.output_bits == net.evaluate_plain(g_bits, e_bits)


class TestChainedRounds:
    """Differential test across a *sequence* of garblings (the MAC's
    state carry-over): each round presets the previous round's output
    pairs at the feedback positions, exactly as sequential GC does."""

    def _chain(self, circuit, n_rounds, seed, batch):
        net = circuit.netlist
        factory = LabelFactory(source=random.Random(seed))
        garbler = Garbler(net, factory=factory)
        gcs = []
        state_pairs = None
        for r in range(n_rounds):
            preset = None
            if state_pairs is not None:
                preset = dict(zip(net.state_inputs, state_pairs))
            gc = garbler.garble(
                preset_pairs=preset,
                tweak_offset=r * len(net.gates),
                batch=batch,
            )
            state_pairs = [gc.output_pairs[i] for i in circuit.state_feedback]
            gcs.append(gc)
        return gcs

    def test_chained_rounds_bit_identical(self):
        from repro.accel.tree_mac import build_scheduled_mac

        circuit = build_scheduled_mac(4).circuit
        scalar_chain = self._chain(circuit, 3, seed=13, batch=False)
        batched_chain = self._chain(circuit, 3, seed=13, batch=True)
        for scalar, batched in zip(scalar_chain, batched_chain):
            assert scalar.tables == batched.tables
            assert scalar.wire_pairs == batched.wire_pairs
