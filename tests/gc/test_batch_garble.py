"""Batched (level-order) garbling: bit-identical, faster, correct."""

import random

import pytest
from hypothesis import given, settings

from repro.bits import from_bits, to_bits
from repro.circuits.division import build_divider_netlist
from repro.circuits.mac import build_mac_netlist
from repro.circuits.multipliers import build_multiplier_netlist
from repro.crypto.labels import LabelFactory
from repro.gc.evaluate import Evaluator
from repro.gc.garble import Garbler

from tests.gc.test_random_circuits import netlist_with_inputs


def twin_garble(net, seed=1, tweak_offset=0):
    """Garble the same netlist with both paths under identical labels."""
    scalar = Garbler(net, factory=LabelFactory(source=random.Random(seed))).garble(
        tweak_offset=tweak_offset
    )
    batched = Garbler(net, factory=LabelFactory(source=random.Random(seed))).garble(
        tweak_offset=tweak_offset, batch=True
    )
    return scalar, batched


class TestBitIdentical:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_mac_netlist(8),
            lambda: build_multiplier_netlist(8, kind="serial", signed=True),
            lambda: build_divider_netlist(8),
        ],
        ids=["mac", "serial-mul", "divider"],
    )
    def test_tables_and_pairs_match_scalar_path(self, builder):
        net = builder()
        scalar, batched = twin_garble(net)
        assert scalar.tables == batched.tables
        assert scalar.wire_pairs == batched.wire_pairs

    def test_tweak_offset_respected(self):
        net = build_mac_netlist(8)
        scalar, batched = twin_garble(net, tweak_offset=1000)
        assert scalar.tables == batched.tables

    def test_hash_call_count_identical(self):
        net = build_mac_netlist(8)
        scalar, batched = twin_garble(net)
        assert scalar.hash_calls == batched.hash_calls


class TestBatchedEvaluation:
    def test_batched_tables_evaluate_correctly(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble(batch=True)
        labels = {}
        for w, bit in zip(net.garbler_inputs, to_bits(-45, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in zip(net.evaluator_inputs, to_bits(77, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in net.constants.items():
            labels[w] = gc.wire_pairs[w].select(bit)
        result = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
        assert from_bits(result.output_bits, signed=True) == -45 * 77


class TestBatchedEvaluatorPath:
    def _labels(self, net, gc, a, x):
        labels = {}
        for w, bit in zip(net.garbler_inputs, to_bits(a, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in zip(net.evaluator_inputs, to_bits(x, 8)):
            labels[w] = gc.wire_pairs[w].select(bit)
        for w, bit in net.constants.items():
            labels[w] = gc.wire_pairs[w].select(bit)
        return labels

    def test_batched_eval_equals_scalar_eval(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble()
        labels = self._labels(net, gc, -3, 99)
        scalar = Evaluator(net).evaluate(gc.tables, labels, gc.output_permute_bits)
        batched = Evaluator(net).evaluate(
            gc.tables, labels, gc.output_permute_bits, batch=True
        )
        assert scalar.output_labels == batched.output_labels
        assert scalar.output_bits == batched.output_bits
        assert scalar.hash_calls == batched.hash_calls

    def test_full_batch_pipeline(self):
        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble(batch=True)
        labels = self._labels(net, gc, -101, 42)
        result = Evaluator(net).evaluate(
            gc.tables, labels, gc.output_permute_bits, batch=True
        )
        assert from_bits(result.output_bits, signed=True) == -101 * 42

    def test_batched_eval_checks_table_order(self):
        from repro.errors import GCProtocolError

        net = build_multiplier_netlist(8, kind="tree", signed=True)
        gc = Garbler(net).garble()
        labels = self._labels(net, gc, 1, 1)
        shuffled = list(reversed(gc.tables))
        with pytest.raises(GCProtocolError):
            Evaluator(net).evaluate(shuffled, labels, batch=True)


class TestOnRandomCircuits:
    @given(netlist_with_inputs())
    @settings(max_examples=30, deadline=None)
    def test_random_circuits_batch_equals_scalar(self, case):
        net, _g, _e = case
        scalar, batched = twin_garble(net, seed=7)
        assert scalar.tables == batched.tables
        assert scalar.wire_pairs == batched.wire_pairs
