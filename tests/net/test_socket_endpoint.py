"""SocketEndpoint: the in-memory channel contract over real sockets."""

import socket
import struct
import threading

import pytest

from repro.errors import GCProtocolError, WireError
from repro.net import MAGIC, SocketEndpoint, encode_frame, socketpair_endpoints
from repro.telemetry import MetricsRegistry


class TestDropInContract:
    """The semantics `tests/gc/test_channel.py` pins for Endpoint."""

    def test_send_recv_round_trip(self):
        a, b = socketpair_endpoints()
        a.send("x", b"payload")
        assert b.recv("x") == b"payload"

    def test_tag_mismatch_detected(self):
        a, b = socketpair_endpoints()
        a.send("x", b"payload")
        with pytest.raises(GCProtocolError, match="expected message 'y'"):
            b.recv("y")

    def test_fifo_order(self):
        a, b = socketpair_endpoints()
        a.send("m", b"1")
        a.send("m", b"2")
        assert b.recv("m") == b"1"
        assert b.recv("m") == b"2"

    def test_non_bytes_rejected(self):
        a, _ = socketpair_endpoints()
        with pytest.raises(GCProtocolError, match="must be bytes"):
            a.send("x", "a string")

    def test_empty_recv_times_out_typed(self):
        _, b = socketpair_endpoints()
        with pytest.raises(WireError, match="timed out"):
            b.recv("x", timeout=0.05)

    def test_duplex(self):
        a, b = socketpair_endpoints()
        a.send("ping", b"1")
        b.send("pong", b"2")
        assert b.recv("ping") == b"1"
        assert a.recv("pong") == b"2"

    def test_u128_list_round_trip(self):
        a, b = socketpair_endpoints()
        values = [0, 1, (1 << 128) - 1, 0xDEADBEEF]
        a.send_u128_list("labels", values)
        assert b.recv_u128_list("labels") == values

    def test_ragged_u128_payload_rejected(self):
        a, b = socketpair_endpoints()
        a.send("labels", b"\x01" * 15)
        with pytest.raises(GCProtocolError, match="16-byte"):
            b.recv_u128_list("labels")

    def test_traffic_stats_recorded(self):
        a, b = socketpair_endpoints()
        a.send("gc.tables", b"12345")
        a.send("ot.msg", b"abc")
        assert a.sent.messages == 2
        assert a.sent.payload_bytes == 8
        assert a.sent.by_tag == {"gc.tables": 5, "ot.msg": 3}

    def test_per_tag_telemetry_counters(self):
        reg = MetricsRegistry()
        a, b = socketpair_endpoints(telemetry=reg)
        a.send("seq.tables", b"12345")
        b.send("ot.base.A", b"abc")
        assert reg.counter("channel.messages").value == 2
        assert reg.counter("channel.bytes").value == 8
        assert reg.counter("channel.bytes.seq.tables").value == 5
        assert reg.counter("channel.bytes.ot.base.A").value == 3

    def test_recv_blocks_until_peer_sends(self):
        a, b = socketpair_endpoints()

        def late_sender():
            a.send("slow", b"data")

        t = threading.Timer(0.05, late_sender)
        t.start()
        assert b.recv("slow", timeout=5.0) == b"data"
        t.join()


class TestRecvAny:
    def test_accepts_any_listed_tag(self):
        a, b = socketpair_endpoints()
        a.send("net.bye", b"")
        assert b.recv_any(("net.query", "net.bye")) == ("net.bye", b"")

    def test_rejects_unlisted_tag(self):
        a, b = socketpair_endpoints()
        a.send("net.other", b"")
        with pytest.raises(GCProtocolError, match="expected one of"):
            b.recv_any(("net.query", "net.bye"))


class TestWireFailures:
    def test_peer_close_at_frame_boundary(self):
        a, b = socketpair_endpoints()
        a.close()
        with pytest.raises(WireError, match="frame boundary"):
            b.recv("x", timeout=1.0)

    def test_mid_frame_disconnect(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint("victim", raw_b)
        frame = encode_frame("seq.tables", b"\xaa" * 1000)
        raw_a.sendall(frame[:37])  # header + a sliver of body
        raw_a.close()
        with pytest.raises(WireError, match="mid-frame"):
            b.recv("seq.tables", timeout=1.0)

    def test_bad_magic_from_rogue_peer(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint("victim", raw_b)
        raw_a.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
        with pytest.raises(WireError, match="magic"):
            b.recv("x", timeout=1.0)

    def test_oversized_length_prefix_fails_fast(self):
        raw_a, raw_b = socket.socketpair()
        b = SocketEndpoint("victim", raw_b)
        raw_a.sendall(MAGIC + struct.pack(">I", 1 << 31))
        with pytest.raises(WireError, match="cap"):
            b.recv("x", timeout=1.0)

    def test_send_to_dead_peer_raises_wire_error(self):
        a, b = socketpair_endpoints()
        b.close()
        with pytest.raises(WireError):
            for _ in range(64):  # outrun any kernel buffering
                a.send("x", b"\x00" * 65536)

    def test_send_on_closed_endpoint(self):
        a, _ = socketpair_endpoints()
        a.close()
        with pytest.raises(WireError, match="closed endpoint"):
            a.send("x", b"")

    def test_configured_timeout_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "0.05")
        _, b = socketpair_endpoints()
        with pytest.raises(WireError, match="timed out"):
            b.recv("x")  # no explicit timeout: env var governs

    def test_endpoint_recv_timeout_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECV_TIMEOUT_S", "60")
        _, b = socketpair_endpoints(recv_timeout_s=0.05)
        with pytest.raises(WireError, match="timed out"):
            b.recv("x")


class TestProtocolOverTheWire:
    def test_classic_gc_protocol_bit_identical_over_sockets(self):
        """run_protocol over socketpair endpoints == in-memory channel."""
        from repro.bits import from_bits, to_bits
        from repro.circuits.multipliers import build_multiplier_netlist
        from repro.crypto.ot import TOY_GROUP
        from repro.gc.protocol import run_protocol

        net = build_multiplier_netlist(4, signed=False)
        g_bits, e_bits = to_bits(9, 4), to_bits(13, 4)
        _, local_report = run_protocol(net, g_bits, e_bits, group=TOY_GROUP)
        _, wire_report = run_protocol(
            net, g_bits, e_bits, group=TOY_GROUP,
            channels=socketpair_endpoints(recv_timeout_s=30.0),
        )
        assert from_bits(wire_report.output_bits) == 9 * 13
        assert wire_report.output_bits == local_report.output_bits
        assert wire_report.n_tables == local_report.n_tables
        assert wire_report.bytes_sent == local_report.bytes_sent
