"""HE-backed sessions through the gateway: negotiation + bit-identity.

The acceptance bar for the backend seam: an HE session served
end-to-end through :class:`GCGateway` must return the *same* decoded
fixed-point results as a GC session against the same model — and
clients that never heard of backends (v3 and below) must keep working
untouched.
"""

import json
import socket

import numpy as np
import pytest

from repro.errors import HandshakeError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.net import GCGateway, RemoteAnalyticsClient
from repro.net import socketpair_endpoints
from repro.net.endpoint import SocketEndpoint
from repro.net.handshake import (
    HELLO_TAG,
    SessionDescriptor,
    WELCOME_TAG,
    client_session_handshake,
    server_handshake,
)
from repro.serve import ServingConfig

#: ridge-regression-shaped toy model (3 coefficients x 4 features)
MODEL = np.array([
    [0.5, -1.0, 0.25, 1.5],
    [1.25, 0.75, -0.5, -2.0],
    [-0.125, 2.0, 1.0, 0.5],
])
RECV_TIMEOUT = 20.0


@pytest.fixture
def server():
    return CloudServer(MODEL, Q8_4, pool_size=2, seed=17, auto_refill=False)


def make_gateway(server, **cfg_kwargs):
    config = ServingConfig(
        workers=2, queue_depth=8, refill=True, recv_timeout_s=RECV_TIMEOUT,
        **cfg_kwargs,
    )
    gw = GCGateway(server, config=config)
    gw.serving.start()
    return gw


@pytest.fixture
def gateway(server):
    gw = make_gateway(server)
    yield gw
    gw.stop()


def loopback_client(gateway, **kwargs) -> RemoteAnalyticsClient:
    ours, theirs = socket.socketpair()
    gateway.adopt(theirs)
    return RemoteAnalyticsClient.from_socket(
        ours, recv_timeout_s=RECV_TIMEOUT, **kwargs
    )


def q84_grid(rng, n):
    return np.round(rng.uniform(-2, 2, size=n) * 16) / 16


class TestBitIdentity:
    def test_he_session_matches_gc_and_plaintext(self, gateway):
        rng = np.random.default_rng(3)
        queries = [(r, q84_grid(rng, MODEL.shape[1]))
                   for r in range(MODEL.shape[0])]
        with loopback_client(gateway, backend="he") as he:
            assert he.backend == "he"
            he_results = [he.query_row(r, x) for r, x in queries]
            budgets = he.last_noise_budget_bits
        with loopback_client(gateway, backend="gc") as gc:
            assert gc.backend == "gc"
            gc_results = [gc.query_row(r, x) for r, x in queries]
        assert he_results == gc_results
        assert budgets > 0
        for (r, x), got in zip(queries, he_results):
            assert got == pytest.approx(float(MODEL[r] @ x), abs=1e-12)

    def test_mixed_backends_share_one_gateway(self, server, gateway):
        x = np.array([0.5, -0.25, 1.0, 0.75])
        with loopback_client(gateway, backend="he") as he, \
                loopback_client(gateway) as default:
            assert default.backend == "gc"
            assert he.query_row(1, x) == default.query_row(1, x)
        assert server.stats.he_queries == 1
        assert server.telemetry.counter("gateway.sessions.he").value == 1
        assert server.telemetry.counter("gateway.sessions.gc").value == 1


class TestNegotiation:
    def test_default_backend_is_gc(self, gateway):
        with loopback_client(gateway) as remote:
            assert remote.backend == "gc"
            assert remote.circuit is not None

    def test_gateway_default_backend_from_config(self, server):
        gw = make_gateway(server, backend="he")
        try:
            with loopback_client(gw) as remote:
                assert remote.backend == "he"
                assert remote.circuit is None  # HE sessions skip the GC build
                assert remote.query_row(0, [1.0, 0.0, 0.0, 0.0]) == \
                    pytest.approx(0.5, abs=1e-12)
        finally:
            gw.stop()

    def test_gateway_default_backend_from_env(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "he")
        gw = make_gateway(server)
        try:
            with loopback_client(gw) as remote:
                assert remote.backend == "he"
        finally:
            gw.stop()

    def test_explicit_gc_overrides_he_default(self, server):
        gw = make_gateway(server, backend="he")
        try:
            with loopback_client(gw, backend="gc") as remote:
                assert remote.backend == "gc"
        finally:
            gw.stop()

    def test_unknown_backend_is_rejected_typed(self, gateway):
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        ep = SocketEndpoint("probe", ours, recv_timeout_s=RECV_TIMEOUT)
        with pytest.raises(HandshakeError, match="unsupported backend"):
            client_session_handshake(ep, backend="paillier")
        ours.close()

    def test_v3_client_is_served_gc_without_backend_fields(self, gateway):
        """A pre-v4 client sends no backend field and must get a
        welcome its descriptor parser already understands."""
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        ep = SocketEndpoint("legacy", ours, recv_timeout_s=RECV_TIMEOUT)
        ep.send(HELLO_TAG, json.dumps(
            {"protocol_version": 3, "name": "legacy"}
        ).encode())
        payload = ep.recv(WELCOME_TAG)
        welcome = json.loads(payload.decode())
        assert welcome.get("protocol_version") == 3
        assert "backend" not in welcome
        assert "backend_params" not in welcome
        SessionDescriptor.from_payload(payload)  # still parses
        ours.close()

    def test_pre_v4_session_cannot_grant_he(self):
        """Even with an HE default, a v3-negotiated session gets GC —
        the client-side requirement check then fails typed."""
        import threading

        a, b = socketpair_endpoints("gateway", "client", recv_timeout_s=5.0)
        descriptor = SessionDescriptor(
            protocol_version=3, total_bits=8, frac_bits=4, acc_width=19,
            rounds=4, n_rows=3, fingerprint="f" * 64, group_p=23, group_g=5,
        )
        server_err = []

        def serve():
            try:
                server_handshake(a, descriptor, backends=("gc", "he"),
                                 default_backend="he")
            except HandshakeError as exc:
                server_err.append(exc)

        t = threading.Thread(target=serve)
        t.start()
        with pytest.raises(HandshakeError, match="requires 'he'"):
            client_session_handshake(b, backend="he")
        t.join(timeout=5.0)


class TestParameterCheck:
    def test_mismatched_he_params_fail_before_any_query(self, server, gateway,
                                                        monkeypatch):
        import repro.net.client as client_mod

        real = client_mod.params_for_workload
        monkeypatch.setattr(
            client_mod, "params_for_workload",
            lambda fmt, rows, cols: real(fmt, rows + 1, cols),
        )
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        with pytest.raises(HandshakeError, match="HE parameter mismatch"):
            RemoteAnalyticsClient.from_socket(
                ours, recv_timeout_s=RECV_TIMEOUT, backend="he"
            )
