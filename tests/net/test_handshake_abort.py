"""Handshake aborts at every message boundary: the gateway must record
a typed HandshakeError, count it apart from mid-session churn, and
release the session thread — no leaks, no hangs.

The client-vanishes cases write their frames and close *before* the
gateway adopts the socket (buffered bytes still deliver), which makes
each boundary deterministic instead of racing the gateway's replies.
"""

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import HandshakeError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.net.endpoint import SocketEndpoint
from repro.net.gateway import GCGateway
from repro.net.handshake import HELLO_TAG, PROTOCOL_VERSION
from repro.serve import ServingConfig, ServingServer
from repro.telemetry import MetricsRegistry


@pytest.fixture
def gateway():
    server = CloudServer(
        np.array([[0.5, -0.25]]), Q8_4, pool_size=0, seed=0,
        auto_refill=False, telemetry=MetricsRegistry(),
    )
    # recv_timeout (2s) deliberately exceeds handshake_timeout (0.3s):
    # the reaper, not the receive timeout, must be what frees a
    # half-open session's thread
    serving = ServingServer(
        server, ServingConfig(workers=1, queue_depth=2, refill=False,
                              recv_timeout_s=2.0),
    )
    gw = GCGateway(
        server, serving=serving, handshake_timeout_s=0.3, reap_interval_s=0.05
    )
    yield gw
    gw.stop()


def _counters(gateway):
    return gateway.telemetry.snapshot()["counters"]


def _run_session(gateway, prepare):
    """Prepare the client side of a socketpair, then let the gateway
    serve the other half; returns the finished session thread."""
    ours, theirs = socket.socketpair()
    prepare(ours)
    thread = gateway.adopt(theirs)
    thread.join(timeout=5.0)
    return thread


def _assert_handshake_failure(gateway, thread):
    assert not thread.is_alive(), "gateway session thread leaked"
    assert isinstance(gateway._last_session_error, HandshakeError)
    counters = _counters(gateway)
    assert counters["gateway.handshake_failures"] == 1
    assert counters.get("gateway.sessions", 0) == 0  # never established


class TestAbortBoundaries:
    def test_close_before_any_frame(self, gateway):
        thread = _run_session(gateway, lambda sock: sock.close())
        _assert_handshake_failure(gateway, thread)

    def test_close_mid_frame(self, gateway):
        def partial(sock):
            sock.sendall(b"\x7f")  # one byte of a frame header, then gone
            sock.close()

        thread = _run_session(gateway, partial)
        _assert_handshake_failure(gateway, thread)

    def test_close_after_complete_hello(self, gateway):
        def hello_then_vanish(sock):
            ep = SocketEndpoint("abort-client", sock)
            hello = {"protocol_version": PROTOCOL_VERSION, "name": "abort"}
            ep.send(HELLO_TAG, json.dumps(hello, sort_keys=True).encode())
            ep.close()

        thread = _run_session(gateway, hello_then_vanish)
        _assert_handshake_failure(gateway, thread)

    def test_garbage_hello_payload(self, gateway):
        def garbage(sock):
            ep = SocketEndpoint("abort-client", sock)
            ep.send(HELLO_TAG, b"this is not json")
            ep.close()

        thread = _run_session(gateway, garbage)
        _assert_handshake_failure(gateway, thread)

    def test_version_skew(self, gateway):
        def old_client(sock):
            ep = SocketEndpoint("abort-client", sock)
            hello = {"protocol_version": PROTOCOL_VERSION - 1, "name": "old"}
            ep.send(HELLO_TAG, json.dumps(hello, sort_keys=True).encode())
            ep.close()

        thread = _run_session(gateway, old_client)
        _assert_handshake_failure(gateway, thread)


class TestReaper:
    def test_half_open_socket_is_reaped(self, gateway):
        """A client that connects and sends nothing (SYN-and-silence)
        must not pin a session thread past the handshake timeout."""
        ours, theirs = socket.socketpair()
        try:
            thread = gateway.adopt(theirs)
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "half-open session pinned its thread"
            counters = _counters(gateway)
            assert counters["gateway.reaped"] == 1
            assert counters["gateway.handshake_failures"] == 1
            assert isinstance(gateway._last_session_error, HandshakeError)
        finally:
            ours.close()

    def test_prompt_handshake_is_not_reaped(self, gateway):
        from repro.net.handshake import client_handshake
        from repro.net.gateway import BYE_TAG

        ours, theirs = socket.socketpair()
        client = SocketEndpoint("client", ours, recv_timeout_s=2.0)
        try:
            thread = gateway.adopt(theirs)
            descriptor = client_handshake(client, client_name="prompt")
            assert descriptor.protocol_version == PROTOCOL_VERSION
            time.sleep(0.5)  # well past handshake_timeout_s
            assert thread.is_alive()  # established sessions live on
            assert "gateway.reaped" not in _counters(gateway)
            client.send(BYE_TAG, b"")
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        finally:
            client.close()


class TestNoThreadLeaks:
    def test_aborts_leave_no_gateway_threads(self, gateway):
        for _ in range(5):
            thread = _run_session(gateway, lambda sock: sock.close())
            assert not thread.is_alive()
        leaked = [
            t for t in threading.enumerate()
            if t.name.startswith("gateway-session") and t.is_alive()
        ]
        assert leaked == []
        assert _counters(gateway)["gateway.handshake_failures"] == 5
