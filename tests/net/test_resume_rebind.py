"""Resume protocol end to end: rebind after disconnect, replay, rejects.

The acceptance criteria under test: a v3 client whose wire breaks —
idle or mid-stream — reconnects, rebinds to the still-live session,
replays only unacked frames, and finishes with the bit-identical MAC
result *without a single round being re-garbled* (asserted through
``runs_garbled`` on a pool-less server: exactly one garbling per
query, disconnect or not).
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import ResumeError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.net import GCGateway, RemoteAnalyticsClient
from repro.net.endpoint import SocketEndpoint
from repro.recover import BackoffPolicy
from repro.serve import ServingConfig
from repro.telemetry import MetricsRegistry

MODEL = np.array([
    [0.5, -1.0, 0.25, 0.75],
    [1.5, 0.25, -0.5, 1.0],
    [-0.75, 2.0, 0.125, -0.25],
    [1.0, 1.0, -1.5, 0.5],
])
RECV_TIMEOUT = 20.0


@pytest.fixture
def telemetry():
    return MetricsRegistry()


@pytest.fixture
def server(telemetry):
    # pool_size=0 + no refill: every query garbles exactly once, so
    # runs_garbled is a precise no-re-garbling oracle
    return CloudServer(
        MODEL, Q8_4, pool_size=0, seed=11, auto_refill=False,
        telemetry=telemetry,
    )


@pytest.fixture
def gateway(server):
    config = ServingConfig(
        workers=2, queue_depth=8, refill=False,
        recv_timeout_s=RECV_TIMEOUT, resume_window_s=10.0,
    )
    gw = GCGateway(server, config=config)
    gw.serving.start()
    yield gw
    gw.stop()


def resumable_client(gateway, **kwargs) -> RemoteAnalyticsClient:
    """A client whose dial adopts a fresh socketpair half into the gateway."""

    def dial():
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        return SocketEndpoint("client", ours, recv_timeout_s=RECV_TIMEOUT)

    kwargs.setdefault(
        "backoff", BackoffPolicy(base_s=0.01, cap_s=0.1, seed=5)
    )
    return RemoteAnalyticsClient(dial=dial, **kwargs)


def cut_wire(client) -> None:
    """Kill the client's current transport socket out from under it."""
    client.endpoint.transport._sock.close()


X = np.array([0.5, -0.25, 1.0, 0.75])


class TestRebind:
    def test_v3_session_is_resumable_and_correct(self, gateway):
        with resumable_client(gateway) as client:
            assert client.resumable
            assert client.session_id.startswith("s-")
            assert client.query_row(1, X) == pytest.approx(
                float(MODEL[1] @ X), abs=1e-12
            )

    def test_idle_disconnect_rebinds_transparently(self, server, gateway):
        with resumable_client(gateway) as client:
            client.query_row(0, X)
            garbled = server.stats.runs_garbled
            cut_wire(client)
            assert client.query_row(2, X) == pytest.approx(
                float(MODEL[2] @ X), abs=1e-12
            )
            assert client.endpoint.resumes == 1
            # the second query garbled exactly once: no re-garbling
            assert server.stats.runs_garbled == garbled + 1
            assert (
                server.telemetry.counter("gateway.resumes.rebind").value == 1
            )

    def test_mid_stream_disconnect_replays_unacked_frames(self, server, gateway):
        with resumable_client(gateway) as client:
            garbled = server.stats.runs_garbled

            def cutter():
                # wait until the garbled stream is demonstrably flowing,
                # then cut — the break lands mid-round
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if client.endpoint.recv_seq >= 3:
                        cut_wire(client)
                        return
                    time.sleep(0.001)

            t = threading.Thread(target=cutter)
            t.start()
            got = client.query_row(1, X)
            t.join(timeout=10.0)
            assert got == pytest.approx(float(MODEL[1] @ X), abs=1e-12)
            assert client.endpoint.resumes >= 1
            # completed rounds were never re-garbled
            assert server.stats.runs_garbled == garbled + 1
            assert (
                server.telemetry.counter("recover.gateway.rebinds").value >= 1
            )

    def test_multiple_disconnects_in_one_session(self, server, gateway):
        with resumable_client(gateway) as client:
            garbled = server.stats.runs_garbled
            for row in range(3):
                cut_wire(client)
                assert client.query_row(row, X) == pytest.approx(
                    float(MODEL[row] @ X), abs=1e-12
                )
            assert client.endpoint.resumes == 3
            assert server.stats.runs_garbled == garbled + 3


class TestResumeRejects:
    def test_unknown_session_is_a_typed_reject(self, gateway):
        with resumable_client(gateway) as client:
            client.query_row(0, X)
            client.endpoint.session_id = "s-never-existed"
            cut_wire(client)
            with pytest.raises(ResumeError, match="refused to resume"):
                client.query_row(1, X)
            assert (
                gateway.telemetry.counter("gateway.resume_requests").value >= 1
            )

    def test_replay_horizon_overrun_is_a_typed_reject(self, gateway):
        with resumable_client(gateway) as client:
            client.query_row(0, X)
            # claim to have verified far fewer frames than the gateway's
            # bounded replay buffer still holds... by shrinking the
            # *client's* record instead: pretend we acked nothing while
            # the gateway's buffer horizon has moved past frame 0
            live = gateway._live[client.session_id]
            buffer = live.channel.replay_buffer
            # simulate horizon advance: drop everything below send_seq
            buffer.ack(live.channel.send_seq)
            buffer.record(live.channel.send_seq + 10, "x", b"pad")
            client.endpoint.restore_sequences(
                client.endpoint.send_seq, 0
            )  # "I verified nothing"
            cut_wire(client)
            with pytest.raises(ResumeError, match="replay"):
                client.query_row(1, X)

    def test_exhausted_backoff_budget_is_typed(self, server):
        # a gateway that is simply gone: every dial fails
        config = ServingConfig(workers=1, recv_timeout_s=RECV_TIMEOUT)
        gw = GCGateway(server, config=config)
        gw.serving.start()
        try:
            alive = {"up": True}

            def dial():
                if not alive["up"]:
                    raise OSError("connection refused")
                ours, theirs = socket.socketpair()
                gw.adopt(theirs)
                return SocketEndpoint(
                    "client", ours, recv_timeout_s=RECV_TIMEOUT
                )

            client = RemoteAnalyticsClient(
                dial=dial,
                backoff=BackoffPolicy(
                    base_s=0.005, cap_s=0.01, max_attempts=3, seed=2
                ),
            )
            client.query_row(0, X)
            alive["up"] = False
            cut_wire(client)
            with pytest.raises(ResumeError, match="could not be resumed"):
                client.query_row(1, X)
            client.close()
        finally:
            gw.stop()


class TestVersionNegotiation:
    def test_loopback_socket_client_is_not_resumable(self, gateway):
        """No dial callable => plain transport, exactly the old behaviour."""
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        with RemoteAnalyticsClient.from_socket(
            ours, recv_timeout_s=RECV_TIMEOUT
        ) as client:
            assert not client.resumable
            from repro.net.handshake import PROTOCOL_VERSION

            assert client.descriptor.protocol_version == PROTOCOL_VERSION
            assert client.query_row(0, X) == pytest.approx(
                float(MODEL[0] @ X), abs=1e-12
            )

    def test_v3_gateway_serves_v2_clients(self, gateway, monkeypatch):
        """A v2 hello negotiates down; the session runs without a
        session_id or any v3 control frames."""
        import repro.net.handshake as hs

        monkeypatch.setattr(hs, "PROTOCOL_VERSION", 2)
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        with RemoteAnalyticsClient.from_socket(
            ours, recv_timeout_s=RECV_TIMEOUT
        ) as client:
            assert client.descriptor.protocol_version == 2
            assert not client.resumable
            assert client.query_row(3, X) == pytest.approx(
                float(MODEL[3] @ X), abs=1e-12
            )
