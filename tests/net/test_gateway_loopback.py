"""Gateway end-to-end over loopback sockets: the acceptance tests.

* remote results are bit-identical to the in-process ``AnalyticsClient``;
* one gateway serves >= 2 concurrent remote sessions;
* malformed/hostile clients fail typed within the configured timeout
  and never wedge the gateway.

Most tests use ``socketpair`` adoption (no ports bound); one covers the
full TCP accept path on 127.0.0.1 with an ephemeral port.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import HandshakeError, ServingError, WireError
from repro.fixedpoint import Q8_4
from repro.host import AnalyticsClient, CloudServer
from repro.net import GCGateway, RemoteAnalyticsClient
from repro.serve import ServingConfig

MODEL = np.array([[0.5, -1.0], [1.5, 0.25], [-0.75, 2.0], [1.0, 1.0]])
RECV_TIMEOUT = 20.0


@pytest.fixture
def server():
    return CloudServer(MODEL, Q8_4, pool_size=2, seed=11, auto_refill=False)


@pytest.fixture
def gateway(server):
    config = ServingConfig(
        workers=2, queue_depth=8, refill=True, recv_timeout_s=RECV_TIMEOUT
    )
    gw = GCGateway(server, config=config)
    gw.serving.start()
    yield gw
    gw.stop()


def loopback_client(gateway, **kwargs) -> RemoteAnalyticsClient:
    ours, theirs = socket.socketpair()
    gateway.adopt(theirs)
    return RemoteAnalyticsClient.from_socket(
        ours, recv_timeout_s=RECV_TIMEOUT, **kwargs
    )


def q84_grid(rng, n):
    """Random vector snapped to the Q8.4 grid (bit-exact vs plaintext)."""
    return np.round(rng.uniform(-1, 1, size=n) * 16) / 16


class TestBitIdentity:
    def test_remote_equals_in_process_for_every_row(self, server, gateway):
        local = AnalyticsClient(server)
        rng = np.random.default_rng(21)
        with loopback_client(gateway) as remote:
            for row in range(MODEL.shape[0]):
                x = q84_grid(rng, MODEL.shape[1])
                assert remote.query_row(row, x) == local.query_row(row, x)

    def test_remote_matches_plaintext_on_grid(self, gateway):
        rng = np.random.default_rng(5)
        with loopback_client(gateway) as remote:
            for _ in range(3):
                row = int(rng.integers(0, MODEL.shape[0]))
                x = q84_grid(rng, MODEL.shape[1])
                assert remote.query_row(row, x) == pytest.approx(
                    float(MODEL[row] @ x), abs=1e-12
                )

    def test_descriptor_reflects_model(self, gateway):
        with loopback_client(gateway) as remote:
            assert remote.n_rows == MODEL.shape[0]
            assert remote.rounds_per_request == MODEL.shape[1]


class TestConcurrentSessions:
    def test_two_plus_concurrent_remote_sessions(self, server, gateway):
        n_clients, per_client = 3, 2
        results: dict[int, list[tuple[float, float]]] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_clients)

        def one_client(cid: int):
            rng = np.random.default_rng(100 + cid)
            try:
                with loopback_client(gateway, name=f"client-{cid}") as remote:
                    barrier.wait(timeout=10.0)  # all sessions live at once
                    pairs = []
                    for _ in range(per_client):
                        row = int(rng.integers(0, MODEL.shape[0]))
                        x = q84_grid(rng, MODEL.shape[1])
                        pairs.append((remote.query_row(row, x), float(MODEL[row] @ x)))
                    results[cid] = pairs
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=one_client, args=(c,)) for c in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, errors
        assert len(results) == n_clients
        for pairs in results.values():
            for got, expected in pairs:
                assert got == pytest.approx(expected, abs=1e-12)
        assert server.telemetry.counter("gateway.sessions").value == n_clients
        # the handler thread bumps gateway.queries *after* the client has
        # already read its result off the socket, so give the last
        # increment a moment to land before pinning the exact count
        deadline = time.monotonic() + 5.0
        queries = server.telemetry.counter("gateway.queries")
        while queries.value < n_clients * per_client and time.monotonic() < deadline:
            time.sleep(0.01)
        assert queries.value == n_clients * per_client
        # paper-style accounting: table bytes dominate and are per-tag visible
        assert server.telemetry.counter("channel.bytes.seq.tables").value > 0

    def test_sessions_share_the_pregarbled_pool(self, server, gateway):
        with loopback_client(gateway) as remote:
            remote.query_row(0, [0.5, 0.25])
        assert server.stats.pool_hits >= 1


class TestTcpPath:
    def test_tcp_accept_loop_end_to_end(self, server):
        config = ServingConfig(workers=2, recv_timeout_s=RECV_TIMEOUT)
        local = AnalyticsClient(server)
        x = np.array([0.5, -0.25])
        with GCGateway(server, config=config) as gw:
            host, port = gw.address
            assert port != 0
            with RemoteAnalyticsClient(host, port, recv_timeout_s=RECV_TIMEOUT) as remote:
                assert remote.query_row(2, x) == local.query_row(2, x)


class TestHostileClients:
    def test_http_client_fails_typed_and_gateway_survives(self, server, gateway):
        ours, theirs = socket.socketpair()
        session_thread = gateway.adopt(theirs)
        ours.sendall(b"GET / HTTP/1.1\r\nHost: gc\r\n\r\n")
        session_thread.join(timeout=RECV_TIMEOUT + 5.0)
        assert not session_thread.is_alive()
        assert isinstance(gateway._last_session_error, WireError)
        assert server.telemetry.counter("gateway.session_errors").value == 1
        ours.close()
        # the gateway keeps serving well-formed sessions afterwards
        with loopback_client(gateway) as remote:
            assert remote.query_row(0, [0.5, 0.25]) == pytest.approx(
                float(MODEL[0] @ [0.5, 0.25]), abs=1e-12
            )

    def test_mid_handshake_disconnect_is_contained(self, server, gateway):
        ours, theirs = socket.socketpair()
        session_thread = gateway.adopt(theirs)
        ours.close()  # vanish before saying hello
        session_thread.join(timeout=RECV_TIMEOUT + 5.0)
        assert not session_thread.is_alive()
        assert server.telemetry.counter("gateway.session_errors").value == 1

    def test_bad_row_gets_typed_refusal_and_session_continues(self, gateway):
        with loopback_client(gateway) as remote:
            with pytest.raises(ServingError, match="no row"):
                remote.query_row(99, [0.5, 0.25])
            # same session still works
            assert remote.query_row(0, [0.5, 0.25]) == pytest.approx(
                float(MODEL[0] @ [0.5, 0.25]), abs=1e-12
            )

    def test_backpressure_is_a_typed_refusal(self, server):
        # serving layer not started: submission fails, client sees net.error
        gw = GCGateway(server, config=ServingConfig(recv_timeout_s=RECV_TIMEOUT))
        try:
            with pytest.raises(ServingError, match="refused"):
                with loopback_client(gw) as remote:
                    remote.query_row(0, [0.5, 0.25])
        finally:
            gw.stop()

    def test_fingerprint_mismatch_fails_before_any_query(self, server, gateway, monkeypatch):
        import repro.net.client as client_mod

        monkeypatch.setattr(
            client_mod, "netlist_fingerprint", lambda circuit: "deadbeef"
        )
        ours, theirs = socket.socketpair()
        gateway.adopt(theirs)
        with pytest.raises(HandshakeError, match="fingerprint mismatch"):
            RemoteAnalyticsClient.from_socket(ours, recv_timeout_s=RECV_TIMEOUT)
