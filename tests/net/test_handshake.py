"""Session negotiation: version/fingerprint checks fail fast and typed."""

import json
import threading

import numpy as np
import pytest

from repro.accel.tree_mac import build_scheduled_mac
from repro.errors import HandshakeError
from repro.fixedpoint import Q8_4
from repro.host import CloudServer
from repro.net import socketpair_endpoints
from repro.net.handshake import (
    HELLO_TAG,
    PROTOCOL_VERSION,
    REJECT_TAG,
    SessionDescriptor,
    client_handshake,
    descriptor_for,
    netlist_fingerprint,
    server_handshake,
)

MODEL = np.array([[0.5, -1.0], [1.5, 0.25]])


@pytest.fixture(scope="module")
def descriptor():
    server = CloudServer(MODEL, Q8_4, pool_size=0, seed=3, auto_refill=False)
    return descriptor_for(server)


class TestFingerprint:
    def test_same_build_same_fingerprint(self):
        a = build_scheduled_mac(8).circuit
        b = build_scheduled_mac(8).circuit
        assert netlist_fingerprint(a) == netlist_fingerprint(b)

    def test_different_widths_differ(self):
        assert netlist_fingerprint(build_scheduled_mac(8).circuit) != netlist_fingerprint(
            build_scheduled_mac(16).circuit
        )

    def test_descriptor_matches_client_side_rebuild(self, descriptor):
        rebuilt = build_scheduled_mac(
            descriptor.total_bits, descriptor.acc_width
        ).circuit
        assert netlist_fingerprint(rebuilt) == descriptor.fingerprint


class TestDescriptorCodec:
    def test_payload_round_trip(self, descriptor):
        assert SessionDescriptor.from_payload(descriptor.to_payload()) == descriptor

    def test_malformed_payload_typed(self):
        with pytest.raises(HandshakeError, match="malformed"):
            SessionDescriptor.from_payload(b"not json")
        with pytest.raises(HandshakeError, match="malformed"):
            SessionDescriptor.from_payload(b'{"protocol_version": 1}')

    def test_descriptor_carries_group(self, descriptor):
        group = descriptor.group
        assert (group.p, group.g) == (descriptor.group_p, descriptor.group_g)


def _run_handshake(descriptor, client_side):
    """Run server_handshake against ``client_side(endpoint)`` on a thread."""
    g_end, c_end = socketpair_endpoints("gateway", "client", recv_timeout_s=5.0)
    box = {}

    def server_side():
        try:
            box["hello"] = server_handshake(g_end, descriptor)
        except BaseException as exc:
            box["server_error"] = exc

    t = threading.Thread(target=server_side)
    t.start()
    try:
        box["client"] = client_side(c_end)
    except BaseException as exc:
        box["client_error"] = exc
    t.join(timeout=10.0)
    return box


class TestNegotiation:
    def test_happy_path(self, descriptor):
        box = _run_handshake(
            descriptor, lambda ep: client_handshake(ep, client_name="t1")
        )
        assert box["client"] == descriptor
        assert box["hello"]["name"] == "t1"

    def test_version_mismatch_rejects_both_sides(self, descriptor):
        def skewed_client(ep):
            hello = {"protocol_version": PROTOCOL_VERSION + 7, "name": "old"}
            ep.send(HELLO_TAG, json.dumps(hello).encode())
            tag, payload = ep.recv_any((REJECT_TAG, "net.welcome"))
            return tag, payload.decode()

        box = _run_handshake(descriptor, skewed_client)
        tag, reason = box["client"]
        assert tag == REJECT_TAG
        assert "version mismatch" in reason
        assert isinstance(box["server_error"], HandshakeError)

    def test_malformed_hello_rejected(self, descriptor):
        def garbage_client(ep):
            ep.send(HELLO_TAG, b"\x00\x01 not json")
            return ep.recv_any((REJECT_TAG,))

        box = _run_handshake(descriptor, garbage_client)
        assert isinstance(box["server_error"], HandshakeError)
        assert box["client"][0] == REJECT_TAG

    def test_client_raises_on_reject(self, descriptor):
        def rejecting_server(ep):
            ep.recv(HELLO_TAG)
            ep.send(REJECT_TAG, b"maintenance window")

        g_end, c_end = socketpair_endpoints("gateway", "client", recv_timeout_s=5.0)
        t = threading.Thread(target=rejecting_server, args=(g_end,))
        t.start()
        with pytest.raises(HandshakeError, match="maintenance window"):
            client_handshake(c_end)
        t.join(timeout=10.0)
