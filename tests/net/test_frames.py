"""Frame codec: round trips plus the malformed-wire fuzz battery.

Every corruption mode must surface as a typed ``WireError`` — never a
hang, never a silently mis-parsed frame.
"""

import random
import struct

import pytest

from repro.errors import WireError
from repro.net.frames import (
    HEADER_BYTES,
    MAGIC,
    FrameReader,
    buffer_reader,
    decode_frame_body,
    encode_frame,
)


class TestRoundTrip:
    def test_encode_decode(self):
        frame = encode_frame("gc.tables", b"\x01\x02\x03")
        assert buffer_reader(frame).read_frame() == ("gc.tables", b"\x01\x02\x03")

    def test_empty_payload(self):
        frame = encode_frame("seq.rounds", b"")
        assert buffer_reader(frame).read_frame() == ("seq.rounds", b"")

    def test_back_to_back_frames(self):
        stream = encode_frame("a", b"1") + encode_frame("b", b"22") + encode_frame("c", b"")
        reader = buffer_reader(stream)
        assert reader.read_frame() == ("a", b"1")
        assert reader.read_frame() == ("b", b"22")
        assert reader.read_frame() == ("c", b"")

    def test_large_payload(self):
        payload = bytes(range(256)) * 1024
        frame = encode_frame("seq.tables", payload)
        assert buffer_reader(frame).read_frame() == ("seq.tables", payload)

    def test_header_layout_is_pinned(self):
        # magic | u32 big-endian length | u8 taglen | tag | payload
        frame = encode_frame("ab", b"xyz")
        assert frame[:2] == MAGIC
        assert struct.unpack(">I", frame[2:6])[0] == 1 + 2 + 3
        assert frame[6] == 2
        assert frame[7:9] == b"ab"
        assert frame[9:] == b"xyz"


class TestEncodeValidation:
    def test_empty_tag_rejected(self):
        with pytest.raises(WireError, match="1..255"):
            encode_frame("", b"x")

    def test_oversized_tag_rejected(self):
        with pytest.raises(WireError, match="1..255"):
            encode_frame("t" * 256, b"")

    def test_non_ascii_tag_rejected(self):
        with pytest.raises(UnicodeEncodeError):
            encode_frame("té", b"")

    def test_payload_over_cap_rejected(self):
        with pytest.raises(WireError, match="wire cap"):
            encode_frame("t", b"x" * 100, max_frame_bytes=50)


class TestMalformedWire:
    def test_truncated_header(self):
        frame = encode_frame("tag", b"payload")
        with pytest.raises(WireError, match="truncated"):
            buffer_reader(frame[: HEADER_BYTES - 2]).read_frame()

    def test_truncated_body(self):
        frame = encode_frame("tag", b"payload")
        with pytest.raises(WireError, match="truncated"):
            buffer_reader(frame[:-3]).read_frame()

    def test_bad_magic(self):
        frame = b"HT" + encode_frame("tag", b"payload")[2:]
        with pytest.raises(WireError, match="magic"):
            buffer_reader(frame).read_frame()

    def test_oversized_length_prefix(self):
        frame = MAGIC + struct.pack(">I", 1 << 31) + b"\x01t"
        with pytest.raises(WireError, match="cap"):
            buffer_reader(frame).read_frame()

    def test_zero_length_frame(self):
        frame = MAGIC + struct.pack(">I", 0)
        with pytest.raises(WireError, match="empty frame body"):
            buffer_reader(frame).read_frame()

    def test_tag_length_exceeds_body(self):
        body = bytes([40]) + b"short"
        frame = MAGIC + struct.pack(">I", len(body)) + body
        with pytest.raises(WireError, match="tag length"):
            buffer_reader(frame).read_frame()

    def test_zero_tag_length(self):
        body = bytes([0]) + b"payload"
        frame = MAGIC + struct.pack(">I", len(body)) + body
        with pytest.raises(WireError, match="tag length"):
            buffer_reader(frame).read_frame()

    def test_non_ascii_tag_on_wire(self):
        with pytest.raises(WireError, match="ASCII"):
            decode_frame_body(bytes([2]) + b"\xff\xfe" + b"payload")


class TestFuzz:
    def test_random_garbage_never_escapes_typed_errors(self):
        """Any byte soup either fails typed or decodes a valid frame."""
        rng = random.Random(0xC0FFEE)
        for _ in range(500):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 64)))
            reader = buffer_reader(blob)
            try:
                tag, payload = reader.read_frame()
            except WireError:
                continue
            assert isinstance(tag, str) and isinstance(payload, bytes)

    def test_bit_flips_in_valid_frames(self):
        """Flipping any single header byte yields WireError or a clean parse."""
        frame = encode_frame("seq.tables", b"\xaa" * 40)
        for pos in range(min(len(frame), HEADER_BYTES + 3)):
            for flip in (0x01, 0x80, 0xFF):
                mutated = bytearray(frame)
                mutated[pos] ^= flip
                try:
                    tag, payload = buffer_reader(bytes(mutated)).read_frame()
                except WireError:
                    continue
                assert isinstance(tag, str) and isinstance(payload, bytes)

    def test_truncation_at_every_boundary(self):
        frame = encode_frame("t", b"0123456789")
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                buffer_reader(frame[:cut]).read_frame()


class TestFrameReaderContract:
    def test_reader_propagates_transport_errors(self):
        def broken_read(n):
            raise WireError("mid-frame disconnect")

        with pytest.raises(WireError, match="disconnect"):
            FrameReader(broken_read).read_frame()
