"""Frames split at every byte boundary must reassemble bit-identically.

TCP gives no framing guarantees: a sender's single ``sendall`` may
arrive as any sequence of partial reads.  These tests force the worst
case — every possible split point, including mid-magic, mid-length,
mid-tag, mid-payload, and mid-CRC-trailer — and require the receiver
to reconstruct the exact (tag, body) pair with the integrity trailer
verifying.  Parametrized over v2-style frames (counters from zero) and
v3-style frames (counters restored mid-stream, as after a resume).
"""

import socket
import threading

import pytest

from repro.gc.channel import message_checksum
from repro.net.endpoint import SocketEndpoint
from repro.net.frames import FrameReader, encode_frame


def wire_bytes(messages, start_seq=0):
    """The exact byte stream a SocketEndpoint sender produces."""
    out = b""
    for i, (tag, body) in enumerate(messages):
        wire = body + message_checksum(tag, body, start_seq + i)
        out += encode_frame(tag, wire)
    return out


class _ChunkedReader:
    """A read_exact source that honours chunk boundaries: each call
    returns bytes from the current chunk only, like a socket recv that
    got a partial segment."""

    def __init__(self, chunks):
        self.chunks = [c for c in chunks if c]
        self.pos = 0

    def read(self, n: int) -> bytes:
        out = b""
        while len(out) < n and self.chunks:
            chunk = self.chunks[0]
            take = min(n - len(out), len(chunk) - self.pos)
            out += chunk[self.pos : self.pos + take]
            self.pos += take
            if self.pos == len(self.chunks[0]):
                self.chunks.pop(0)
                self.pos = 0
        return out


# v2: a fresh session, counters from zero.  v3: the same messages as a
# resumed stream — counters restored to mid-session values, which the
# sequence-mixed CRC trailers must reflect.
SCENARIOS = {
    "v2-fresh": 0,
    "v3-resumed": 17,
}

MESSAGES = [
    ("net.query", b'{"row": 1}'),
    ("seq.tables", bytes(range(256)) * 2),
    ("seq.garbler_labels", (123456789).to_bytes(16, "big") * 3),
    ("net.resume_ok", b'{"mode": "rebind", "last_acked_seq": 4}'),
    ("seq.output_map", b"\x01\x00\x01"),
]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
class TestEveryByteBoundary:
    def test_two_way_split_reassembles_bit_identically(self, scenario):
        start_seq = SCENARIOS[scenario]
        stream = wire_bytes(MESSAGES, start_seq)
        for cut in range(len(stream) + 1):
            reader = _ChunkedReader([stream[:cut], stream[cut:]])
            frames = []
            fr = FrameReader(reader.read)
            for _ in MESSAGES:
                frames.append(fr.read_frame())
            for (tag, body), (sent_tag, sent_body) in zip(frames, MESSAGES):
                assert tag == sent_tag
                # bit-identical: body + the original sequence-mixed trailer
                expected_wire = sent_body + message_checksum(
                    sent_tag, sent_body,
                    start_seq + MESSAGES.index((sent_tag, sent_body)),
                )
                assert body == expected_wire

    def test_byte_at_a_time_dribble(self, scenario):
        start_seq = SCENARIOS[scenario]
        stream = wire_bytes(MESSAGES, start_seq)
        reader = _ChunkedReader([bytes([b]) for b in stream])
        fr = FrameReader(reader.read)
        for sent_tag, sent_body in MESSAGES:
            tag, body = fr.read_frame()
            assert tag == sent_tag
            assert body[: -4] == sent_body


class TestSocketEndpointReassembly:
    """The real transport: a dribbling sender against SocketEndpoint's
    read loop, with the endpoint's own trailer verification engaged."""

    @pytest.mark.parametrize("start_seq", sorted(SCENARIOS.values()))
    def test_dribbled_frames_verify_and_decode(self, start_seq):
        ours, theirs = socket.socketpair()
        receiver = SocketEndpoint("rx", theirs, recv_timeout_s=10.0)
        receiver.restore_sequences(0, start_seq)
        stream = wire_bytes(MESSAGES, start_seq)

        def dribble():
            for i in range(0, len(stream), 7):  # prime stride: frames
                ours.sendall(stream[i : i + 7])  # never align to chunks

        t = threading.Thread(target=dribble)
        t.start()
        try:
            for sent_tag, sent_body in MESSAGES:
                assert receiver.recv(sent_tag) == sent_body
        finally:
            t.join(timeout=10.0)
            receiver.close()
            ours.close()

    def test_split_inside_the_integrity_trailer(self):
        """The nastiest cut: the frame body arrives whole except the
        last CRC byte.  The receiver must block, not mis-verify."""
        ours, theirs = socket.socketpair()
        receiver = SocketEndpoint("rx", theirs, recv_timeout_s=10.0)
        stream = wire_bytes([("seq.tables", b"\xaa" * 64)])
        got = {}

        def rx():
            got["body"] = receiver.recv("seq.tables")

        t = threading.Thread(target=rx)
        ours.sendall(stream[:-1])
        t.start()
        t.join(timeout=0.3)
        assert t.is_alive()  # still waiting on the final trailer byte
        ours.sendall(stream[-1:])
        t.join(timeout=10.0)
        assert got["body"] == b"\xaa" * 64
        receiver.close()
        ours.close()


class TestRoundTripThroughRealSender:
    """Sender-side SocketEndpoint output is exactly wire_bytes()."""

    @pytest.mark.parametrize("start_seq", sorted(SCENARIOS.values()))
    def test_sender_bytes_are_pinned(self, start_seq):
        ours, theirs = socket.socketpair()
        sender = SocketEndpoint("tx", ours, recv_timeout_s=5.0)
        sender.restore_sequences(start_seq, 0)
        for tag, body in MESSAGES:
            sender.send(tag, body)
        expected = wire_bytes(MESSAGES, start_seq)
        theirs.settimeout(5.0)
        raw = b""
        while len(raw) < len(expected):
            raw += theirs.recv(1 << 16)
        assert raw == expected
        sender.close()
        theirs.close()
