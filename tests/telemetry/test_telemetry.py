"""Telemetry unit tests: percentile math, span nesting, determinism."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import Counter, Histogram, MetricsRegistry, render_text, to_json


class FakeClock:
    """A deterministic clock: each read advances by ``step``."""

    def __init__(self, start: float = 0.0, step: float = 1.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestCounter:
    def test_inc_and_value(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1)

    def test_thread_safety(self):
        c = Counter()

        def hammer():
            for _ in range(2000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * 2000


class TestHistogramPercentiles:
    def test_single_value(self):
        h = Histogram()
        h.record(42.0)
        for p in (0, 50, 100):
            assert h.percentile(p) == 42.0

    def test_exact_ranks(self):
        h = Histogram()
        for v in [10, 20, 30, 40, 50]:
            h.record(v)
        assert h.percentile(0) == 10
        assert h.percentile(50) == 30
        assert h.percentile(100) == 50

    def test_linear_interpolation(self):
        h = Histogram()
        for v in [0.0, 10.0]:
            h.record(v)
        # rank = 0.9 * (2-1) = 0.9 -> 0 + 0.9 * 10
        assert h.percentile(90) == pytest.approx(9.0)

    def test_order_independent(self):
        a, b = Histogram(), Histogram()
        for v in [5, 1, 3, 2, 4]:
            a.record(v)
        for v in [1, 2, 3, 4, 5]:
            b.record(v)
        assert a.percentile(75) == b.percentile(75) == 4.0

    def test_summary_stats(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0]:
            h.record(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0

    def test_empty_histogram_raises(self):
        h = Histogram()
        with pytest.raises(ConfigurationError):
            h.percentile(50)
        with pytest.raises(ConfigurationError):
            h.mean
        assert h.snapshot() == {"count": 0}

    def test_bad_percentile_rejected(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ConfigurationError):
            h.percentile(101)


class TestSpans:
    def test_nesting_parent_and_depth(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("outer"):
            assert reg.spans.active_depth == 1
            with reg.span("inner"):
                assert reg.spans.active_depth == 2
        spans = reg.spans.completed()
        # inner completes first
        assert [s.name for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner.parent == "outer" and inner.depth == 1
        assert outer.parent is None and outer.depth == 0
        assert outer.start < inner.start and inner.end < outer.end

    def test_span_duration_requires_close(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("open") as sp:
            with pytest.raises(ConfigurationError):
                sp.duration
        assert sp.duration > 0

    def test_spans_from_threads_are_independent(self):
        reg = MetricsRegistry()
        ready = threading.Barrier(2)

        def worker(name):
            with reg.span(name):
                ready.wait(timeout=5)

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = reg.spans.completed()
        # neither thread's span nests under the other's
        assert {s.name for s in spans} == {"t0", "t1"}
        assert all(s.parent is None and s.depth == 0 for s in spans)

    def test_timer_records_into_histogram(self):
        reg = MetricsRegistry(clock=FakeClock(step=0.5))
        with reg.timer("work"):
            pass
        assert reg.histogram("work").count == 1
        assert reg.histogram("work").percentile(50) == pytest.approx(0.5)


class TestExporterDeterminism:
    @staticmethod
    def _populate(reg):
        reg.counter("pool.hits").inc(9)
        reg.counter("pool.misses").inc(1)
        for v in [0.1, 0.2, 0.3, 0.4]:
            reg.histogram("request.latency").record(v)
        with reg.span("request"):
            with reg.span("garble"):
                pass

    def test_snapshot_identical_under_fixed_clock(self):
        a = MetricsRegistry(clock=FakeClock(step=0.25))
        b = MetricsRegistry(clock=FakeClock(step=0.25))
        self._populate(a)
        self._populate(b)
        assert a.snapshot() == b.snapshot()
        assert to_json(a.snapshot()) == to_json(b.snapshot())
        assert render_text(a.snapshot()) == render_text(b.snapshot())

    def test_text_report_contents(self):
        reg = MetricsRegistry(clock=FakeClock())
        self._populate(reg)
        text = render_text(reg.snapshot(), title="serving telemetry")
        assert "serving telemetry" in text
        assert "pool.hits" in text and "9" in text
        assert "request.latency" in text and "p90" in text
        assert "garble" in text

    def test_json_round_trips(self):
        import json

        reg = MetricsRegistry(clock=FakeClock())
        self._populate(reg)
        snap = reg.snapshot()
        assert json.loads(to_json(snap)) == snap

    def test_empty_registry_renders(self):
        assert "no metrics" in render_text(MetricsRegistry().snapshot())

    def test_registry_reuses_instruments_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")
