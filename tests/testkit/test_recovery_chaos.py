"""The recovery chaos profile: disconnect/shed plans against a live
gateway, the fourth ``recovered`` verdict, and replay determinism.

The slow sweep at the bottom is the PR's acceptance gate: a seed-pinned
>= 20-session recovery run where every session ends recovered,
tolerated, or surfaced-typed — zero violations, bit-identical MAC
outputs, no re-garbled rounds (the oracle itself asserts the garble
count per session).
"""

import pytest

from repro.errors import ConfigurationError
from repro.testkit import (
    DISCONNECT,
    RECOVERED,
    RECOVERY_FAULT_KINDS,
    SHED,
    SURFACED,
    TOLERATED,
    VIOLATION,
    ChaosConfig,
    ChaosReport,
    ChaosRunner,
    FaultPlan,
    FaultSpec,
)


RECOVERY_CONFIG = dict(
    sessions=4, seed=3, profile="recovery",
    recv_timeout_s=0.25, deadline_s=30.0,
)


class TestRecoveryPlans:
    def test_recovery_kinds_are_registered(self):
        assert DISCONNECT in RECOVERY_FAULT_KINDS
        assert SHED in RECOVERY_FAULT_KINDS

    def test_random_recovery_is_deterministic(self):
        a = FaultPlan.random_recovery(42)
        b = FaultPlan.random_recovery(42)
        assert a.to_dict() == b.to_dict()
        assert a.is_recovery or a.faults[0].kind == "stall"

    def test_recovery_plans_serialize_roundtrip(self):
        plan = FaultPlan.random_recovery(7)
        assert FaultPlan.from_dict(plan.to_dict()).to_dict() == plan.to_dict()

    def test_default_profile_draw_is_unchanged(self):
        """Adding the recovery kinds must not remap historical seeds:
        the classic profile's seed -> plan mapping is pinned."""
        plan = FaultPlan.random(1234)
        assert plan.faults[0].kind not in (DISCONNECT, SHED)


class TestOracleRecoveryVerdicts:
    @pytest.fixture
    def runner(self):
        return ChaosRunner(ChaosConfig(**RECOVERY_CONFIG))

    def oracle_run(self, runner, plan) -> tuple:
        row, x = runner.workload_for(0)
        verdict = runner.oracle.run_session(plan, row, x, "socket")
        return verdict, row, x

    def test_mid_stream_disconnect_recovers(self, runner):
        plan = FaultPlan(
            faults=(FaultSpec(kind=DISCONNECT, side="evaluator", frame=5),),
            seed=101,
        )
        verdict, _, _ = self.oracle_run(runner, plan)
        assert verdict.verdict == RECOVERED, verdict.detail

    def test_shed_recovers_after_backoff(self, runner):
        plan = FaultPlan(
            faults=(FaultSpec(kind=SHED, side="evaluator"),), seed=102
        )
        verdict, _, _ = self.oracle_run(runner, plan)
        assert verdict.verdict == RECOVERED, verdict.detail

    def test_late_cut_frame_is_tolerated_not_violated(self, runner):
        """A cut scheduled past the session's last frame never fires —
        that is 'tolerated', and must never be misread as recovery."""
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=DISCONNECT, side="evaluator", frame=10_000),
            ),
            seed=103,
        )
        verdict, _, _ = self.oracle_run(runner, plan)
        assert verdict.verdict in (TOLERATED, RECOVERED)
        assert verdict.verdict != VIOLATION

    def test_recovered_counter_lands_in_telemetry(self, runner):
        plan = FaultPlan(
            faults=(FaultSpec(kind=DISCONNECT, side="evaluator", frame=5),),
            seed=104,
        )
        self.oracle_run(runner, plan)
        assert runner.telemetry.counter("faults.recovered").value >= 1
        assert (
            runner.telemetry.counter(f"faults.injected.{DISCONNECT}").value
            >= 1
        )


class TestRecoveryChaosRun:
    def test_small_recovery_run_has_zero_violations(self):
        report = ChaosRunner(ChaosConfig(**RECOVERY_CONFIG)).run()
        assert report.ok, report.format()
        assert sum(report.counts.values()) == RECOVERY_CONFIG["sessions"]
        assert "profile=recovery" in report.format()

    def test_replay_reproduces_the_recorded_run(self, tmp_path):
        report = ChaosRunner(ChaosConfig(**RECOVERY_CONFIG)).run()
        log = tmp_path / "recovery.jsonl"
        report.write_log(log)
        replayed = ChaosRunner.replay(log)
        assert replayed.ok == report.ok
        assert len(replayed.verdicts) == len(report.verdicts)
        assert [v.plan for v in replayed.verdicts] == [
            v.plan for v in report.verdicts
        ]

    def test_replay_of_corrupt_log_fails_typed(self, tmp_path):
        log = tmp_path / "broken.jsonl"
        log.write_text('{"record": "session"\n')
        with pytest.raises(ConfigurationError, match="corrupt"):
            ChaosRunner.replay(log)

    def test_replay_without_header_fails_typed(self, tmp_path):
        log = tmp_path / "headless.jsonl"
        log.write_text('{"record": "session", "plan": {}}\n')
        with pytest.raises(ConfigurationError, match="chaos_header"):
            ChaosRunner.replay(log)

    def test_report_counts_include_recovered(self):
        report = ChaosReport(config=ChaosConfig(**RECOVERY_CONFIG))
        assert set(report.counts) == {TOLERATED, SURFACED, VIOLATION, RECOVERED}


@pytest.mark.slow
class TestRecoverySweep:
    """The acceptance sweep: seed-pinned, >= 20 sessions, all recovery
    kinds, zero violations, and the machinery demonstrably fired."""

    @pytest.mark.parametrize("seed", [7, 101, 4242])
    def test_twenty_session_recovery_sweep(self, seed):
        config = ChaosConfig(
            sessions=20, seed=seed, profile="recovery",
            recv_timeout_s=0.25, deadline_s=30.0,
        )
        report = ChaosRunner(config).run()
        assert report.counts[VIOLATION] == 0, report.format()
        assert report.counts[RECOVERED] >= 1, report.format()
        # determinism: the same seed reproduces the same verdict stream
        again = ChaosRunner(config).run()
        assert [v.verdict for v in again.verdicts] == [
            v.verdict for v in report.verdicts
        ]

    def test_sweep_replay_roundtrip(self, tmp_path):
        config = ChaosConfig(
            sessions=20, seed=7, profile="recovery",
            recv_timeout_s=0.25, deadline_s=30.0,
        )
        report = ChaosRunner(config).run()
        log = tmp_path / "sweep.jsonl"
        report.write_log(log)
        replayed = ChaosRunner.replay(log)
        assert replayed.counts[VIOLATION] == 0, replayed.format()
