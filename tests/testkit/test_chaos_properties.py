"""Property-based chaos: seeded random fault plans against the real
stack, classified by the conformance oracle.

The conformance property: every faulted session is *tolerated* (bit-
identical MAC result) or *surfaced* (typed error within the deadline).
Never a hang, never a silent wrong answer.

The fast smoke subset runs in tier-1; the broad sweeps are marked
``slow`` (run them with ``-m slow``; CI's chaos job drives the seeded
CLI suite instead).
"""

import pytest

from repro.testkit import (
    ChaosConfig,
    ChaosRunner,
    ConformanceOracle,
    FaultPlan,
    FaultSpec,
    SURFACED,
    TOLERATED,
    VIOLATION,
    derive_session_seed,
)
from repro.testkit.faults import CORRUPT, DELAY, DROP, DUPLICATE, STALL, TRUNCATE

SMOKE = ChaosConfig(sessions=6, seed=7, recv_timeout_s=0.2, deadline_s=15.0)


@pytest.fixture(scope="module")
def smoke_report():
    return ChaosRunner(SMOKE).run()


class TestChaosSmoke:
    """The tier-1 subset: small, seeded, still end-to-end."""

    def test_no_session_violates_the_contract(self, smoke_report):
        assert smoke_report.violations() == [], smoke_report.format()

    def test_verdict_counts_partition_the_sessions(self, smoke_report):
        c = smoke_report.counts
        assert c[TOLERATED] + c[SURFACED] + c[VIOLATION] == SMOKE.sessions

    def test_fault_counters_reach_telemetry(self, smoke_report):
        text = smoke_report.telemetry_text
        assert "faults.injected." in text
        assert "faults.tolerated" in text or "faults.surfaced" in text

    def test_replay_log_roundtrips(self, smoke_report, tmp_path):
        import json

        path = tmp_path / "replay.jsonl"
        smoke_report.write_log(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        header, sessions = lines[0], lines[1:]
        assert header["record"] == "chaos_header"
        assert header["seed"] == SMOKE.seed
        assert len(sessions) == SMOKE.sessions
        for rec in sessions:
            plan = FaultPlan.from_dict(rec["plan"])  # reconstructible
            assert plan == FaultPlan.random(
                derive_session_seed(SMOKE.seed, rec["session"]),
                recv_timeout_s=SMOKE.recv_timeout_s,
            )


class TestDeterminism:
    def test_same_seed_same_plans_and_workloads(self):
        a, b = ChaosRunner(SMOKE), ChaosRunner(SMOKE)
        for s in range(SMOKE.sessions):
            assert a.plan_for(s) == b.plan_for(s)
            assert a.workload_for(s) == b.workload_for(s)
            assert a.transport_for(s) == b.transport_for(s)

    def test_different_seeds_differ(self):
        a = ChaosRunner(ChaosConfig(sessions=8, seed=1))
        b = ChaosRunner(ChaosConfig(sessions=8, seed=2))
        assert [a.plan_for(s) for s in range(8)] != [b.plan_for(s) for s in range(8)]

    def test_same_seed_same_verdicts(self):
        """The acceptance property: rerunning the suite with one seed
        reproduces every plan, workload, and verdict bit-for-bit."""
        cfg = ChaosConfig(sessions=4, seed=11, recv_timeout_s=0.2)
        first = ChaosRunner(cfg).run()
        second = ChaosRunner(cfg).run()
        assert first.signature() == second.signature()


class TestOracleClassification:
    """Pinned plans whose verdicts are known by construction."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ChaosRunner(ChaosConfig(sessions=1, seed=3, recv_timeout_s=0.2))

    def test_clean_plan_is_tolerated(self, runner):
        v = runner.oracle.run_session(FaultPlan(), 0, [0.5, -0.25], "memory")
        assert v.verdict == TOLERATED
        assert v.attempts == 1

    def test_retryable_fault_is_tolerated_on_retry(self, runner):
        plan = FaultPlan(faults=(FaultSpec(kind=DROP, side="garbler", frame=2),))
        v = runner.oracle.run_session(plan, 1, [0.25, 0.5], "memory")
        assert v.verdict == TOLERATED
        assert v.attempts == 2
        assert v.injected  # the fault demonstrably fired

    def test_corrupt_surfaces_without_retry(self, runner):
        plan = FaultPlan(faults=(FaultSpec(kind=CORRUPT, side="garbler", frame=2),))
        v = runner.oracle.run_session(plan, 0, [0.5, 0.5], "memory")
        assert v.verdict == SURFACED
        assert v.attempts == 1
        assert v.error_type  # typed, named

    def test_stall_past_timeout_surfaces_then_retries_clean(self, runner):
        plan = FaultPlan(
            faults=(FaultSpec(kind=STALL, side="evaluator", frame=0, duration_s=0.8),)
        )
        v = runner.oracle.run_session(plan, 0, [0.0, 1.0], "memory")
        assert v.verdict == TOLERATED  # stall is retryable
        assert v.attempts == 2

    def test_fault_beyond_session_length_runs_clean(self, runner):
        plan = FaultPlan(faults=(FaultSpec(kind=DROP, side="evaluator", frame=400),))
        v = runner.oracle.run_session(plan, 0, [0.5, 0.25], "memory")
        assert v.verdict == TOLERATED
        assert v.attempts == 1
        assert v.injected == []  # never fired


@pytest.mark.slow
class TestChaosSweeps:
    """The broad sweeps: many seeds, every transport, every fault kind."""

    def test_fifty_sessions_conform(self):
        report = ChaosRunner(
            ChaosConfig(sessions=50, seed=7, recv_timeout_s=0.2)
        ).run()
        assert report.violations() == [], report.format()

    def test_every_endpoint_fault_kind_on_both_transports(self):
        runner = ChaosRunner(ChaosConfig(sessions=1, seed=5, recv_timeout_s=0.2))
        for transport in ("memory", "socket"):
            for kind in (DROP, CORRUPT, DUPLICATE, DELAY, TRUNCATE, STALL):
                duration = {DELAY: 0.005, STALL: 0.8}.get(kind, 0.0)
                for side in ("garbler", "evaluator"):
                    plan = FaultPlan(
                        faults=(
                            FaultSpec(
                                kind=kind, side=side, frame=1, duration_s=duration
                            ),
                        )
                    )
                    v = runner.oracle.run_session(plan, 0, [0.5, -0.5], transport)
                    assert v.verdict != VIOLATION, (transport, kind, side, v.detail)

    def test_alternate_seeds_conform(self):
        for seed in (0, 1, 99):
            report = ChaosRunner(
                ChaosConfig(sessions=10, seed=seed, recv_timeout_s=0.2)
            ).run()
            assert report.violations() == [], report.format()
