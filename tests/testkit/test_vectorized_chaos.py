"""The vectorized chaos tier: recovery + handoff oracles on the
stage-batched garbler.

The ``vectorized`` profile reruns the protocol-v3 resume machinery and
the fleet migration contract with ``garble_mode="vectorized"``: every
session must end with the bit-identical MAC result, zero re-garbled
rounds on handoff, and a verdict in {tolerated, recovered} — the same
invariants the sequential tiers pin, now proven against the vector
path the serving layer actually batches with.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.testkit import (
    RECOVERED,
    TOLERATED,
    ChaosConfig,
    ChaosRunner,
)


def _config(seed, sessions=4):
    return ChaosConfig(
        profile="vectorized",
        sessions=sessions,
        seed=seed,
        gateways=2,
        pool_size=0,
        deadline_s=30.0,
    )


class TestVectorizedConfig:
    def test_profile_requires_two_gateways(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            ChaosConfig(profile="vectorized", gateways=1).validate()

    def test_server_runs_the_vector_path(self):
        runner = ChaosRunner(_config(seed=7))
        assert runner.garble_mode == "vectorized"
        assert runner.server.garble_mode == "vectorized"
        # the sequential tiers are untouched
        assert ChaosRunner(ChaosConfig(sessions=2, seed=7)).garble_mode == (
            "sequential"
        )

    def test_plan_stream_alternates_recovery_and_handoff(self):
        """Even sessions exercise resume plans, odd sessions fleet
        handoffs — parity-stable so replays reconstruct the split."""
        runner = ChaosRunner(_config(seed=7, sessions=6))
        for s in range(6):
            plan = runner.plan_for(s)
            assert plan.is_handoff == (s % 2 == 1), (s, plan)

    def test_plan_draws_match_the_sequential_tiers(self):
        """Same seed, same session -> same fault plan as the dedicated
        recovery/handoff profiles: the vectorized tier is a pure
        garble-mode differential, not a new fault distribution."""
        vec = ChaosRunner(_config(seed=11, sessions=4))
        rec = ChaosRunner(
            ChaosConfig(profile="recovery", sessions=4, seed=11, pool_size=0)
        )
        hand = ChaosRunner(
            ChaosConfig(
                profile="handoff", sessions=4, seed=11, gateways=2, pool_size=0
            )
        )
        assert vec.plan_for(0) == rec.plan_for(0)
        assert vec.plan_for(2) == rec.plan_for(2)
        assert vec.plan_for(1) == hand.plan_for(1)
        assert vec.plan_for(3) == hand.plan_for(3)
        for s in range(4):
            assert vec.workload_for(s) == rec.workload_for(s)


class TestVectorizedTier:
    """The live tier on two pinned seeds (the acceptance pair)."""

    @pytest.fixture(scope="class", params=[7, 2026], ids=["seed7", "seed2026"])
    def report(self, request):
        return ChaosRunner(_config(seed=request.param)).run()

    def test_green_on_the_pinned_seed(self, report):
        assert report.ok, report.format()
        for v in report.verdicts:
            assert v.verdict in (TOLERATED, RECOVERED), report.format()

    def test_recovered_sessions_resumed_bit_identically(self, report):
        """Every fault that fired must have been healed by the resume or
        handoff machinery with the bit-identical answer — the oracle
        embeds the differential check in the verdict detail."""
        recovered = [v for v in report.verdicts if v.verdict == RECOVERED]
        for v in recovered:
            assert "bit-identical" in v.detail, v

    def test_log_header_records_the_garble_mode(self, report, tmp_path):
        log = tmp_path / "vectorized.jsonl"
        report.write_log(log)
        with open(log) as fh:
            header = json.loads(fh.readline())
        assert header["record"] == "chaos_header"
        assert header["profile"] == "vectorized"
        assert header["garble_mode"] == "vectorized"

    def test_replay_is_deterministic(self, report, tmp_path):
        log = tmp_path / "vectorized.jsonl"
        report.write_log(log)
        replayed = ChaosRunner.replay(log)
        assert replayed.ok, replayed.format()
        # attempts (signature()[5]) is retry count: a drained gateway's
        # failover can land first try or second depending on scheduling,
        # so compare every seed-stable field except it
        def stable(rep):
            return [v.signature()[:5] + v.signature()[6:] for v in rep.verdicts]

        assert stable(replayed) == stable(report), (
            "vectorized replay diverged from the original run"
        )
