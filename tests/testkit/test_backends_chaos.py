"""The backends chaos tier: recovery + handoff oracles on HE sessions.

The ``backends`` profile reruns the fault plans against sessions that
negotiate the ``he`` backend — checkpoint/resume must carry the
backend id, an adopting gateway must re-stream the stored result
ciphertext without recomputing, and shed/retry_after must be honoured
identically to GC.

One deliberate difference from the other tiers: an HE session is only
*two* post-handshake frames (the query ack and the result ciphertext),
so a cut at frame 2 races the query's completion — run-to-run the same
plan may land as TOLERATED (the result beat the cut) or RECOVERED (the
resume machinery healed it).  These tests therefore pin the
race-robust invariants — zero violations, bit-identical recoveries —
rather than exact verdict signatures.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.recover import SessionCheckpoint, checkpoint_from_he_result
from repro.testkit import (
    RECOVERED,
    SURFACED,
    TOLERATED,
    ChaosConfig,
    ChaosRunner,
)


def _config(seed, sessions=6):
    return ChaosConfig(
        profile="backends",
        sessions=sessions,
        seed=seed,
        gateways=2,
        pool_size=0,
        deadline_s=30.0,
    )


class TestBackendsConfig:
    def test_profile_requires_two_gateways(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            ChaosConfig(profile="backends", gateways=1).validate()

    def test_profile_selects_the_he_backend(self):
        assert ChaosRunner(_config(seed=7)).backend == "he"
        # every other profile keeps negotiating GC
        for profile, kw in (
            ("default", {}),
            ("recovery", {}),
            ("handoff", {"gateways": 2}),
            ("vectorized", {"gateways": 2}),
        ):
            cfg = ChaosConfig(profile=profile, sessions=2, seed=7, **kw)
            assert ChaosRunner(cfg).backend == "gc", profile

    def test_plan_stream_alternates_recovery_and_handoff(self):
        runner = ChaosRunner(_config(seed=7, sessions=6))
        for s in range(6):
            assert runner.plan_for(s).is_handoff == (s % 2 == 1)

    def test_cut_frames_fit_the_short_he_dialogue(self):
        """HE sessions are ~2 post-handshake frames; the profile draws
        cut frames low enough that faults actually fire mid-session."""
        runner = ChaosRunner(_config(seed=11, sessions=12))
        for s in range(12):
            for fault in runner.plan_for(s).faults:
                assert fault.frame <= 3, (s, fault)


class TestBackendsTier:
    """The live tier on a pinned seed (race-robust assertions only)."""

    @pytest.fixture(scope="class")
    def report(self):
        return ChaosRunner(_config(seed=11, sessions=8)).run()

    def test_green_on_the_pinned_seed(self, report):
        assert report.ok, report.format()
        for v in report.verdicts:
            assert v.verdict in (TOLERATED, RECOVERED, SURFACED), report.format()

    def test_recoveries_are_bit_identical_without_recompute(self, report):
        recovered = [v for v in report.verdicts if v.verdict == RECOVERED]
        assert recovered, "pinned seed produced no recovered session"
        for v in recovered:
            assert "bit-identical" in v.detail, v

    def test_log_header_records_the_backend(self, report, tmp_path):
        log = tmp_path / "backends.jsonl"
        report.write_log(log)
        with open(log) as fh:
            header = json.loads(fh.readline())
        assert header["record"] == "chaos_header"
        assert header["profile"] == "backends"
        assert header["backend"] == "he"

    def test_replay_stays_green(self, report, tmp_path):
        """Replay re-executes the same plans.  Cut-at-frame-2 kills race
        the 2-frame HE dialogue, so verdicts may legitimately flip
        between tolerated and recovered — replay must simply stay green
        with the same session count."""
        log = tmp_path / "backends.jsonl"
        report.write_log(log)
        replayed = ChaosRunner.replay(log)
        assert replayed.ok, replayed.format()
        assert len(replayed.verdicts) == len(report.verdicts)
        for v in replayed.verdicts:
            assert v.verdict in (TOLERATED, RECOVERED, SURFACED)


class TestHECheckpoints:
    def test_checkpoint_from_he_result_shape(self):
        cp = checkpoint_from_he_result(b"ct-bytes", "sess-1", 2,
                                       client_name="c1")
        assert cp.backend == "he"
        assert cp.rounds == 1
        assert cp.next_round == 0
        assert cp.materials[0].tables == b"ct-bytes"
        assert cp.ot_mode == "per_round"

    def test_backend_survives_the_store_round_trip(self):
        cp = checkpoint_from_he_result(b"ct", "sess-2", 0)
        back = SessionCheckpoint.from_dict(cp.to_dict())
        assert back.backend == "he"
        assert back.materials[0].tables == b"ct"

    def test_backend_defaults_to_gc_for_old_records(self):
        """Checkpoints written before the backend field existed must
        load as GC sessions."""
        cp = checkpoint_from_he_result(b"ct", "sess-3", 0)
        record = cp.to_dict()
        del record["backend"]
        assert SessionCheckpoint.from_dict(record).backend == "gc"
