"""The FaultPlan DSL: validation, determinism, serialisation."""

import pytest

from repro.errors import ConfigurationError
from repro.testkit import (
    ALL_FAULT_KINDS,
    ENDPOINT_FAULT_KINDS,
    ENVIRONMENT_FAULT_KINDS,
    HANDOFF_FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    RECOVERY_FAULT_KINDS,
    TENANT_FAULT_KINDS,
    RETRYABLE_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.testkit.faults import ABORT_HANDSHAKE, CORRUPT, DELAY, DROP, STALL


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="gremlin")

    def test_rejects_unknown_side(self):
        with pytest.raises(ConfigurationError, match="side"):
            FaultSpec(kind=DROP, side="adversary")

    def test_rejects_negative_parameters(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=DROP, frame=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind=DELAY, duration_s=-0.5)

    def test_taxonomy_is_complete_and_disjoint(self):
        families = (
            set(ENDPOINT_FAULT_KINDS),
            set(ENVIRONMENT_FAULT_KINDS),
            set(RECOVERY_FAULT_KINDS),
            set(HANDOFF_FAULT_KINDS),
            set(TENANT_FAULT_KINDS),
            set(PROCESS_FAULT_KINDS),
        )
        assert set().union(*families) == set(ALL_FAULT_KINDS)
        for i, a in enumerate(families):
            for b in families[i + 1 :]:
                assert not a & b
        # every retryable kind is a real kind
        assert RETRYABLE_KINDS <= set(ALL_FAULT_KINDS)
        # corruption is deliberately not retryable: an untrusted channel
        # must not be silently retried into a "success"
        assert CORRUPT not in RETRYABLE_KINDS
        assert ABORT_HANDSHAKE not in RETRYABLE_KINDS

    def test_roundtrips_through_dict(self):
        spec = FaultSpec(kind=STALL, side="evaluator", frame=3, duration_s=1.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_retryable_requires_every_fault_retryable(self):
        good = FaultPlan(faults=(FaultSpec(kind=DROP), FaultSpec(kind=DELAY)))
        mixed = FaultPlan(faults=(FaultSpec(kind=DROP), FaultSpec(kind=CORRUPT)))
        assert good.retryable
        assert not mixed.retryable
        assert not FaultPlan().retryable  # an empty plan has nothing to retry

    def test_endpoint_faults_filter_by_side(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=DROP, side="garbler", frame=1),
                FaultSpec(kind=STALL, side="evaluator", frame=2, duration_s=1.0),
                FaultSpec(kind=ABORT_HANDSHAKE),
            )
        )
        assert [f.kind for f in plan.endpoint_faults("garbler")] == [DROP]
        assert [f.kind for f in plan.endpoint_faults("evaluator")] == [STALL]
        assert plan.is_environment

    def test_random_is_deterministic_per_seed(self):
        plans_a = [FaultPlan.random(seed) for seed in range(50)]
        plans_b = [FaultPlan.random(seed) for seed in range(50)]
        assert plans_a == plans_b
        # and the seed actually varies the plans
        assert len({p.describe() for p in plans_a}) > 5

    def test_random_covers_both_fault_families(self):
        kinds = set()
        for seed in range(200):
            kinds.update(FaultPlan.random(seed).kinds)
        assert kinds & set(ENDPOINT_FAULT_KINDS)
        assert kinds & set(ENVIRONMENT_FAULT_KINDS)

    def test_random_durations_respect_the_timeout_contract(self):
        """Delays stay well under the recv timeout, stalls well past it —
        this is what makes chaos verdicts deterministic."""
        timeout = 0.25
        for seed in range(300):
            for spec in FaultPlan.random(seed, recv_timeout_s=timeout).faults:
                if spec.kind == DELAY:
                    assert 0 < spec.duration_s < timeout / 2
                elif spec.kind == STALL:
                    assert spec.duration_s > 2 * timeout

    def test_json_roundtrip_preserves_the_plan(self):
        for seed in range(40):
            plan = FaultPlan.random(seed)
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_describe_is_stable(self):
        plan = FaultPlan(
            faults=(FaultSpec(kind=DELAY, side="garbler", frame=2, duration_s=0.01),)
        )
        assert plan.describe() == "delay(garbler@2, 0.01s)"
        assert FaultPlan().describe() == "clean"
