"""The ``slo`` chaos tier: faults against a mid-adaptation controller.

The oracle warms each recovery gateway's SLO controller to a
non-default operating point (two synthetic overload ticks shrink the
adoption batch), then fires the planned fault.  The tier's three
invariants ride on top of the standard recovery oracle:

* recovered MACs are bit-identical and re-garble zero new circuits;
* the adaptive ``retry_after`` hint round-trips through shed answers;
* the drained gateway's operating point is inherited *intact* by the
  successor (checkpointed under ``controller.operating_point`` in the
  shared session store) — losing it silently would reset the fleet to
  cold-start knobs exactly when it is busiest.

Plan generation gets its own determinism pins: ``random_slo`` is a
separate seeded stream so the older profiles' pinned seed → plan
mappings can never remap.
"""

import json

import pytest

from repro.testkit import (
    RECOVERED,
    SURFACED,
    TOLERATED,
    ChaosConfig,
    ChaosRunner,
    FaultPlan,
    derive_session_seed,
)
from repro.testkit.faults import DISCONNECT, SHED, STALL


def _config(seed, sessions=6):
    return ChaosConfig(
        profile="slo",
        sessions=sessions,
        seed=seed,
        pool_size=0,
        deadline_s=30.0,
    )


class TestSloProfileConfig:
    def test_profile_validates_on_a_single_gateway(self):
        """Unlike handoff/fleet tiers, slo recovery drains onto a
        successor over the shared store — one gateway is enough."""
        ChaosConfig(profile="slo", sessions=2, seed=7, gateways=1).validate()

    def test_profile_selects_the_slo_controller(self):
        assert ChaosRunner(_config(seed=7)).controller == "slo"
        for profile, kw in (
            ("default", {}),
            ("recovery", {}),
            ("handoff", {"gateways": 2}),
        ):
            cfg = ChaosConfig(profile=profile, sessions=2, seed=7, **kw)
            assert ChaosRunner(cfg).controller == "static", profile

    def test_plan_stream_is_deterministic(self):
        runner_a = ChaosRunner(_config(seed=13, sessions=8))
        runner_b = ChaosRunner(_config(seed=13, sessions=8))
        for s in range(8):
            assert runner_a.plan_for(s) == runner_b.plan_for(s)

    def test_plans_come_from_the_slo_generator(self):
        runner = ChaosRunner(_config(seed=13, sessions=8))
        for s in range(8):
            expected = FaultPlan.random_slo(
                derive_session_seed(13, s),
                recv_timeout_s=runner.config.recv_timeout_s,
            )
            assert runner.plan_for(s) == expected

    def test_generator_draws_only_recovery_class_faults(self):
        kinds = set()
        for seed in range(64):
            plan = FaultPlan.random_slo(seed)
            for fault in plan.faults:
                kinds.add(fault.kind)
                if fault.kind == DISCONNECT:
                    assert fault.side == "evaluator"
                    assert 1 <= fault.frame <= 24
        assert kinds == {DISCONNECT, SHED, STALL}

    def test_stream_is_independent_of_the_recovery_profile(self):
        """Same seed, different profile generator: the slo stream must
        not be a relabelling of ``random_recovery`` (otherwise pinning
        one would silently pin the other)."""
        slo = [FaultPlan.random_slo(seed).faults for seed in range(32)]
        rec = [FaultPlan.random_recovery(seed).faults for seed in range(32)]
        assert slo != rec


class TestSloTier:
    """The live tier on a pinned seed."""

    @pytest.fixture(scope="class")
    def run(self):
        runner = ChaosRunner(_config(seed=7, sessions=6))
        return runner, runner.run()

    @pytest.fixture(scope="class")
    def report(self, run):
        return run[1]

    def test_green_on_the_pinned_seed(self, report):
        assert report.ok, report.format()
        for v in report.verdicts:
            assert v.verdict in (TOLERATED, RECOVERED, SURFACED), report.format()

    def test_recoveries_kept_the_operating_point(self, report):
        recovered = [v for v in report.verdicts if v.verdict == RECOVERED]
        assert recovered, "pinned seed produced no recovered session"
        for v in recovered:
            assert "operating point survived the drain" in v.detail, v

    def test_adaptation_actually_happened(self, run):
        """The tier is only meaningful if the controller moved before
        the faults hit: the warm-up ticks must show up in telemetry."""
        runner, report = run
        counters = runner.telemetry.snapshot()["counters"]
        # stall plans route to the in-memory oracle; every gateway-run
        # session warms its controller with two overload ticks first
        assert counters["controller.ticks"] >= 2
        assert counters["controller.batch_shrink"] >= 2
        assert counters["controller.restored"] >= 1

    def test_log_header_records_the_controller(self, report, tmp_path):
        log = tmp_path / "slo.jsonl"
        report.write_log(log)
        with open(log) as fh:
            header = json.loads(fh.readline())
        assert header["record"] == "chaos_header"
        assert header["profile"] == "slo"
        assert header["controller"] == "slo"

    def test_replay_stays_green(self, report, tmp_path):
        log = tmp_path / "slo.jsonl"
        report.write_log(log)
        replayed = ChaosRunner.replay(log)
        assert replayed.ok, replayed.format()
        assert len(replayed.verdicts) == len(report.verdicts)
