"""The handoff chaos tier: seeded gateway kills/drains under the oracle.

The migration conformance contract: any single gateway kill or drain
mid-stream ends with the bit-identical MAC result served by a peer,
zero re-garbled rounds, and a verdict in {tolerated, recovered} —
never a hang, never a silent wrong answer, never a double garble.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.testkit import (
    DRAIN_GATEWAY,
    HANDOFF_FAULT_KINDS,
    KILL_GATEWAY,
    RECOVERED,
    TOLERATED,
    ChaosConfig,
    ChaosRunner,
    FaultPlan,
)


class TestHandoffPlans:
    def test_generator_is_deterministic(self):
        a = FaultPlan.random_handoff(1234, n_gateways=3)
        b = FaultPlan.random_handoff(1234, n_gateways=3)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_plans_stay_inside_the_fleet(self):
        for seed in range(60):
            plan = FaultPlan.random_handoff(seed, n_gateways=3)
            assert plan.is_handoff
            (spec,) = plan.faults
            assert spec.kind in HANDOFF_FAULT_KINDS
            assert 0 <= spec.gateway < 3
            assert spec.frame >= 1

    def test_kills_outnumber_drains(self):
        kinds = [
            FaultPlan.random_handoff(s, n_gateways=3).faults[0].kind
            for s in range(120)
        ]
        assert kinds.count(KILL_GATEWAY) > kinds.count(DRAIN_GATEWAY) > 0

    def test_single_gateway_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            FaultPlan.random_handoff(1, n_gateways=1)

    def test_plan_dict_roundtrip_keeps_the_gateway(self):
        plan = FaultPlan.random_handoff(99, n_gateways=3)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.faults[0].gateway == plan.faults[0].gateway

    def test_old_logs_without_gateway_field_still_load(self):
        raw = {"kind": "disconnect", "side": "evaluator", "frame": 3}
        from repro.testkit import FaultSpec

        spec = FaultSpec.from_dict(raw)
        assert spec.gateway == 0


class TestHandoffConfig:
    def test_profile_requires_two_gateways(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            ChaosConfig(profile="handoff", gateways=1).validate()

    def test_ot_mode_draw_is_deterministic_and_profile_gated(self):
        handoff = ChaosRunner(
            ChaosConfig(profile="handoff", sessions=30, seed=7, pool_size=0)
        )
        modes = [handoff.ot_mode_for(s) for s in range(30)]
        assert modes == [handoff.ot_mode_for(s) for s in range(30)]
        # the profile mixes both label-transfer schedules
        assert "upfront" in modes and "per_round" in modes
        # other profiles stay per_round: their fingerprints are pinned
        default = ChaosRunner(ChaosConfig(sessions=5, seed=7))
        assert all(default.ot_mode_for(s) == "per_round" for s in range(30))

    def test_ot_mode_draw_leaves_plan_and_workload_streams_alone(self):
        """The OT-mode salt is a third independent stream: handoff runs
        must not remap the pinned plan/workload draws."""
        cfg = ChaosConfig(profile="handoff", sessions=4, seed=11)
        runner = ChaosRunner(cfg)
        recovery = ChaosRunner(
            ChaosConfig(profile="recovery", sessions=4, seed=11)
        )
        for s in range(4):
            assert runner.workload_for(s) == recovery.workload_for(s)


class TestHandoffTier:
    """The live tier: a 3-gateway fleet under seeded kills and drains."""

    @pytest.fixture(scope="class")
    def report(self):
        config = ChaosConfig(
            profile="handoff",
            sessions=5,
            seed=2026,
            gateways=3,
            pool_size=0,
            deadline_s=30.0,
        )
        return ChaosRunner(config).run()

    def test_no_session_violates_the_migration_contract(self, report):
        assert report.ok, report.format()
        for v in report.verdicts:
            assert v.verdict in (TOLERATED, RECOVERED), report.format()

    def test_fired_faults_recover_and_carry_the_gateway_id(self, report):
        recovered = [v for v in report.verdicts if v.verdict == RECOVERED]
        assert recovered, "no handoff fault fired in the whole tier"
        for v in recovered:
            assert "bit-identical" in v.detail

    def test_replay_log_roundtrip_is_deterministic(self, report, tmp_path):
        """Satellite: handoff replay logs carry the fleet shape (gateway
        per fault, gateways in the header) and replay to the same
        verdict signature."""
        log = tmp_path / "handoff.jsonl"
        report.write_log(log)
        records = [json.loads(l) for l in open(log)]
        header = records[0]
        assert header["record"] == "chaos_header"
        assert header["profile"] == "handoff"
        assert header["gateways"] == 3
        body = records[1:]
        assert all("gateway" in r["plan"]["faults"][0] for r in body)
        assert all("gateway_id" in r for r in body)
        replayed = ChaosRunner.replay(log)
        assert replayed.config.gateways == 3
        assert replayed.signature() == report.signature(), (
            "handoff replay diverged from the original run"
        )
