"""The tenant-isolation chaos tier: one tenant's pathology must stay
its own problem.

The ``tenants`` profile draws poison / stall / disconnect faults against
a victim tenant on a ring-scheduled, vectorized serving layer.  The
oracle then proves the multi-tenant contract: every bystander tenant's
query returns the bit-identical MAC result within the deadline, the
victim's own fate is typed, no worker dies, and the credit ledger still
balances.
"""

import json

import pytest

from repro.testkit import (
    PROFILES,
    TENANT_FAULT_KINDS,
    TOLERATED,
    ChaosConfig,
    ChaosRunner,
    FaultPlan,
)


def _config(seed, sessions=6):
    return ChaosConfig(
        profile="tenants",
        sessions=sessions,
        seed=seed,
        pool_size=0,
        deadline_s=30.0,
    )


class TestTenantsProfile:
    def test_profile_is_registered(self):
        assert "tenants" in PROFILES

    def test_runner_uses_the_vectorized_path(self):
        """Cross-tenant batching only exists on the vector garbler, so
        that is the path the isolation tier must stress."""
        runner = ChaosRunner(_config(seed=7))
        assert runner.garble_mode == "vectorized"
        assert runner.server.garble_mode == "vectorized"

    def test_every_plan_is_a_tenant_plan(self):
        runner = ChaosRunner(_config(seed=7, sessions=12))
        for s in range(12):
            plan = runner.plan_for(s)
            assert plan.is_tenant, (s, plan)
            assert all(f.kind in TENANT_FAULT_KINDS for f in plan.faults)

    def test_plans_are_seed_deterministic(self):
        a = ChaosRunner(_config(seed=11, sessions=8))
        b = ChaosRunner(_config(seed=11, sessions=8))
        assert [a.plan_for(s) for s in range(8)] == [
            b.plan_for(s) for s in range(8)
        ]

    def test_the_seed_covers_every_fault_kind(self):
        """Both CI seeds must actually exercise all three pathologies —
        a profile that only ever draws poison proves nothing about
        stalls or disconnects."""
        for seed in (7, 2026):
            runner = ChaosRunner(_config(seed=seed, sessions=12))
            kinds = {
                f.kind for s in range(12) for f in runner.plan_for(s).faults
            }
            assert kinds == set(TENANT_FAULT_KINDS), (seed, kinds)

    def test_tenant_plans_serialize_roundtrip(self):
        plan = ChaosRunner(_config(seed=7)).plan_for(0)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert "t" in plan.describe()


class TestTenantIsolationTier:
    """The live tier on the two pinned CI seeds."""

    @pytest.fixture(scope="class", params=[7, 2026], ids=["seed7", "seed2026"])
    def report(self, request):
        return ChaosRunner(_config(seed=request.param)).run()

    def test_zero_violations_on_the_pinned_seed(self, report):
        assert report.ok, report.format()
        for v in report.verdicts:
            assert v.verdict == TOLERATED, report.format()

    def test_bystanders_stayed_bit_identical(self, report):
        for v in report.verdicts:
            assert "bit-identical" in v.detail, v

    def test_log_header_records_the_profile(self, report, tmp_path):
        log = tmp_path / "tenants.jsonl"
        report.write_log(log)
        with open(log) as fh:
            header = json.loads(fh.readline())
        assert header["record"] == "chaos_header"
        assert header["profile"] == "tenants"
        assert header["garble_mode"] == "vectorized"

    def test_replay_is_deterministic(self, report, tmp_path):
        log = tmp_path / "tenants.jsonl"
        report.write_log(log)
        replayed = ChaosRunner.replay(log)
        assert replayed.ok, replayed.format()

        def stable(rep):
            return [v.signature() for v in rep.verdicts]

        assert stable(replayed) == stable(report), (
            "tenants replay diverged from the original run"
        )
