"""FaultyEndpoint: every wire fault lands as a typed error, on both
transports, and never mutates what a fault-free frame carries."""

import time

import pytest

from repro.errors import GCProtocolError, IntegrityError
from repro.gc.channel import INTEGRITY_TRAILER_BYTES
from repro.telemetry import MetricsRegistry
from repro.testkit import TRANSPORTS, FaultPlan, FaultSpec, faulty_pair
from repro.testkit.faults import CORRUPT, DELAY, DROP, DUPLICATE, STALL, TRUNCATE


def _pair(plan, transport, **kw):
    kw.setdefault("recv_timeout_s", 0.2)
    return faulty_pair(plan, transport, **kw)


def _close(*endpoints):
    for ep in endpoints:
        ep.close()


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestEndpointFaults:
    def test_clean_plan_is_transparent(self, transport):
        g, e = _pair(FaultPlan(), transport)
        try:
            g.send("t.ping", b"payload-bytes")
            assert e.recv("t.ping") == b"payload-bytes"
            e.send("t.pong", b"reply")
            assert g.recv("t.pong") == b"reply"
            assert g.injected == [] and e.injected == []
        finally:
            _close(g, e)

    def test_drop_times_out_typed(self, transport):
        plan = FaultPlan(faults=(FaultSpec(kind=DROP, side="garbler", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.lost", b"never arrives")
            with pytest.raises(GCProtocolError, match="(?i)tim"):
                e.recv("t.lost", timeout=0.1)
            assert g.injected == [(DROP, 0, "t.lost")]
        finally:
            _close(g, e)

    def test_corrupt_raises_integrity_error(self, transport):
        plan = FaultPlan(faults=(FaultSpec(kind=CORRUPT, side="garbler", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.data", b"A" * 64)
            with pytest.raises(IntegrityError, match="integrity"):
                e.recv("t.data")
        finally:
            _close(g, e)

    def test_truncate_raises_integrity_error(self, transport):
        plan = FaultPlan(faults=(FaultSpec(kind=TRUNCATE, side="garbler", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.data", b"B" * 64)
            with pytest.raises(IntegrityError):
                e.recv("t.data")
        finally:
            _close(g, e)

    def test_truncate_below_trailer_size_is_still_typed(self, transport):
        # a 0-byte payload truncates to less than the trailer itself
        plan = FaultPlan(faults=(FaultSpec(kind=TRUNCATE, side="garbler", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.tiny", b"")
            assert INTEGRITY_TRAILER_BYTES // 2 < INTEGRITY_TRAILER_BYTES
            with pytest.raises(IntegrityError, match="too short"):
                e.recv("t.tiny")
        finally:
            _close(g, e)

    def test_duplicate_is_caught_by_the_sequence_check(self, transport):
        """The replayed frame is byte-identical, so only the sequence
        number mixed into the trailer can catch it — this exact fault
        silently desynchronised the OT key schedule before hardening."""
        plan = FaultPlan(faults=(FaultSpec(kind=DUPLICATE, side="garbler", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.first", b"once")
            assert e.recv("t.first") == b"once"  # the original is fine
            with pytest.raises(IntegrityError, match="out of order"):
                e.recv("t.first")  # the replay is not
        finally:
            _close(g, e)

    def test_delay_preserves_content(self, transport):
        plan = FaultPlan(
            faults=(FaultSpec(kind=DELAY, side="garbler", frame=0, duration_s=0.05),)
        )
        g, e = _pair(plan, transport)
        try:
            t0 = time.perf_counter()
            g.send("t.slow", b"late but intact")
            assert time.perf_counter() - t0 >= 0.05
            assert e.recv("t.slow") == b"late but intact"
        finally:
            _close(g, e)

    def test_faults_target_their_frame_only(self, transport):
        plan = FaultPlan(faults=(FaultSpec(kind=CORRUPT, side="garbler", frame=1),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.a", b"frame zero")
            g.send("t.b", b"frame one")
            assert e.recv("t.a") == b"frame zero"
            with pytest.raises(IntegrityError):
                e.recv("t.b")
        finally:
            _close(g, e)

    def test_sides_are_independent(self, transport):
        plan = FaultPlan(faults=(FaultSpec(kind=DROP, side="evaluator", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.fine", b"garbler unaffected")
            assert e.recv("t.fine") == b"garbler unaffected"
            e.send("t.gone", b"dropped")
            with pytest.raises(GCProtocolError):
                g.recv("t.gone", timeout=0.1)
        finally:
            _close(g, e)

    def test_each_fault_fires_once(self, transport):
        plan = FaultPlan(faults=(FaultSpec(kind=DROP, side="garbler", frame=0),))
        g, e = _pair(plan, transport)
        try:
            g.send("t.x", b"eaten")
            with pytest.raises(GCProtocolError):
                e.recv("t.x", timeout=0.1)
        finally:
            _close(g, e)
        # a fresh pair from the same plan arms the fault again
        g2, e2 = _pair(plan, transport)
        try:
            g2.send("t.x", b"eaten again")
            with pytest.raises(GCProtocolError):
                e2.recv("t.x", timeout=0.1)
        finally:
            _close(g2, e2)

    def test_injection_telemetry(self, transport):
        tm = MetricsRegistry()
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=DROP, side="garbler", frame=0),
                FaultSpec(kind=STALL, side="evaluator", frame=0, duration_s=0.01),
            )
        )
        g, e = _pair(plan, transport, telemetry=tm)
        try:
            g.send("t.a", b"x")
            e.send("t.b", b"y")
            counters = tm.snapshot()["counters"]
            assert counters[f"faults.injected.{DROP}"] == 1
            assert counters[f"faults.injected.{STALL}"] == 1
        finally:
            _close(g, e)


def test_unknown_transport_is_rejected():
    with pytest.raises(ValueError, match="transport"):
        faulty_pair(FaultPlan(), transport="carrier-pigeon")
