"""The process chaos tier: seeded SIGKILL/SIGTERM/TCP-cut faults
against a fleet of real gateway subprocesses sharing one store file.

The cross-process conformance contract: any single process fault
mid-stream ends with the bit-identical MAC result, zero re-garbled
rounds (proved by the per-process counters over the results pipes),
and a balanced lease ledger in the shared file after recovery — never
a hang, never a silent wrong answer, never a double garble.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.testkit import (
    DISCONNECT_PROCESS,
    KILL_PROCESS,
    PROCESS_FAULT_KINDS,
    RECOVERED,
    TERM_PROCESS,
    TOLERATED,
    ChaosConfig,
    ChaosRunner,
    FaultPlan,
)


class TestProcessPlans:
    def test_generator_is_deterministic(self):
        a = FaultPlan.random_processes(1234, n_members=3)
        b = FaultPlan.random_processes(1234, n_members=3)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_plans_stay_inside_the_fleet_and_commit_range(self):
        for seed in range(60):
            plan = FaultPlan.random_processes(
                seed, n_members=3, max_commit_round=5
            )
            assert plan.is_process
            (spec,) = plan.faults
            assert spec.kind in PROCESS_FAULT_KINDS
            assert 0 <= spec.gateway < 3
            # the trigger is a committed round, strictly mid-stream
            assert 1 <= spec.frame <= 5

    def test_kills_outnumber_the_cooperative_kinds(self):
        kinds = [
            FaultPlan.random_processes(s, n_members=3).faults[0].kind
            for s in range(120)
        ]
        assert kinds.count(KILL_PROCESS) > kinds.count(TERM_PROCESS) > 0
        assert kinds.count(DISCONNECT_PROCESS) > 0

    def test_single_member_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            FaultPlan.random_processes(1, n_members=1)

    def test_plan_dict_roundtrip_keeps_the_member(self):
        plan = FaultPlan.random_processes(99, n_members=3)
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert rebuilt.faults[0].gateway == plan.faults[0].gateway


class TestProcessConfig:
    def test_profile_requires_two_gateways(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            ChaosConfig(profile="processes", gateways=1).validate()

    def test_commit_triggers_stay_below_the_round_count(self):
        """A trigger at the final round would race the victim's own
        completion (result sent, BYE not yet written) instead of firing
        mid-stream — the plan stream must cap at rounds - 1."""
        runner = ChaosRunner(
            ChaosConfig(profile="processes", sessions=40, seed=7, rounds=6)
        )
        for s in range(40):
            (spec,) = runner.plan_for(s).faults
            assert 1 <= spec.frame <= 5

    def test_ot_mode_stays_per_round(self):
        runner = ChaosRunner(
            ChaosConfig(profile="processes", sessions=10, seed=7)
        )
        assert all(runner.ot_mode_for(s) == "per_round" for s in range(10))


class TestProcessTier:
    """The live tier: a 2-member subprocess fleet under seeded faults."""

    @pytest.fixture(scope="class")
    def report(self):
        config = ChaosConfig(
            profile="processes",
            sessions=4,
            seed=7,
            gateways=2,
            rounds=6,
            pool_size=0,
            deadline_s=30.0,
        )
        return ChaosRunner(config).run()

    def test_no_session_violates_the_cross_process_contract(self, report):
        assert report.ok, report.format()
        for v in report.verdicts:
            assert v.verdict in (TOLERATED, RECOVERED), report.format()

    def test_fired_faults_recover_through_the_shared_store(self, report):
        recovered = [v for v in report.verdicts if v.verdict == RECOVERED]
        assert recovered, "no process fault fired in the whole tier"
        for v in recovered:
            assert "bit-identical" in v.detail
            assert "ledger balanced" in v.detail

    def test_real_kills_happened(self, report):
        """Seed 7's first sessions include SIGKILLs — the tier must have
        exercised the crash surface, not just the graceful ones."""
        kinds = {
            FaultPlan.from_dict(v.plan).faults[0].kind
            for v in report.verdicts
        }
        assert KILL_PROCESS in kinds

    def test_replay_log_reruns_green(self, report, tmp_path):
        """Process replay logs carry the member per fault and the round
        count, and re-execute to the same verdicts.  (The full signature
        is not compared: resume attempt counts across real processes are
        timing-dependent; the verdict and plan stream are not.)"""
        log = tmp_path / "processes.jsonl"
        report.write_log(log)
        records = [json.loads(l) for l in open(log)]
        header = records[0]
        assert header["profile"] == "processes"
        assert header["rounds"] == 6
        body = records[1:]
        assert all("gateway" in r["plan"]["faults"][0] for r in body)
        replayed = ChaosRunner.replay(log)
        assert replayed.ok, replayed.format()
        assert [v.verdict for v in replayed.verdicts] == [
            v.verdict for v in report.verdicts
        ]
        assert [
            FaultPlan.from_dict(v.plan).describe() for v in replayed.verdicts
        ] == [FaultPlan.from_dict(v.plan).describe() for v in report.verdicts]
