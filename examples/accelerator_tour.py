"""A tour of the MAXelerator internals: schedule, stream, and models.

Walks through what the cycle-accurate simulation exposes: the FSM
schedule and its utilisation, the garbled-table stream, the label
generator's power gating, the PCIe analysis, the resource model
(Table 1) and the cross-framework comparison (Table 2).

    python examples/accelerator_tour.py
"""

from repro import MAXelerator, ResourceModel, Table2
from repro.accel.report import gantt


def main() -> None:
    acc = MAXelerator(bitwidth=8, seed=3)
    print(f"MAXelerator b={acc.bitwidth}: {acc.n_cores} GC cores "
          f"({acc.circuit.n_seg1_cores} MUX_ADD + {acc.circuit.n_seg2_cores} TREE), "
          f"accumulator {acc.acc_width} bits")

    schedule = acc.schedule(n_rounds=5)
    print("\nFSM schedule (5 MAC rounds):")
    print(f"  steady-state cycles/MAC: {schedule.steady_state_cycles_per_mac} "
          f"(paper: {acc.timing.cycles_per_mac})")
    print(f"  pipeline latency: {schedule.pipeline_latency_cycles} cycles "
          f"= {schedule.pipeline_latency_cycles / 3:.1f} stages "
          "(paper: b + log2(b) + 2 = 13 stages)")
    print(f"  engine utilisation: {schedule.utilization():.1%}, "
          f"idle cores: {schedule.idle_cores()} (paper bound: 2)")

    print("\n" + gantt(schedule, width=60))

    run = acc.garble(n_rounds=5)
    print(f"\ngarbled stream: {run.total_tables} tables over {run.total_cycles} "
          f"cycles = {32 * run.total_tables} bytes")
    print(f"label generator: {run.label_stats.cells} RO-RNG cells, "
          f"{run.label_stats.gated_fraction:.0%} power-gated on average")

    rep = acc.transfer_report(run)
    print(f"PCIe: needs {rep.required_bandwidth_mb_per_s:.0f} MB/s sustained; "
          f"at {acc.pcie_mb_per_s:.0f} MB/s the link is "
          f"{'the bottleneck' if rep.pcie_is_bottleneck else 'sufficient'}")

    print("\n" + ResourceModel().model_report())
    print("\n" + Table2.build().format())


if __name__ == "__main__":
    main()
