"""Private neural-network inference (the paper's deep-learning motivation).

A 2-layer MLP owned by the server scores a client-held input.  Layer
products run through the garbled MAC; the convolution demo shows the
im2col lowering that turns a conv layer into the same MAC workload.

    python examples/private_inference.py
"""

import numpy as np

from repro import PrivateMLP, Q16_8
from repro.apps.deep import MLPLayer, im2col, private_relu


def mlp_demo() -> None:
    rng = np.random.default_rng(1)
    layers = [
        MLPLayer(rng.uniform(-0.5, 0.5, size=(4, 6))),
        MLPLayer(rng.uniform(-0.5, 0.5, size=(2, 4)), relu=False),
    ]
    mlp = PrivateMLP(layers, Q16_8)
    x = rng.uniform(-1, 1, size=6)

    scores = mlp.infer(x)
    print("private MLP scores:  ", np.round(scores, 4))
    print("plaintext reference: ", np.round(mlp.expected(x), 4))
    print(f"MACs executed through GC: {mlp.macs_executed}")
    est = mlp.inference_time_estimate_s()
    print(
        f"32-bit inference estimate: MAXelerator {est['maxelerator'] * 1e6:.1f} us, "
        f"TinyGarble {est['tinygarble'] * 1e3:.2f} ms"
    )


def garbled_relu_demo() -> None:
    values = np.array([0.75, -1.5, 2.25, -0.25])
    print("\ngarbled ReLU over", values, "->", private_relu(values, Q16_8))


def classification_demo() -> None:
    from repro.apps.deep import private_classify
    from repro.fixedpoint import Q8_4

    weights = np.array([[0.5, -1.0], [1.5, 0.25], [-0.75, 2.0]])
    x = np.array([1.0, 1.5])
    idx = private_classify(weights, x, Q8_4)
    print(
        f"\nprivate classification: class {idx} "
        f"(plaintext argmax: {int(np.argmax(weights @ x))}) — "
        "the scores never leave the garbled circuit"
    )


def conv_demo() -> None:
    image = np.arange(16, dtype=float).reshape(4, 4) / 16.0
    kernel = np.array([[1.0, 0.0], [0.0, -1.0]])
    cols = im2col(image, 2)
    print(
        f"\nconv 4x4 * 2x2 lowered to matmul: {cols.shape[0]} output positions "
        f"x {cols.shape[1]} MACs each = {cols.size} MACs"
    )
    print("conv output:", np.round(cols @ kernel.ravel(), 3))


if __name__ == "__main__":
    mlp_demo()
    garbled_relu_demo()
    classification_demo()
    conv_demo()
