"""Private genome analysis (the paper's medical-research motivation).

A research institute holds reference genomes and polygenic risk
weights; a patient holds their genotype.  Similarity and risk scores
are computed without either side revealing its data.

    python examples/genome_similarity.py
"""

import numpy as np

from repro.apps.genome import (
    PrivateGenomeAnalysis,
    random_dosages,
    random_snp_vector,
)
from repro.fixedpoint import Q16_8


def main() -> None:
    n_sites = 12
    reference = random_snp_vector(n_sites, seed=8)
    patient = reference.copy()
    flips = np.random.default_rng(9).choice(n_sites, size=3, replace=False)
    patient[flips] *= -1

    analysis = PrivateGenomeAnalysis(Q16_8, seed=8)
    result = analysis.similarity(reference, patient)
    print(f"SNP panel of {n_sites} sites; 3 mismatches planted")
    print(f"  privately computed matches: {result.matching_sites}/{n_sites} "
          f"(similarity {result.similarity:.2%})")

    weights = np.round(np.random.default_rng(10).uniform(-1, 1, size=n_sites), 2)
    dosages = random_dosages(n_sites, seed=11)
    score = analysis.risk_score(weights, dosages)
    print(f"  privately computed polygenic risk score: {score:+.3f} "
          f"(plaintext {weights @ dosages:+.3f})")
    print(f"  garbled MACs executed: {analysis.macs_executed}")

    est = PrivateGenomeAnalysis.panel_time_estimate_s(100_000)
    print("\nprojection to a 100k-SNP panel (32-bit):")
    print(f"  TinyGarble:  {est['tinygarble']:.0f} s")
    print(f"  MAXelerator: {est['maxelerator'] * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
