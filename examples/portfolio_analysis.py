"""Portfolio risk analysis with private stock weights (Section 6).

The financial institution holds a stock covariance matrix; the investor
holds portfolio weights.  The risk ``w @ cov @ w`` is computed without
either side revealing its data, and the runtime of a year of analyses
(252 rounds) is projected for TinyGarble vs MAXelerator.

    python examples/portfolio_analysis.py
"""

import numpy as np

from repro import PrivatePortfolioAnalysis, PortfolioRuntimeModel, Q16_8
from repro.apps.datasets import synthetic_covariance, synthetic_portfolio


def main() -> None:
    cov = synthetic_covariance(2, seed=42)
    weights = synthetic_portfolio(2, seed=42)
    print("institution covariance (private):")
    print(np.round(cov, 4))
    print("investor weights (private):", np.round(weights, 4))

    analysis = PrivatePortfolioAnalysis(cov, Q16_8, seed=42)
    risk = analysis.risk(weights)
    print(f"\nprivately computed risk w@cov@w: {risk:.5f}")
    print(f"plaintext reference:             {analysis.expected(weights):.5f}")
    print(f"garbled MACs executed:           {analysis.macs_executed}")

    timing = PortfolioRuntimeModel().analysis_time_s()
    print("\nprojected cost of 252 analysis rounds (32-bit, paper setting):")
    print(f"  TinyGarble (software GC):  {timing.tinygarble_s:.3f} s   (paper: 1.33 s)")
    print(f"  MAXelerator:               {timing.maxelerator_s * 1e3:.2f} ms (paper: 15.23 ms)")
    print(f"  speedup:                   {timing.speedup:.0f}x")
    print("  non-private GPU reference [31]: 20 us — privacy still costs, but")
    print("  the accelerator brings it within practical limits.")


if __name__ == "__main__":
    main()
