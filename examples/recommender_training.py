"""Privacy-preserving recommendation training (Section 6, after [6]).

Trains a small matrix factorisation on synthetic MovieLens-shaped
ratings, with the inner products of one epoch routed through the
garbled MAC, and projects the per-iteration runtime of the full-scale
system (the paper's 2.9 h -> ~1 h claim).

    python examples/recommender_training.py
"""

from repro import PrivateMatrixFactorization, RecommenderRuntimeModel
from repro.apps.datasets import synthetic_ratings


def main() -> None:
    triples, _, _ = synthetic_ratings(n_users=15, n_items=12, n_ratings=80, seed=5)
    mf = PrivateMatrixFactorization(15, 12, profile_dim=4, seed=5)

    print(f"training on {len(triples)} synthetic ratings "
          f"({mf.u.shape[0]} users x {mf.v.shape[0]} items, d={mf.u.shape[1]})")
    print(f"  initial RMSE: {mf.rmse(triples):.4f}")
    for epoch in range(1, 16):
        rmse = mf.train_epoch(triples)
        if epoch % 5 == 0:
            print(f"  epoch {epoch:>2}: RMSE {rmse:.4f}")
    print(f"  MACs per epoch: {mf.macs_per_iteration}")

    est = mf.iteration_time_estimate_s(len(triples))
    print("\nper-epoch garbling projection at this size (32-bit):")
    print(f"  TinyGarble:  {est['tinygarble'] * 1e3:.1f} ms")
    print(f"  MAXelerator: {est['maxelerator'] * 1e6:.1f} us")

    claim = RecommenderRuntimeModel().movielens_claim()
    print("\nfull MovieLens-scale projection (the paper's case study):")
    print(f"  [6] per iteration:        {claim.baseline_hours:.1f} h")
    print(f"  with MAXelerator MACs:    {claim.accelerated_hours:.2f} h")
    print(f"  improvement:              {claim.improvement:.1%} (paper: 65-69%)")


if __name__ == "__main__":
    main()
