"""Quickstart: a private matrix-vector product on MAXelerator.

The cloud server holds a model matrix; the client holds a private
feature vector.  Neither learns the other's data; the client learns
``A @ x``.  Run:

    python examples/quickstart.py
"""

import numpy as np

from repro import PrivateMatVec, Q16_8


def main() -> None:
    server_matrix = np.array(
        [
            [0.75, -1.50, 2.00],
            [1.25, 0.50, -0.25],
        ]
    )
    client_vector = np.array([1.0, -2.0, 0.5])

    print("server matrix A (private to the cloud):")
    print(server_matrix)
    print("client vector x (private to the user):", client_vector)

    pm = PrivateMatVec(server_matrix, Q16_8, backend="maxelerator", seed=7)
    report = pm.run_with_client(client_vector)

    print("\nprivately computed A @ x:", report.result)
    print("plaintext check:         ", server_matrix @ client_vector)
    print(f"\ngarbled MACs executed:    {report.n_macs}")
    print(f"garbled tables streamed:  {report.tables} ({32 * report.tables} bytes)")
    print(f"garbler -> client bytes:  {report.bytes_sent_garbler}")
    print("projected garbling time on real hardware:")
    for name, seconds in sorted(report.estimates.items(), key=lambda kv: kv[1]):
        print(f"  {name:<12} {seconds * 1e6:>10.2f} us")


if __name__ == "__main__":
    main()
