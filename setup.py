"""Setup shim so editable installs work offline (no `wheel` package here).

`pip install -e .` on this machine has no network and no `wheel`, so the
PEP-660 editable path fails; `pip install -e . --no-build-isolation
--no-use-pep517` (or `python setup.py develop`) uses this shim instead.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
